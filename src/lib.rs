//! # clsa-cim — reproduction of *CLSA-CIM: A Cross-Layer Scheduling
//! Approach for Computing-in-Memory Architectures* (DATE 2024)
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`ir`] — NN graph IR, shapes, region propagation, reference executor;
//! * [`frontend`] — BN folding, base/non-base partitioning, quantization;
//! * [`arch`] — tiled RRAM CIM architecture model (crossbars, NoC, energy);
//! * [`mapping`] — Eq. 1 PE costs, im2col, weight duplication;
//! * [`core`] — the CLSA-CIM scheduler (Stages I–IV), baseline, metrics;
//! * [`sim`] — discrete-event system-level simulator;
//! * [`fabric`] — multi-tenant fabric simulation: N models sharing one
//!   chip with tile/link/weight-residency contention, per-tenant slowdown
//!   and Jain-fairness reporting;
//! * [`models`] — the benchmark zoo (TinyYOLO, VGG, ResNet);
//! * [`tune`] — design-space exploration: search strategies, Pareto
//!   archive, budgeted evaluation (the `autotune` binary's engine);
//! * [`verify`] — static verification: the `cim-lint` determinism lint
//!   engine, the exhaustive concurrency interleaving checker, and (in
//!   [`core`]) the schedule-IR diagnostics pass;
//! * [`serve`] — scheduling as a service: the `cim-serve` daemon
//!   answering newline-delimited JSON requests over a Unix socket with
//!   latency SLOs (EDF dispatch, admission control, warm paths through
//!   the persistent result store).
//!
//! # Quickstart
//!
//! Schedule TinyYOLOv4 on the paper's case-study architecture and compare
//! layer-by-layer inference against CLSA-CIM:
//!
//! ```
//! use clsa_cim::arch::Architecture;
//! use clsa_cim::core::{run, RunConfig};
//! use clsa_cim::frontend::{canonicalize, CanonOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = clsa_cim::models::tiny_yolo_v4();
//! let graph = canonicalize(&model, &CanonOptions::default())?.into_graph();
//!
//! let arch = Architecture::paper_case_study(117)?; // 256×256 PEs, 1400 ns
//! let baseline = run(&graph, &RunConfig::baseline(arch.clone()))?;
//! let clsa = run(&graph, &RunConfig::baseline(arch).with_cross_layer())?;
//!
//! let speedup = baseline.makespan() as f64 / clsa.makespan() as f64;
//! assert!(speedup > 2.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `cim-bench`
//! crate for the regenerators of every table and figure in the paper.
//!
//! # Building and testing
//!
//! The workspace builds fully offline:
//!
//! ```text
//! cargo build --release   # workspace: facade + 10 crates + vendored deps
//! cargo test -q           # unit, integration, and doc tests
//! cargo clippy --workspace --all-targets -- -D warnings
//! ```
//!
//! External dependencies (`serde`, `serde_json`, `rand`, `parking_lot`,
//! `proptest`, `criterion`) are vendored under `vendor/` as minimal offline
//! stand-ins implementing exactly the API surface this workspace uses; see
//! each `vendor/*/src/lib.rs` header for the differences vs. the real
//! crates. Swapping a stand-in for the real crate is a one-line change in
//! the root `Cargo.toml`'s `[workspace.dependencies]`.
//!
//! # Crate DAG
//!
//! `cim-ir` and `cim-arch` are the independent roots; everything else
//! layers on top (arrows point at dependencies):
//!
//! ```text
//! cim-frontend ──► cim-ir ◄──┬── cim-mapping ──► cim-arch
//!                            │        ▲
//!        clsa-core ──────────┴────────┤
//!            ▲                        │
//!            ├── cim-sim ─────────────┘
//!            ├── cim-models (also ► frontend)
//!            └── cim-tune (also ► mapping, arch)
//! cim-fabric layers on cim-sim (the shared event core) + frontend/mapping;
//! cim-bench depends on all of the above;
//! cim-serve layers on cim-bench (lane pool, caches, store) + cim-tune
//! (the Clock trait);
//! cim-verify stands alone (it reads source text, not schedules);
//! clsa-cim (this facade) re-exports all twelve crates.
//! ```
//!
//! # Reproducing the paper
//!
//! Every table and figure has a dedicated binary in `cim-bench`
//! (`cargo run --release -p cim-bench --bin table1|table2|fig5_minimal|`
//! `fig6|fig7|...`), each accepting `--json <path>` for record export; the
//! criterion-style micro-benchmarks live in `crates/bench/benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cim_arch as arch;
pub use cim_bench as bench;
pub use cim_fabric as fabric;
pub use cim_frontend as frontend;
pub use cim_ir as ir;
pub use cim_mapping as mapping;
pub use cim_models as models;
pub use cim_serve as serve;
pub use cim_sim as sim;
pub use cim_tune as tune;
pub use cim_verify as verify;
pub use clsa_core as core;
