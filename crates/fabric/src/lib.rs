//! # cim-fabric — multi-tenant fabric simulation
//!
//! N models sharing one CIM chip: this crate interleaves several tenants'
//! inference streams over the shared event core of `cim-sim`
//! ([`cim_sim::run_shared`]) and reports who got slowed down by whom.
//!
//! Three contention points are modelled (all off by default): tile
//! occupancy (a tile executes one tenant's sets at a time), finite NoC
//! link bandwidth (cross-tenant traffic serializes on shared links), and
//! crossbar weight residency (an undersized fabric evicts
//! least-recently-used weight blocks, charging reload latency on next
//! use). The single-tenant simulator is literally the `N == 1` special
//! case of the same core, so fabric results and `cim-sim` results can
//! never drift apart.
//!
//! Results come back as a [`FabricResult`]: per-tenant makespan and
//! slowdown versus running alone, Jain's fairness index, aggregate tile
//! utilization, link-contention stalls, and eviction/reload counts — all
//! in integer milli-units, byte-stable for any `jobs` value and tenant
//! insertion order.
//!
//! # Examples
//!
//! ```
//! use cim_fabric::{arch_for_mix, run_mix, FabricConfig, TenantInstance};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two streams of the paper's Fig. 5 example on one chip.
//! let base = TenantInstance::prepare("fig5", &cim_models::fig5_example())?;
//! let mut second = base.clone();
//! second.name = "fig5#1".into();
//! let tenants = vec![base, second];
//! let config = FabricConfig::new(arch_for_mix(&tenants, 0)?);
//! let result = run_mix(&tenants, &config)?;
//! assert_eq!(result.tenants.len(), 2);
//! // Sharing the same tiles slows at least one stream down.
//! assert!(result.worst_slowdown() >= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod result;
mod sim;
mod tenant;

pub use error::{FabricError, Result};
pub use result::{FabricResult, TenantReport};
pub use sim::{arch_for_mix, run_mix, FabricConfig, TenantInstance};
pub use tenant::{parse_tenant_list, TenantSpec};

// Re-exported so downstream callers can configure a mix without naming
// cim-arch directly.
pub use cim_arch::{CoResidency, FabricSpec};
