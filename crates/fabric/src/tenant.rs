//! Tenant mix parsing: the `model:streams,model:streams,…` CLI syntax.

use crate::error::{FabricError, Result};

/// One entry of a tenant mix: a model and how many independent inference
/// streams of it share the chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Model name (resolved by the caller, e.g. against `cim-models`).
    pub model: String,
    /// Independent streams of this model (each stream is its own tenant).
    pub streams: usize,
}

impl TenantSpec {
    /// Instance names of this spec's streams: `model#0`, `model#1`, …
    /// Stream indices make names unique within one spec; [`parse_tenant_list`]
    /// rejects duplicate models, making them unique across the whole mix.
    pub fn instance_names(&self) -> Vec<String> {
        (0..self.streams)
            .map(|i| format!("{}#{i}", self.model))
            .collect()
    }
}

/// Parses `model[:streams],model[:streams],…` (streams defaults to 1).
///
/// # Errors
///
/// Returns [`FabricError::BadMix`] on empty input, empty model names,
/// non-numeric or zero stream counts, more than 64 total streams, or a
/// model listed twice (merge the counts instead — instance names must be
/// unique).
pub fn parse_tenant_list(list: &str) -> Result<Vec<TenantSpec>> {
    let mut specs: Vec<TenantSpec> = Vec::new();
    let mut total = 0usize;
    for entry in list.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(FabricError::BadMix {
                detail: format!("empty entry in tenant list {list:?}"),
            });
        }
        let (model, streams) = match entry.split_once(':') {
            None => (entry, 1),
            Some((m, c)) => {
                let streams = c.parse::<usize>().map_err(|_| FabricError::BadMix {
                    detail: format!("stream count {c:?} of {m:?} is not a positive integer"),
                })?;
                (m, streams)
            }
        };
        if model.is_empty() {
            return Err(FabricError::BadMix {
                detail: format!("missing model name in entry {entry:?}"),
            });
        }
        if streams == 0 {
            return Err(FabricError::BadMix {
                detail: format!("model {model:?} requests zero streams"),
            });
        }
        if specs.iter().any(|s| s.model == model) {
            return Err(FabricError::BadMix {
                detail: format!("model {model:?} listed twice; merge the stream counts"),
            });
        }
        total += streams;
        if total > 64 {
            return Err(FabricError::BadMix {
                detail: "tenant mix exceeds 64 streams".into(),
            });
        }
        specs.push(TenantSpec {
            model: model.to_string(),
            streams,
        });
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counts_and_defaults() {
        let specs = parse_tenant_list("fig5:2, lenet").unwrap();
        assert_eq!(
            specs,
            vec![
                TenantSpec {
                    model: "fig5".into(),
                    streams: 2
                },
                TenantSpec {
                    model: "lenet".into(),
                    streams: 1
                },
            ]
        );
        assert_eq!(specs[0].instance_names(), vec!["fig5#0", "fig5#1"]);
    }

    #[test]
    fn rejects_malformed_mixes() {
        for bad in ["", "fig5:", "fig5:0", ":2", "fig5,,lenet", "a,a", "a:65"] {
            assert!(parse_tenant_list(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
