//! Fabric run results: per-tenant reports and aggregate fairness metrics.
//!
//! All ratios are stored as **integer milli-units** (`1000` = 1.0) computed
//! with `u128` intermediate math, so serialized results are byte-stable
//! across platforms and `--jobs` values — no floating-point formatting in
//! the wire format. Float accessors are provided for display code.

use serde::{Deserialize, Serialize};

/// Outcome of one tenant in a shared-fabric run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Instance name (`model#stream`).
    pub tenant: String,
    /// Model this stream runs.
    pub model: String,
    /// Cycle at which the tenant's first set became eligible.
    pub arrival: u64,
    /// Last finish minus arrival on the shared fabric.
    pub span_cycles: u64,
    /// The same tenant's makespan running alone on the same fabric.
    pub solo_cycles: u64,
    /// `span / solo` in milli-units (`1000` = no slowdown).
    pub slowdown_milli: u64,
    /// Tile-ownership cycles attributed to this tenant.
    pub busy_cycles: u64,
    /// Cycles pushed back waiting for tiles owned by other tenants.
    pub occupancy_stall_cycles: u64,
    /// Cycles this tenant's messages waited for busy NoC links.
    pub link_stall_cycles: u64,
    /// Cycles spent re-programming evicted weight blocks.
    pub reload_cycles: u64,
    /// Weight blocks of this tenant evicted during the run.
    pub evictions: u64,
    /// Bookings that had to reload an evicted block.
    pub reloads: u64,
}

impl TenantReport {
    /// Slowdown versus running alone, as a float (`1.0` = no slowdown).
    pub fn slowdown(&self) -> f64 {
        self.slowdown_milli as f64 / 1000.0
    }
}

/// Aggregate outcome of one multi-tenant fabric run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricResult {
    /// Per-tenant reports, sorted by instance name (insertion-order
    /// independent).
    pub tenants: Vec<TenantReport>,
    /// Last finish over all tenants (absolute fabric time).
    pub makespan_cycles: u64,
    /// Largest per-tenant [`TenantReport::slowdown_milli`].
    pub worst_slowdown_milli: u64,
    /// Jain's fairness index over per-tenant speeds (`solo / span`), in
    /// milli-units: `1000` = perfectly fair, `1000 / n` = one tenant
    /// monopolizes the chip.
    pub jain_fairness_milli: u64,
    /// Σ tenant busy cycles over `tiles × makespan`, in milli-units —
    /// aggregate tile-occupancy utilization of the fabric.
    pub utilization_milli: u64,
    /// Total cycles messages waited for busy NoC links, over all tenants.
    pub link_stall_cycles: u64,
    /// Total weight-block evictions.
    pub evictions: u64,
    /// Total weight-block reloads paid.
    pub reloads: u64,
}

impl FabricResult {
    /// Worst tenant slowdown as a float.
    pub fn worst_slowdown(&self) -> f64 {
        self.worst_slowdown_milli as f64 / 1000.0
    }

    /// Jain's fairness index as a float in `(0, 1]`.
    pub fn jain_fairness(&self) -> f64 {
        self.jain_fairness_milli as f64 / 1000.0
    }

    /// Aggregate tile utilization as a float in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.utilization_milli as f64 / 1000.0
    }
}

/// `span / solo` in milli-units, floor division over `u128`. A zero solo
/// baseline (degenerate empty workload) reports `1000`.
pub(crate) fn slowdown_milli(span_cycles: u64, solo_cycles: u64) -> u64 {
    if solo_cycles == 0 {
        return 1000;
    }
    (span_cycles as u128 * 1000 / solo_cycles as u128) as u64
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` in milli-units over integer
/// speed samples. Scale-invariant, so the milli-unit speeds feed in
/// directly. Empty or all-zero samples report `1000` (vacuously fair).
pub(crate) fn jain_milli(speeds: &[u64]) -> u64 {
    let n = speeds.len() as u128;
    let sum: u128 = speeds.iter().map(|&x| x as u128).sum();
    let sum_sq: u128 = speeds.iter().map(|&x| x as u128 * x as u128).sum();
    if n == 0 || sum_sq == 0 {
        return 1000;
    }
    (sum * sum * 1000 / (n * sum_sq)) as u64
}

/// `num · 1000 / den` in milli-units over `u128` (0 when `den` is 0).
pub(crate) fn milli_ratio(num: u128, den: u128) -> u64 {
    if den == 0 {
        return 0;
    }
    (num * 1000 / den) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_floors_and_guards() {
        assert_eq!(slowdown_milli(1500, 1000), 1500);
        assert_eq!(slowdown_milli(1000, 1000), 1000);
        assert_eq!(slowdown_milli(1234, 0), 1000);
        // Floor division: 1001/3 = 333.67 → 333_666 milli ÷ ... stays exact
        // in u128 (no overflow at u64 extremes).
        assert_eq!(slowdown_milli(u64::MAX, u64::MAX), 1000);
    }

    #[test]
    fn jain_bounds() {
        // Equal speeds: perfectly fair.
        assert_eq!(jain_milli(&[700, 700, 700]), 1000);
        // One tenant monopolizes: 1/n.
        assert_eq!(jain_milli(&[1000, 0, 0, 0]), 250);
        // Skew lands strictly between.
        let j = jain_milli(&[1000, 500]);
        assert!(j > 500 && j < 1000, "{j}");
        // Degenerate inputs are vacuously fair.
        assert_eq!(jain_milli(&[]), 1000);
        assert_eq!(jain_milli(&[0, 0]), 1000);
    }

    #[test]
    fn milli_ratio_guards_zero() {
        assert_eq!(milli_ratio(1, 0), 0);
        assert_eq!(milli_ratio(3, 4), 750);
    }

    #[test]
    fn serde_round_trip() {
        let result = FabricResult {
            tenants: vec![TenantReport {
                tenant: "fig5#0".into(),
                model: "fig5".into(),
                arrival: 0,
                span_cycles: 10,
                solo_cycles: 10,
                slowdown_milli: 1000,
                busy_cycles: 10,
                occupancy_stall_cycles: 0,
                link_stall_cycles: 0,
                reload_cycles: 0,
                evictions: 0,
                reloads: 0,
            }],
            makespan_cycles: 10,
            worst_slowdown_milli: 1000,
            jain_fairness_milli: 1000,
            utilization_milli: 500,
            link_stall_cycles: 0,
            evictions: 0,
            reloads: 0,
        };
        let s = serde_json::to_string(&result).unwrap();
        assert_eq!(serde_json::from_str::<FabricResult>(&s).unwrap(), result);
        assert!((result.jain_fairness() - 1.0).abs() < 1e-12);
        assert!((result.utilization() - 0.5).abs() < 1e-12);
        assert!((result.tenants[0].slowdown() - 1.0).abs() < 1e-12);
    }
}
