//! The mix runner: placement, arrivals, solo baselines, and the shared run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cim_arch::{place_groups_at, Architecture, CoResidency, FabricSpec, PlacementStrategy};
use cim_frontend::{canonicalize, CanonOptions};
use cim_ir::Graph;
use cim_mapping::{layer_costs, min_pes, MappingOptions};
use cim_sim::{run_shared, FabricContention, TenantWorkload};
use clsa_core::{
    determine_dependencies, determine_sets, CostedDeps, Dependencies, EdgeCost, LayerSets,
    SetPolicy,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::error::{FabricError, Result};
use crate::result::{jain_milli, milli_ratio, slowdown_milli, FabricResult, TenantReport};
use crate::tenant::TenantSpec;

/// One tenant of a mix: a named inference stream of a prepared model.
/// Streams of the same model share the Stage-I/II artifacts through the
/// `Arc`s — preparing a model once serves any number of streams.
#[derive(Debug, Clone)]
pub struct TenantInstance {
    /// Unique instance name (`model#stream`).
    pub name: String,
    /// Model name.
    pub model: String,
    /// Stage-I sets of every base layer.
    pub layers: Arc<Vec<LayerSets>>,
    /// Stage-II dependencies over those sets.
    pub deps: Arc<Dependencies>,
    /// Minimum PEs the model's mapping needs.
    pub pe_min: usize,
}

impl TenantInstance {
    /// Prepares one stream (`model#0`) of `graph`: canonicalize, map, run
    /// Stage I and Stage II. Use [`TenantInstance::streams_of`] to fan a
    /// prepared instance out into more streams.
    ///
    /// # Errors
    ///
    /// Propagates canonicalization, mapping, and staging failures.
    pub fn prepare(model: &str, graph: &Graph) -> Result<Self> {
        let g = canonicalize(graph, &CanonOptions::default())?.into_graph();
        let costs = layer_costs(&g, &cim_arch::CrossbarSpec::wan_nature_2022(), &MappingOptions::default())?;
        let pe_min = min_pes(&costs);
        let layers = determine_sets(&g, &costs, &SetPolicy::finest())?;
        let deps = determine_dependencies(&g, &layers)?;
        Ok(TenantInstance {
            name: format!("{model}#0"),
            model: model.to_string(),
            layers: Arc::new(layers),
            deps: Arc::new(deps),
            pe_min,
        })
    }

    /// Fans this prepared instance out into `spec.streams` named streams
    /// sharing its Stage-I/II artifacts.
    pub fn streams_of(&self, spec: &TenantSpec) -> Vec<TenantInstance> {
        spec.instance_names()
            .into_iter()
            .map(|name| TenantInstance {
                name,
                ..self.clone()
            })
            .collect()
    }
}

/// Configuration of one shared-fabric run.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// The shared chip. Its NoC geometry drives placement and routing.
    pub arch: Architecture,
    /// How tenants share the PE array.
    pub policy: CoResidency,
    /// Contention limits (link bandwidth, weight capacity, reload cost).
    pub fabric: FabricSpec,
    /// Base arrival spacing: tenant `k` (in canonical name order) arrives
    /// at `k × stagger` plus a seeded jitter in `[0, stagger)`.
    pub stagger: u64,
    /// Seed for the arrival jitter.
    pub seed: u64,
    /// Worker threads for the solo-baseline runs (≥ 1; the shared run
    /// itself is single-threaded and inherently deterministic).
    pub jobs: usize,
}

impl FabricConfig {
    /// A config with no stagger and one worker on `arch`.
    pub fn new(arch: Architecture) -> Self {
        FabricConfig {
            arch,
            policy: CoResidency::Shared,
            fabric: FabricSpec::uncontended(),
            stagger: 0,
            seed: 0,
            jobs: 1,
        }
    }
}

/// Everything `run_shared` needs for one tenant, in canonical order.
struct PreparedTenant<'a> {
    instance: &'a TenantInstance,
    costed: CostedDeps,
    home_tiles: Vec<cim_arch::TileId>,
    arrival: u64,
}

/// Runs `instances` together on one chip and reports per-tenant slowdown
/// and fairness.
///
/// The outcome is a pure function of the *set* of instances and the
/// config: tenants are processed in sorted-name order, so insertion order
/// does not matter, and the result is byte-identical for any `jobs`.
/// Per-tenant solo baselines run on the same fabric (same placement, same
/// capacity and bandwidth limits) so the reported slowdown isolates
/// cross-tenant contention.
///
/// # Errors
///
/// Returns [`FabricError::BadMix`] on an empty mix or duplicate instance
/// names, and propagates placement and simulation failures.
pub fn run_mix(instances: &[TenantInstance], config: &FabricConfig) -> Result<FabricResult> {
    if instances.is_empty() {
        return Err(FabricError::BadMix {
            detail: "no tenants".into(),
        });
    }
    // Canonical tenant order: sorted by unique instance name.
    let mut order: Vec<&TenantInstance> = instances.iter().collect();
    order.sort_by(|a, b| a.name.cmp(&b.name));
    if order.windows(2).any(|w| w[0].name == w[1].name) {
        return Err(FabricError::BadMix {
            detail: "duplicate instance names".into(),
        });
    }

    let n = order.len();
    let total_pes = config.arch.total_pes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut prepared = Vec::with_capacity(n);
    for (k, instance) in order.iter().enumerate() {
        let sizes: Vec<usize> = instance.layers.iter().map(|l| l.pes).collect();
        let offset = match config.policy {
            CoResidency::Shared => 0,
            CoResidency::Partitioned => k * total_pes / n,
        };
        let placement = place_groups_at(
            &config.arch,
            &sizes,
            PlacementStrategy::Contiguous,
            offset,
        )?;
        let home_tiles = (0..sizes.len()).map(|g| placement.home_tile(g)).collect();
        let costed = CostedDeps::build(
            &instance.layers,
            &instance.deps,
            &EdgeCost::NocHops {
                arch: config.arch.clone(),
                placement,
            },
        )?;
        // Jitter keeps arrivals inside the tenant's stagger slot, so the
        // arrival order always matches the canonical order.
        let jitter = if config.stagger > 0 {
            rng.random_range(0..config.stagger)
        } else {
            0
        };
        prepared.push(PreparedTenant {
            instance,
            costed,
            home_tiles,
            arrival: k as u64 * config.stagger + jitter,
        });
    }

    let contention = FabricContention {
        noc: Some(*config.arch.noc()),
        spec: config.fabric,
    };

    // Solo baselines: each tenant alone, arrival 0, same fabric limits.
    let solo = parallel_indexed(n, config.jobs, |k| -> Result<u64> {
        let p = &prepared[k];
        let workload = TenantWorkload {
            layers: &p.instance.layers,
            deps: &p.instance.deps,
            costed: &p.costed,
            arrival: 0,
            home_tiles: Some(p.home_tiles.clone()),
        };
        let outcome = run_shared(std::slice::from_ref(&workload), &contention)?;
        Ok(outcome.makespan)
    });

    // The shared run: all tenants, one event heap.
    let workloads: Vec<TenantWorkload<'_>> = prepared
        .iter()
        .map(|p| TenantWorkload {
            layers: &p.instance.layers,
            deps: &p.instance.deps,
            costed: &p.costed,
            arrival: p.arrival,
            home_tiles: Some(p.home_tiles.clone()),
        })
        .collect();
    let outcome = run_shared(&workloads, &contention)?;

    let mut tenants = Vec::with_capacity(n);
    let mut speeds = Vec::with_capacity(n);
    let mut busy_total: u128 = 0;
    for ((p, t), solo_cycles) in prepared.iter().zip(&outcome.tenants).zip(solo) {
        let solo_cycles = solo_cycles?;
        let slowdown = slowdown_milli(t.span_cycles, solo_cycles);
        speeds.push(milli_ratio(solo_cycles as u128, t.span_cycles.max(1) as u128));
        busy_total += t.busy_cycles as u128;
        tenants.push(TenantReport {
            tenant: p.instance.name.clone(),
            model: p.instance.model.clone(),
            arrival: p.arrival,
            span_cycles: t.span_cycles,
            solo_cycles,
            slowdown_milli: slowdown,
            busy_cycles: t.busy_cycles,
            occupancy_stall_cycles: t.occupancy_stall_cycles,
            link_stall_cycles: t.link_stall_cycles,
            reload_cycles: t.reload_cycles,
            evictions: t.evictions,
            reloads: t.reloads,
        });
    }

    let tiles = config.arch.num_tiles() as u128;
    Ok(FabricResult {
        makespan_cycles: outcome.makespan,
        worst_slowdown_milli: tenants.iter().map(|t| t.slowdown_milli).max().unwrap_or(1000),
        jain_fairness_milli: jain_milli(&speeds),
        utilization_milli: milli_ratio(busy_total, tiles * outcome.makespan as u128),
        link_stall_cycles: tenants.iter().map(|t| t.link_stall_cycles).sum(),
        evictions: tenants.iter().map(|t| t.evictions).sum(),
        reloads: tenants.iter().map(|t| t.reloads).sum(),
        tenants,
    })
}

/// Builds an architecture big enough for every instance: the paper's case
/// study sized to the largest `pe_min` plus `extra_pes` headroom.
///
/// # Errors
///
/// Propagates architecture-builder failures.
pub fn arch_for_mix(instances: &[TenantInstance], extra_pes: usize) -> Result<Architecture> {
    let pe_min = instances.iter().map(|i| i.pe_min).max().unwrap_or(1);
    Ok(Architecture::paper_case_study(pe_min + extra_pes)?)
}

/// Index-parallel map with deterministic output order: slot `i` always
/// holds `f(i)`. Worker count is `min(jobs, n)`; `jobs == 1` stays on the
/// calling thread.
fn parallel_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect() // cim-lint: allow(panic-unwrap) worker panics must propagate
    });
    // Reassemble in index order regardless of which worker ran what.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for chunk in &mut per_worker {
        for (index, value) in chunk.drain(..) {
            slots[index] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once")) // cim-lint: allow(panic-unwrap) indices are claimed exactly once
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_instance(name: &str) -> TenantInstance {
        let mut t = TenantInstance::prepare("fig5", &cim_models::fig5_example()).unwrap();
        t.name = name.to_string();
        t
    }

    fn base_config(instances: &[TenantInstance]) -> FabricConfig {
        FabricConfig::new(arch_for_mix(instances, 0).unwrap())
    }

    #[test]
    fn single_tenant_has_no_slowdown() {
        let t = fig5_instance("fig5#0");
        let config = base_config(std::slice::from_ref(&t));
        let result = run_mix(&[t], &config).unwrap();
        assert_eq!(result.tenants.len(), 1);
        assert_eq!(result.tenants[0].slowdown_milli, 1000);
        assert_eq!(result.worst_slowdown_milli, 1000);
        assert_eq!(result.jain_fairness_milli, 1000);
        assert!(result.utilization_milli > 0);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let a = fig5_instance("fig5#0");
        let b = fig5_instance("fig5#1");
        let config = base_config(&[a.clone(), b.clone()]);
        let fwd = run_mix(&[a.clone(), b.clone()], &config).unwrap();
        let rev = run_mix(&[b, a], &config).unwrap();
        assert_eq!(
            serde_json::to_string(&fwd).unwrap(),
            serde_json::to_string(&rev).unwrap()
        );
    }

    #[test]
    fn jobs_do_not_change_the_result() {
        let a = fig5_instance("fig5#0");
        let b = fig5_instance("fig5#1");
        let mut config = base_config(&[a.clone(), b.clone()]);
        config.stagger = 13;
        config.seed = 42;
        let one = run_mix(&[a.clone(), b.clone()], &config).unwrap();
        config.jobs = 4;
        let four = run_mix(&[a, b], &config).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn contended_streams_slow_down() {
        // Two identical streams under the Shared policy land on the same
        // tiles and must serialize there.
        let a = fig5_instance("fig5#0");
        let b = fig5_instance("fig5#1");
        let config = base_config(&[a.clone(), b.clone()]);
        let result = run_mix(&[a, b], &config).unwrap();
        assert!(
            result.worst_slowdown_milli > 1000,
            "shared tiles must contend: {result:?}"
        );
        let stalls: u64 = result.tenants.iter().map(|t| t.occupancy_stall_cycles).sum();
        assert!(stalls > 0, "contention must register as occupancy stalls");
    }

    #[test]
    fn partitioning_reduces_contention() {
        let a = fig5_instance("fig5#0");
        let b = fig5_instance("fig5#1");
        // Two-PE tiles so the rotated partitions land on distinct tiles
        // (paper_case_study tiles are 8 PEs wide — everything would share
        // tile 0 regardless of policy).
        let arch = Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: a.pe_min,
                ..cim_arch::TileSpec::isaac_like()
            })
            .pes(2 * a.pe_min)
            .build()
            .unwrap();
        let mut config = FabricConfig::new(arch);
        let shared = run_mix(&[a.clone(), b.clone()], &config).unwrap();
        config.policy = CoResidency::Partitioned;
        let split = run_mix(&[a, b], &config).unwrap();
        let stall = |r: &FabricResult| -> u64 {
            r.tenants.iter().map(|t| t.occupancy_stall_cycles).sum()
        };
        assert!(
            stall(&split) < stall(&shared),
            "partitioned placement must shed occupancy stalls: {} vs {}",
            stall(&split),
            stall(&shared)
        );
        assert!(split.worst_slowdown_milli <= shared.worst_slowdown_milli);
    }

    #[test]
    fn capacity_pressure_reports_evictions() {
        let a = fig5_instance("fig5#0");
        let b = fig5_instance("fig5#1");
        let mut config = base_config(&[a.clone(), b.clone()]);
        // Room for roughly one tenant's weights: the pair thrashes.
        let per_tenant: usize = a.layers.iter().map(|l| l.pes).sum();
        config.fabric.capacity_pes = per_tenant + 1;
        config.fabric.reload_cycles_per_pe = 10;
        let result = run_mix(&[a, b], &config).unwrap();
        assert!(result.evictions > 0, "undersized capacity must evict");
        assert!(result.reloads > 0);
        let reload_cycles: u64 = result.tenants.iter().map(|t| t.reload_cycles).sum();
        assert!(reload_cycles > 0);
    }

    #[test]
    fn empty_and_duplicate_mixes_rejected() {
        assert!(matches!(
            run_mix(&[], &FabricConfig::new(Architecture::paper_case_study(8).unwrap())),
            Err(FabricError::BadMix { .. })
        ));
        let a = fig5_instance("fig5#0");
        let config = base_config(std::slice::from_ref(&a));
        assert!(matches!(
            run_mix(&[a.clone(), a], &config),
            Err(FabricError::BadMix { .. })
        ));
    }

    #[test]
    fn conservation_law_holds() {
        let a = fig5_instance("fig5#0");
        let b = fig5_instance("fig5#1");
        let config = base_config(&[a.clone(), b.clone()]);
        let result = run_mix(&[a, b], &config).unwrap();
        let busy: u128 = result.tenants.iter().map(|t| t.busy_cycles as u128).sum();
        let tiles = config.arch.num_tiles() as u128;
        assert!(busy <= tiles * result.makespan_cycles as u128);
        assert!(result.utilization_milli <= 1000);
    }

    #[test]
    fn parallel_indexed_matches_serial() {
        let serial = parallel_indexed(17, 1, |i| i * i);
        let parallel = parallel_indexed(17, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert!(parallel_indexed(0, 4, |i| i).is_empty());
    }
}
