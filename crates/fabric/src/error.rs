//! Error type of the fabric simulation.

use std::fmt;

/// Errors produced while preparing or running a multi-tenant mix.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// The tenant mix itself is malformed (empty, duplicate names, bad
    /// `model:streams` syntax, zero stream counts).
    BadMix {
        /// Human-readable description.
        detail: String,
    },
    /// An architecture operation failed (placement, geometry).
    Arch(cim_arch::ArchError),
    /// A Stage-I/II or edge-cost computation failed.
    Core(clsa_core::CoreError),
    /// Graph canonicalization failed.
    Frontend(cim_frontend::FrontendError),
    /// The layer cost model rejected the graph.
    Mapping(cim_mapping::MappingError),
    /// The shared event core failed (bad workload, deadlock).
    Sim(cim_sim::SimError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::BadMix { detail } => write!(f, "bad tenant mix: {detail}"),
            FabricError::Arch(e) => write!(f, "{e}"),
            FabricError::Core(e) => write!(f, "{e}"),
            FabricError::Frontend(e) => write!(f, "{e}"),
            FabricError::Mapping(e) => write!(f, "{e}"),
            FabricError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::BadMix { .. } => None,
            FabricError::Arch(e) => Some(e),
            FabricError::Core(e) => Some(e),
            FabricError::Frontend(e) => Some(e),
            FabricError::Mapping(e) => Some(e),
            FabricError::Sim(e) => Some(e),
        }
    }
}

impl From<cim_arch::ArchError> for FabricError {
    fn from(e: cim_arch::ArchError) -> Self {
        FabricError::Arch(e)
    }
}

impl From<clsa_core::CoreError> for FabricError {
    fn from(e: clsa_core::CoreError) -> Self {
        FabricError::Core(e)
    }
}

impl From<cim_frontend::FrontendError> for FabricError {
    fn from(e: cim_frontend::FrontendError) -> Self {
        FabricError::Frontend(e)
    }
}

impl From<cim_mapping::MappingError> for FabricError {
    fn from(e: cim_mapping::MappingError) -> Self {
        FabricError::Mapping(e)
    }
}

impl From<cim_sim::SimError> for FabricError {
    fn from(e: cim_sim::SimError) -> Self {
        FabricError::Sim(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FabricError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FabricError::BadMix {
            detail: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
        let wrapped = FabricError::Sim(cim_sim::SimError::Deadlock {
            completed: 1,
            total: 2,
        });
        assert!(wrapped.to_string().contains("1 of 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricError>();
    }
}
