//! Error type of the scheduling stages.

use std::fmt;

use cim_arch::ArchError;
use cim_ir::IrError;
use cim_mapping::MappingError;

/// Errors produced by set determination, dependency analysis, scheduling,
/// and the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying graph operation failed.
    Ir(IrError),
    /// The mapping stage failed.
    Mapping(MappingError),
    /// The architecture model rejected a request.
    Arch(ArchError),
    /// A set policy is invalid.
    BadPolicy {
        /// Human-readable description.
        detail: String,
    },
    /// A schedule failed validation.
    InvalidSchedule {
        /// Human-readable description of the first violation.
        detail: String,
    },
    /// Inputs passed to a stage are inconsistent with each other.
    StageMismatch {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Ir(e) => write!(f, "{e}"),
            CoreError::Mapping(e) => write!(f, "{e}"),
            CoreError::Arch(e) => write!(f, "{e}"),
            CoreError::BadPolicy { detail } => write!(f, "invalid set policy: {detail}"),
            CoreError::InvalidSchedule { detail } => write!(f, "invalid schedule: {detail}"),
            CoreError::StageMismatch { detail } => write!(f, "stage input mismatch: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ir(e) => Some(e),
            CoreError::Mapping(e) => Some(e),
            CoreError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for CoreError {
    fn from(e: IrError) -> Self {
        CoreError::Ir(e)
    }
}

impl From<MappingError> for CoreError {
    fn from(e: MappingError) -> Self {
        CoreError::Mapping(e)
    }
}

impl From<ArchError> for CoreError {
    fn from(e: ArchError) -> Self {
        CoreError::Arch(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CoreError::from(IrError::EmptyGraph);
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::from(MappingError::NoBaseLayers);
        assert_eq!(e.to_string(), "graph contains no base layers");
        let e = CoreError::from(ArchError::InsufficientPes {
            required: 2,
            available: 1,
        });
        assert!(e.to_string().contains("PEs"));
        let e = CoreError::InvalidSchedule {
            detail: "set overlap".into(),
        };
        assert!(e.to_string().starts_with("invalid schedule"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
