//! The global set-index space: a bijection `(layer, set) → usize` shared by
//! every flat (CSR/arena) data structure of the scheduling core.
//!
//! Stage I produces a ragged structure — per layer, a variable number of
//! OFM sets. The hot Stage II–IV loops want flat arrays instead: one slot
//! per set, addressed by a dense global index. [`SetSpace`] is the shared
//! offset table that makes those views agree: `index(l, s) =
//! layer_start(l) + s`, with layer `l`'s sets occupying the contiguous
//! range `layer_range(l)`. The CSR [`Dependencies`](crate::Dependencies),
//! the [`Schedule`](crate::Schedule) time arena, the precomputed
//! [`CostedDeps`](crate::CostedDeps) tables, and the `cim-sim` event engine
//! all slice their arenas by one `SetSpace`.

use serde::{Deserialize, Serialize};

use crate::sets::LayerSets;

/// Offset table mapping `(layer, set)` pairs onto a dense `0..total_sets()`
/// index space. Cheap to build (one pass over the layer list), cheap to
/// clone (one `Vec<usize>`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetSpace {
    /// `starts[l]` is the global index of layer `l`'s first set;
    /// `starts[num_layers]` is the total set count.
    starts: Vec<usize>,
}

impl SetSpace {
    /// Builds the space from the per-layer set counts.
    pub fn from_counts(sets_per_layer: &[usize]) -> Self {
        let mut starts = Vec::with_capacity(sets_per_layer.len() + 1);
        let mut acc = 0usize;
        starts.push(0);
        for &n in sets_per_layer {
            acc += n;
            starts.push(acc);
        }
        Self { starts }
    }

    /// Builds the space covering the Stage-I output.
    pub fn of_layers(layers: &[LayerSets]) -> Self {
        let mut starts = Vec::with_capacity(layers.len() + 1);
        let mut acc = 0usize;
        starts.push(0);
        for l in layers {
            acc += l.sets.len();
            starts.push(acc);
        }
        Self { starts }
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of sets across all layers.
    pub fn total_sets(&self) -> usize {
        *self.starts.last().expect("starts is never empty") // cim-lint: allow(panic-unwrap) starts always holds the terminal offset
    }

    /// Number of sets of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn sets_in(&self, l: usize) -> usize {
        self.starts[l + 1] - self.starts[l]
    }

    /// The global index of set `s` of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range (a set index beyond the
    /// layer's count must not silently alias the next layer's slots).
    #[inline]
    pub fn index(&self, l: usize, s: usize) -> usize {
        let start = self.starts[l];
        assert!(
            s < self.starts[l + 1] - start,
            "set {s} out of range for layer {l} ({} sets)",
            self.starts[l + 1] - start
        );
        start + s
    }

    /// The contiguous global-index range of layer `l`'s sets.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[inline]
    pub fn layer_range(&self, l: usize) -> std::ops::Range<usize> {
        self.starts[l]..self.starts[l + 1]
    }

    /// Whether this space has the same shape as `other` (same layers, same
    /// per-layer set counts).
    pub fn same_shape(&self, other: &SetSpace) -> bool {
        self.starts == other.starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_round_trip() {
        let sp = SetSpace::from_counts(&[4, 1, 3]);
        assert_eq!(sp.num_layers(), 3);
        assert_eq!(sp.total_sets(), 8);
        assert_eq!(sp.sets_in(0), 4);
        assert_eq!(sp.sets_in(1), 1);
        assert_eq!(sp.sets_in(2), 3);
        assert_eq!(sp.index(0, 0), 0);
        assert_eq!(sp.index(0, 3), 3);
        assert_eq!(sp.index(1, 0), 4);
        assert_eq!(sp.index(2, 2), 7);
        assert_eq!(sp.layer_range(2), 5..8);
    }

    #[test]
    fn empty_layers_are_representable() {
        let sp = SetSpace::from_counts(&[2, 0, 1]);
        assert_eq!(sp.total_sets(), 3);
        assert_eq!(sp.sets_in(1), 0);
        assert_eq!(sp.layer_range(1), 2..2);
        assert_eq!(sp.index(2, 0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_overflow_does_not_alias_the_next_layer() {
        let sp = SetSpace::from_counts(&[2, 2]);
        sp.index(0, 2); // would alias (1, 0) without the bound check
    }

    #[test]
    fn shape_comparison() {
        let a = SetSpace::from_counts(&[1, 2]);
        let b = SetSpace::from_counts(&[1, 2]);
        let c = SetSpace::from_counts(&[2, 1]);
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
    }
}
