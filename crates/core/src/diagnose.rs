//! Schedule-IR diagnostics: a static analysis pass over the Stage I–IV
//! artifacts that reports *everything* wrong (or suspicious) about a
//! schedule, with structured severities — rather than bailing at the first
//! violation the way [`validate_schedule`](crate::validate_schedule) does.
//!
//! Two consumers:
//!
//! * the validator itself — [`crate::validate_schedule_costed`] is now a
//!   thin filter over [`analyze_costed`], returning the first
//!   [`Severity::Error`] validation finding as a
//!   [`CoreError::InvalidSchedule`](crate::CoreError::InvalidSchedule)
//!   with an unchanged message, so every
//!   historical error string (and the tests asserting on them) is
//!   preserved byte-for-byte;
//! * the `lint-schedule` binary in `cim-bench`, which prints the full
//!   report (including the advisory findings the validator ignores).
//!
//! Diagnostics come in two groups, distinguished by [`is_validation_code`]:
//!
//! | group | codes | meaning |
//! |-------|-------|---------|
//! | validation | `shape`, `cost-table`, `duration`, `overlap`, `data-dep`, `makespan` | the schedule breaks the paper's legality rules (Sec. IV); always [`Severity::Error`] |
//! | analysis | `backward-dep`, `cycle`, `unreachable`, `fan-in`, `capacity`, `tile-span` | the *inputs* are malformed or the mapping looks suspicious; severities vary |
//!
//! Analysis findings never affect [`crate::validate_schedule`]'s verdict:
//! a schedule over odd-looking inputs is still legal if every window obeys
//! the duration, ordering, dependency, and makespan rules.

use serde::Serialize;

use crate::cost::CostedDeps;
use crate::deps::{Dependencies, SetRef};
use crate::schedule::Schedule;
use crate::sets::LayerSets;
use cim_arch::Architecture;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational: worth knowing, nothing to fix.
    Info,
    /// Suspicious: likely a mapping/policy problem, but the schedule may
    /// still be legal.
    Warning,
    /// The schedule (or its inputs) is broken.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of the diagnostics pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScheduleDiagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code (see the module table).
    pub code: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for ScheduleDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.detail)
    }
}

impl ScheduleDiagnostic {
    fn error(code: &'static str, detail: String) -> Self {
        ScheduleDiagnostic {
            severity: Severity::Error,
            code,
            detail,
        }
    }

    fn warning(code: &'static str, detail: String) -> Self {
        ScheduleDiagnostic {
            severity: Severity::Warning,
            code,
            detail,
        }
    }

    fn info(code: &'static str, detail: String) -> Self {
        ScheduleDiagnostic {
            severity: Severity::Info,
            code,
            detail,
        }
    }
}

/// Whether `code` belongs to the validation group — the legality rules
/// whose first `Error` is what [`crate::validate_schedule`] reports.
pub fn is_validation_code(code: &str) -> bool {
    matches!(
        code,
        "shape" | "cost-table" | "duration" | "overlap" | "data-dep" | "makespan"
    )
}

/// Runs the full diagnostics pass with a prebuilt edge-cost table.
///
/// Emits the validation findings first, in exactly the order the
/// historical validator checked them (shape, cost-table provenance,
/// per-layer durations and overlaps, data dependencies, makespan), then
/// the analysis findings. When the schedule's shape disagrees with the
/// layer list, only the shape findings are returned — nothing else can be
/// indexed safely.
#[must_use]
pub fn analyze_costed(
    layers: &[LayerSets],
    deps: &Dependencies,
    schedule: &Schedule,
    costed: &CostedDeps,
) -> Vec<ScheduleDiagnostic> {
    let mut out = Vec::new();

    // -- shape (gate: everything below indexes through it) ---------------
    if !check_shape(layers, schedule, &mut out) {
        return out;
    }
    // The historical validator assumed deps agree with the schedule shape
    // (they always do when both come from the pipeline) and would index
    // out of bounds otherwise; the diagnostics pass degrades gracefully.
    let deps_aligned = deps.num_layers() == layers.len()
        && (0..deps.num_layers()).all(|l| deps.space().sets_in(l) == schedule.layer(l).len());
    if !deps_aligned {
        out.push(ScheduleDiagnostic::error(
            "shape",
            format!(
                "dependencies cover a different set space ({} layers) than the schedule ({})",
                deps.num_layers(),
                schedule.num_layers()
            ),
        ));
        return out;
    }

    // -- cost-table provenance -------------------------------------------
    let costed_ok = costed.matches(deps);
    if !costed_ok {
        out.push(ScheduleDiagnostic::error(
            "cost-table",
            "cost table was built from different dependencies".to_string(),
        ));
    }

    // -- durations and PE-group ordering, layer by layer ------------------
    let mut latest = 0u64;
    for (li, layer) in layers.iter().enumerate() {
        let times = schedule.layer(li);
        for (si, (t, set)) in times.iter().zip(&layer.sets).enumerate() {
            if t.finish.saturating_sub(t.start) != set.duration {
                out.push(ScheduleDiagnostic::error(
                    "duration",
                    format!(
                        "layer `{}` set {si}: window [{}, {}) does not match duration {}",
                        layer.name, t.start, t.finish, set.duration
                    ),
                ));
            }
            latest = latest.max(t.finish);
        }
        for (si, w) in times.windows(2).enumerate() {
            if w[1].start < w[0].finish {
                out.push(ScheduleDiagnostic::error(
                    "overlap",
                    format!(
                        "layer `{}`: set {} starts at {} before set {} finishes at {} \
                         (one PE group cannot overlap)",
                        layer.name,
                        si + 1,
                        w[1].start,
                        si,
                        w[0].finish
                    ),
                ));
            }
        }
    }

    // -- data dependencies (needs a matching cost table) ------------------
    if costed_ok {
        for l in 0..deps.num_layers() {
            for s in 0..deps.space().sets_in(l) {
                let c = schedule.time(l, s);
                for (producer, &lat) in deps.of(l, s).iter().zip(costed.latencies_of(l, s)) {
                    let p = schedule.time(producer.layer, producer.set);
                    let arrival = p.finish + lat;
                    if c.start < arrival {
                        let consumer = SetRef { layer: l, set: s };
                        out.push(ScheduleDiagnostic::error(
                            "data-dep",
                            format!(
                                "data dependency violated: {producer} arrives at {arrival} but \
                                 {consumer} starts at {}",
                                c.start
                            ),
                        ));
                    }
                }
            }
        }
    }

    // -- makespan ---------------------------------------------------------
    if schedule.makespan != latest {
        out.push(ScheduleDiagnostic::error(
            "makespan",
            format!(
                "makespan {} does not match latest finish {latest}",
                schedule.makespan
            ),
        ));
    }

    // -- analysis group (never consumed by the validator) -----------------
    analyze_deps(layers, deps, &mut out);
    out
}

/// Analysis-only findings over the dependency structure: backward edges,
/// cycles, unreachable sets, and fan-in anomalies.
fn analyze_deps(layers: &[LayerSets], deps: &Dependencies, out: &mut Vec<ScheduleDiagnostic>) {
    // Backward (non-topological) edges. `Dependencies::from_edges` admits
    // arbitrary producer/consumer pairs; the schedulers require every
    // producer to live in an earlier layer.
    for l in 0..deps.num_layers() {
        for s in 0..deps.space().sets_in(l) {
            for dep in deps.of(l, s) {
                if dep.layer >= l {
                    let consumer = SetRef { layer: l, set: s };
                    out.push(ScheduleDiagnostic::error(
                        "backward-dep",
                        format!(
                            "producer {dep} of {consumer} is not in an earlier layer; \
                             no topological schedule exists"
                        ),
                    ));
                }
            }
        }
    }

    // Cycle detection over the producer graph (iterative three-colour
    // DFS). Layer-respecting dependencies are acyclic by construction, so
    // a cycle implies backward edges — but it names the loop explicitly.
    if let Some(witness) = find_cycle(deps) {
        out.push(ScheduleDiagnostic::error(
            "cycle",
            format!("dependency cycle through {witness}"),
        ));
    }

    // Unreachable sets: a set past the input layer with no producers can
    // never receive data.
    for l in 1..deps.num_layers() {
        for s in 0..deps.space().sets_in(l) {
            if deps.fan_in(l, s) == 0 {
                let set = SetRef { layer: l, set: s };
                let name = layers.get(l).map_or("?", |ls| ls.name.as_str());
                out.push(ScheduleDiagnostic::warning(
                    "unreachable",
                    format!(
                        "{set} (layer `{name}`) has no producers; it is unreachable \
                         from the input layer"
                    ),
                ));
            }
        }
    }

    // Fan-in anomalies: a set whose fan-in dwarfs the mean serialises an
    // unusual number of producers — usually a set policy that is too
    // coarse upstream of a concatenation.
    let mut total = 0usize;
    let mut counted = 0usize;
    let mut max_ref = None;
    let mut max_fan = 0usize;
    for l in 0..deps.num_layers() {
        for s in 0..deps.space().sets_in(l) {
            let f = deps.fan_in(l, s);
            if f > 0 {
                total += f;
                counted += 1;
            }
            if f > max_fan {
                max_fan = f;
                max_ref = Some(SetRef { layer: l, set: s });
            }
        }
    }
    if counted > 0 {
        let mean = total as f64 / counted as f64;
        let threshold = (4.0 * mean).max(8.0);
        if let Some(set) = max_ref {
            if max_fan as f64 > threshold {
                out.push(ScheduleDiagnostic::warning(
                    "fan-in",
                    format!(
                        "{set} has fan-in {max_fan}, {:.1}x the mean of {mean:.1}; \
                         its producers serialise the schedule",
                        max_fan as f64 / mean
                    ),
                ));
            }
        }
    }
}

/// Finds one set on a dependency cycle, if any (three-colour DFS over the
/// producer edges, iterative to stay stack-safe on deep graphs).
fn find_cycle(deps: &Dependencies) -> Option<SetRef> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let space = deps.space();
    let mut colour = vec![WHITE; space.total_sets()];
    for l in 0..deps.num_layers() {
        for s in 0..space.sets_in(l) {
            if colour[space.index(l, s)] != WHITE {
                continue;
            }
            // Explicit stack of (node, next-producer-index).
            let mut stack: Vec<(SetRef, usize)> = vec![(SetRef { layer: l, set: s }, 0)];
            colour[space.index(l, s)] = GREY;
            while let Some(top) = stack.last_mut() {
                let node = top.0;
                let producers = deps.of(node.layer, node.set);
                if top.1 >= producers.len() {
                    colour[space.index(node.layer, node.set)] = BLACK;
                    stack.pop();
                    continue;
                }
                let p = producers[top.1];
                top.1 += 1;
                match colour[space.index(p.layer, p.set)] {
                    WHITE => {
                        colour[space.index(p.layer, p.set)] = GREY;
                        stack.push((p, 0));
                    }
                    GREY => return Some(p),
                    _ => {}
                }
            }
        }
    }
    None
}

/// Architecture-aware capacity findings over the Stage-I mapping:
///
/// * `capacity` ([`Severity::Error`]) — the per-layer PE groups together
///   exceed the machine (weights are stationary: every base layer's group
///   must coexist), or a single group alone does;
/// * `tile-span` ([`Severity::Info`]) — one summary line counting the
///   groups that span multiple tiles (NoC traffic crosses tile
///   boundaries there).
///
/// Separate from [`analyze_costed`] because the validator has no
/// [`Architecture`] in scope; the `lint-schedule` binary concatenates
/// both passes.
#[must_use]
pub fn capacity_diagnostics(layers: &[LayerSets], arch: &Architecture) -> Vec<ScheduleDiagnostic> {
    let mut out = Vec::new();
    let total: usize = layers.iter().map(|l| l.pes).sum();
    let avail = arch.total_pes();
    for layer in layers {
        if layer.pes > avail {
            out.push(ScheduleDiagnostic::error(
                "capacity",
                format!(
                    "layer `{}` needs {} PEs but the architecture has {avail}",
                    layer.name, layer.pes
                ),
            ));
        }
    }
    if total > avail {
        out.push(ScheduleDiagnostic::error(
            "capacity",
            format!(
                "mapping needs {total} PEs across {} layer groups but the \
                 architecture has {avail} (weights are stationary; groups coexist)",
                layers.len()
            ),
        ));
    }
    let per_tile = arch.tile().pes_per_tile.max(1);
    let spanning = layers.iter().filter(|l| l.pes > per_tile).count();
    if spanning > 0 {
        let widest = layers.iter().map(|l| l.pes.div_ceil(per_tile)).max().unwrap_or(1);
        out.push(ScheduleDiagnostic::info(
            "tile-span",
            format!(
                "{spanning} of {} layer groups span multiple tiles \
                 (widest: {widest} tiles of {per_tile} PEs); their OFM traffic crosses the NoC",
                layers.len()
            ),
        ));
    }
    out
}

/// Shape agreement between the schedule and the layer list; pushes
/// findings and reports whether the shape is sound enough to continue.
fn check_shape(
    layers: &[LayerSets],
    schedule: &Schedule,
    out: &mut Vec<ScheduleDiagnostic>,
) -> bool {
    if schedule.num_layers() != layers.len() {
        out.push(ScheduleDiagnostic::error(
            "shape",
            format!(
                "schedule has {} layers, expected {}",
                schedule.num_layers(),
                layers.len()
            ),
        ));
        return false;
    }
    let mut ok = true;
    for (li, layer) in layers.iter().enumerate() {
        let n = schedule.layer(li).len();
        if n != layer.sets.len() {
            out.push(ScheduleDiagnostic::error(
                "shape",
                format!(
                    "layer `{}` has {} windows for {} sets",
                    layer.name,
                    n,
                    layer.sets.len()
                ),
            ));
            ok = false;
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::determine_dependencies;
    use crate::schedule::{cross_layer_schedule, EdgeCost, Schedule};
    use crate::sets::{determine_sets, SetPolicy};
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
    use cim_mapping::{layer_costs, MappingOptions};

    fn pipeline() -> (Vec<LayerSets>, Dependencies, Schedule) {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g
            .add(
                "c1",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 8,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Valid,
                    use_bias: false,
                }),
                &[x],
            )
            .unwrap();
        g.add(
            "c2",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[c1],
        )
        .unwrap();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(&g, &costs, &SetPolicy::finest()).unwrap();
        let deps = determine_dependencies(&g, &layers).unwrap();
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        (layers, deps, s)
    }

    #[test]
    fn clean_pipelines_have_no_errors_or_warnings() {
        let (layers, deps, s) = pipeline();
        let costed = CostedDeps::free(&layers, &deps).unwrap();
        let diags = analyze_costed(&layers, &deps, &s, &costed);
        assert!(
            diags.iter().all(|d| d.severity == Severity::Info),
            "unexpected findings: {diags:?}"
        );
    }

    #[test]
    fn every_violation_is_reported_not_just_the_first() {
        let (layers, deps, mut s) = pipeline();
        // Break a duration AND the makespan: the one-shot validator stops
        // at the duration; the diagnostics pass reports both.
        s.time_mut(0, 0).finish += 1;
        s.makespan += 7;
        let costed = CostedDeps::free(&layers, &deps).unwrap();
        let diags = analyze_costed(&layers, &deps, &s, &costed);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"duration"), "{codes:?}");
        assert!(codes.contains(&"makespan"), "{codes:?}");
    }

    #[test]
    fn backward_edges_yield_backward_dep_and_cycle_findings() {
        let (layers, _deps, s) = pipeline();
        let counts: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
        // 0→1 plus the illegal 1→0 back-edge: a two-set cycle.
        let a = SetRef { layer: 0, set: 0 };
        let b = SetRef { layer: 1, set: 0 };
        let deps = Dependencies::from_edges(&counts, &[(a, b), (b, a)]).unwrap();
        let costed = CostedDeps::free(&layers, &deps).unwrap();
        let diags = analyze_costed(&layers, &deps, &s, &costed);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"backward-dep"), "{codes:?}");
        assert!(codes.contains(&"cycle"), "{codes:?}");
    }

    #[test]
    fn orphan_sets_are_flagged_unreachable() {
        let (layers, _deps, s) = pipeline();
        let counts: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
        // Only one edge into layer 1: everything else downstream is orphaned.
        let a = SetRef { layer: 0, set: 0 };
        let b = SetRef { layer: 1, set: 0 };
        let deps = Dependencies::from_edges(&counts, &[(a, b)]).unwrap();
        let costed = CostedDeps::free(&layers, &deps).unwrap();
        let diags = analyze_costed(&layers, &deps, &s, &costed);
        assert!(
            diags.iter().any(|d| d.code == "unreachable"),
            "{diags:?}"
        );
    }

    #[test]
    fn capacity_overflow_is_an_error() {
        let (layers, _deps, _s) = pipeline();
        // 1-PE machine: every group overflows it.
        let arch = Architecture::builder().pes(1).build().unwrap();
        let diags = capacity_diagnostics(&layers, &arch);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "capacity" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn display_is_severity_code_detail() {
        let d = ScheduleDiagnostic::error("duration", "x".to_string());
        assert_eq!(d.to_string(), "error[duration]: x");
    }

    #[test]
    fn validation_codes_are_classified() {
        for c in ["shape", "cost-table", "duration", "overlap", "data-dep", "makespan"] {
            assert!(is_validation_code(c));
        }
        for c in ["backward-dep", "cycle", "unreachable", "fan-in", "capacity", "tile-span"] {
            assert!(!is_validation_code(c));
        }
    }
}
