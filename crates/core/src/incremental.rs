//! Incremental re-evaluation: a dirty-key protocol over the pipeline's
//! per-stage inputs.
//!
//! The pipeline already splits into a reusable front half
//! ([`prepare`]: mapping + Stages I & II) and a cheap back half
//! ([`run_prepared`]: cost model + Stages III & IV). What was missing is
//! the *classification*: given an old configuration and a mutated one,
//! which stages must recompute and which artifacts can be reused
//! verbatim? [`Invalidation::between`] answers that question from the
//! same config facets the fingerprint keys are built on
//! ([`RunConfig::prepare_arch_facet`], [`RunConfig::mapping_facet`],
//! [`RunConfig::scheduling_facet`]), so a stage reported *clean* here is
//! exactly a stage whose cache key is unchanged — the invariant
//! `cim-bench`'s stage cache asserts in debug builds.
//!
//! The report is deliberately conservative in one direction only: a
//! *clean* verdict is a guarantee (recomputing would reproduce the
//! artifact bit for bit), while a *dirty* verdict may occasionally be
//! pessimistic (e.g. toggling `noc_cost` on a layer-by-layer run changes
//! no schedule bytes but can surface a placement error, so it dirties
//! the cost table).
//!
//! ```
//! use cim_arch::Architecture;
//! use clsa_core::{Invalidation, PipelineStage, RunConfig};
//!
//! # fn main() -> Result<(), clsa_core::CoreError> {
//! let old = RunConfig::baseline(Architecture::paper_case_study(8)?).with_cross_layer();
//! // Mutate a scheduling-side axis: the NoC hop latency.
//! let mut new = old.clone();
//! new.arch = Architecture::builder()
//!     .crossbar(*old.arch.crossbar())
//!     .tile(*old.arch.tile())
//!     .noc_hop_latency(7)
//!     .pes(old.arch.total_pes())
//!     .build()?;
//! let inv = Invalidation::between(&old, &new);
//! // The mapping-side artifacts survive the mutation…
//! assert!(!inv.is_dirty(PipelineStage::Prepare));
//! // …and with no data-movement cost model, nothing downstream reads
//! // the hop latency either: the whole report is clean.
//! assert!(inv.is_clean());
//! # Ok(())
//! # }
//! ```

use std::fmt;

use cim_ir::Graph;

use crate::error::Result;
use crate::pipeline::{prepare, run_prepared, Prepared, RunConfig, RunResult};

/// The recomputation granules of one pipeline run, in dataflow order.
///
/// Each stage is keyed by a disjoint slice of [`RunConfig`]: `Prepare` by
/// the mapping facet + the crossbar/PE-budget facet of the architecture,
/// `CostTable` additionally by the cost flags, placement, and the
/// scheduling-visible architecture facets (tile, NoC), and `Schedule` by
/// all of the above plus the scheduling choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Mapping + Stages I & II ([`prepare`]): the expensive front half.
    Prepare,
    /// The precomputed per-edge cost table ([`crate::CostedDeps`]).
    CostTable,
    /// Stages III & IV (or the baseline) plus validation and metrics.
    Schedule,
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PipelineStage::Prepare => "prepare",
            PipelineStage::CostTable => "cost-table",
            PipelineStage::Schedule => "schedule",
        })
    }
}

/// One stage's verdict inside an [`Invalidation`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStatus {
    /// Which stage this verdict is about.
    pub stage: PipelineStage,
    /// Whether the stage must recompute under the new configuration.
    pub dirty: bool,
    /// Human-readable reasons (config diffs or upstream propagation);
    /// empty exactly when the stage is clean.
    pub reasons: Vec<String>,
}

/// The dirty-key report for a configuration mutation: which pipeline
/// stages must recompute, and why.
///
/// Build one with [`Invalidation::between`]; consume it via
/// [`is_dirty`](Self::is_dirty) / [`is_clean`](Self::is_clean), the
/// public [`stages`](Self::stages) array, or its [`Display`](fmt::Display)
/// rendering (one `stage: clean|dirty (reasons)` line per stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invalidation {
    /// Per-stage verdicts in dataflow order:
    /// `[Prepare, CostTable, Schedule]`.
    pub stages: [StageStatus; 3],
}

/// Records `name: old -> new` into `reasons` when the values differ.
fn diff<T: fmt::Debug + PartialEq>(name: &str, old: &T, new: &T, reasons: &mut Vec<String>) {
    if old != new {
        reasons.push(format!("{name} {old:?} -> {new:?}"));
    }
}

impl Invalidation {
    /// Classifies the mutation `old -> new` stage by stage.
    ///
    /// A stage is dirty iff a config facet it reads differs, or an
    /// upstream stage is dirty. Scheduling-side mutations (tile shape,
    /// NoC hop latency, cost model, placement) leave `Prepare` clean by
    /// construction — that is the reuse the incremental evaluators
    /// exploit — and architecture facets beyond the prepare slice only
    /// dirty the cost table when a data-movement cost model
    /// (`noc_cost`/`gpeu_cost`) is active on either side.
    pub fn between(old: &RunConfig, new: &RunConfig) -> Self {
        // Prepare: the stage key facets, field by field.
        let mut prep = Vec::new();
        let (xbar_old, pes_old) = old.prepare_arch_facet();
        let (xbar_new, pes_new) = new.prepare_arch_facet();
        diff("arch.crossbar", xbar_old, xbar_new, &mut prep);
        diff("arch.total_pes", &pes_old, &pes_new, &mut prep);
        let (map_old, pol_old, opt_old) = old.mapping_facet();
        let (map_new, pol_new, opt_new) = new.mapping_facet();
        diff("mapping", map_old, map_new, &mut prep);
        diff("set_policy", pol_old, pol_new, &mut prep);
        diff("mapping_options", opt_old, opt_new, &mut prep);
        let prepare_dirty = !prep.is_empty();

        // Cost table: cost flags always; placement, the scheduling-visible
        // architecture facets, and the table-selecting scheduling choice
        // only when a cost model is in play on either side.
        let mut cost = Vec::new();
        if prepare_dirty {
            cost.push("upstream prepare artifacts dirty".to_string());
        }
        diff("noc_cost", &old.noc_cost, &new.noc_cost, &mut cost);
        diff("gpeu_cost", &old.gpeu_cost, &new.gpeu_cost, &mut cost);
        let cost_model = |c: &RunConfig| c.noc_cost || c.gpeu_cost;
        if cost_model(old) || cost_model(new) {
            diff("placement", &old.placement, &new.placement, &mut cost);
            diff("arch.tile", old.arch.tile(), new.arch.tile(), &mut cost);
            diff("arch.noc", old.arch.noc(), new.arch.noc(), &mut cost);
            if old.scheduling != new.scheduling {
                cost.push(format!(
                    "scheduling {:?} -> {:?} selects a different cost table",
                    old.scheduling, new.scheduling
                ));
            }
        }
        let cost_dirty = !cost.is_empty();

        // Schedule: anything upstream, plus the scheduling choice itself.
        let mut sched = Vec::new();
        if cost_dirty {
            sched.push("upstream cost table dirty".to_string());
        }
        diff("scheduling", &old.scheduling, &new.scheduling, &mut sched);

        let status = |stage, reasons: Vec<String>| StageStatus {
            stage,
            dirty: !reasons.is_empty(),
            reasons,
        };
        Invalidation {
            stages: [
                status(PipelineStage::Prepare, prep),
                status(PipelineStage::CostTable, cost),
                status(PipelineStage::Schedule, sched),
            ],
        }
    }

    /// The verdict for one stage.
    pub fn status(&self, stage: PipelineStage) -> &StageStatus {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .expect("all three stages are always present") // cim-lint: allow(panic-unwrap) the array is constructed exhaustively
    }

    /// Whether `stage` must recompute.
    pub fn is_dirty(&self, stage: PipelineStage) -> bool {
        self.status(stage).dirty
    }

    /// Whether *no* stage must recompute — the mutation is output-neutral
    /// and every artifact (including the schedule itself) can be reused.
    pub fn is_clean(&self) -> bool {
        self.stages.iter().all(|s| !s.dirty)
    }
}

impl fmt::Display for Invalidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}: {}", s.stage, if s.dirty { "dirty" } else { "clean" })?;
            if !s.reasons.is_empty() {
                write!(f, " ({})", s.reasons.join("; "))?;
            }
        }
        Ok(())
    }
}

/// The outcome of [`run_incremental`]: the result, the dirty-key report
/// that drove it, and whether the previous stage artifacts were reused.
#[derive(Debug, Clone)]
pub struct IncrementalRun {
    /// The completed (validated) pipeline run under the new config.
    pub result: RunResult,
    /// The stage-by-stage classification of the mutation.
    pub invalidation: Invalidation,
    /// `true` iff `Prepare` was clean and the previous [`Prepared`] was
    /// reused — in that case `result.mapped_graph`/`layers`/`deps` are
    /// the *same* `Arc`s as the previous run's.
    pub reused_prepare: bool,
}

/// Re-evaluates a mutated configuration, reusing the previous run's
/// stage artifacts wherever the dirty-key report allows.
///
/// `prev` must be the [`Prepared`] built from `old` on this `graph` —
/// the classification is computed from the configs alone, so handing in
/// artifacts from a different config silently reuses the wrong mapping.
/// The result is bit-identical to a from-scratch
/// [`run`](crate::run)`(graph, new)` (differential-tested in
/// `tests/incremental_differential.rs`).
///
/// # Errors
///
/// Propagates mapping, placement, scheduling, and validation failures,
/// exactly as a from-scratch run would.
pub fn run_incremental(
    graph: &Graph,
    prev: &Prepared,
    old: &RunConfig,
    new: &RunConfig,
) -> Result<IncrementalRun> {
    let invalidation = Invalidation::between(old, new);
    let reused_prepare = !invalidation.is_dirty(PipelineStage::Prepare);
    let result = if reused_prepare {
        run_prepared(prev, new)?
    } else {
        run_prepared(&prepare(graph, new)?, new)?
    };
    Ok(IncrementalRun {
        result,
        invalidation,
        reused_prepare,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run;
    use cim_arch::{Architecture, PlacementStrategy, TileSpec};
    use cim_ir::{Conv2dAttrs, FeatureShape, Op, Padding};
    use std::sync::Arc;

    /// A 2-conv chain, PE_min = 2.
    fn chain() -> Graph {
        let mut g = Graph::new("chain");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(18, 18, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g
            .add(
                "c1",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 8,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Valid,
                    use_bias: false,
                }),
                &[x],
            )
            .unwrap();
        g.add(
            "c2",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 4,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[c1],
        )
        .unwrap();
        g
    }

    fn arch_with_hops(pes: usize, hops: u64) -> Architecture {
        Architecture::builder()
            .tile(TileSpec {
                pes_per_tile: 1,
                ..TileSpec::isaac_like()
            })
            .noc_hop_latency(hops)
            .pes(pes)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_configs_are_fully_clean() {
        let cfg = RunConfig::baseline(arch_with_hops(2, 2)).with_cross_layer();
        let inv = Invalidation::between(&cfg, &cfg);
        assert!(inv.is_clean(), "{inv}");
        assert!(inv.stages.iter().all(|s| s.reasons.is_empty()));
    }

    #[test]
    fn pe_budget_change_dirties_everything() {
        let old = RunConfig::baseline(arch_with_hops(2, 2));
        let new = RunConfig::baseline(arch_with_hops(3, 2));
        let inv = Invalidation::between(&old, &new);
        assert!(inv.is_dirty(PipelineStage::Prepare));
        assert!(inv.is_dirty(PipelineStage::CostTable));
        assert!(inv.is_dirty(PipelineStage::Schedule));
        assert!(
            inv.status(PipelineStage::Prepare).reasons[0].contains("arch.total_pes"),
            "{inv}"
        );
    }

    #[test]
    fn hop_latency_change_without_cost_model_is_clean() {
        let old = RunConfig::baseline(arch_with_hops(2, 0)).with_cross_layer();
        let mut new = old.clone();
        new.arch = arch_with_hops(2, 9);
        let inv = Invalidation::between(&old, &new);
        assert!(inv.is_clean(), "hop latency is unread without noc_cost: {inv}");
    }

    #[test]
    fn hop_latency_change_under_noc_cost_spares_prepare() {
        let mut old = RunConfig::baseline(arch_with_hops(2, 2)).with_cross_layer();
        old.noc_cost = true;
        let mut new = old.clone();
        new.arch = arch_with_hops(2, 9);
        let inv = Invalidation::between(&old, &new);
        assert!(!inv.is_dirty(PipelineStage::Prepare), "{inv}");
        assert!(inv.is_dirty(PipelineStage::CostTable));
        assert!(inv.is_dirty(PipelineStage::Schedule));
        assert!(
            inv.status(PipelineStage::CostTable)
                .reasons
                .iter()
                .any(|r| r.contains("arch.noc")),
            "{inv}"
        );
    }

    #[test]
    fn scheduling_flip_without_cost_model_only_dirties_the_schedule() {
        let old = RunConfig::baseline(arch_with_hops(2, 0));
        let new = old.clone().with_cross_layer();
        let inv = Invalidation::between(&old, &new);
        assert!(!inv.is_dirty(PipelineStage::Prepare));
        assert!(!inv.is_dirty(PipelineStage::CostTable), "{inv}");
        assert!(inv.is_dirty(PipelineStage::Schedule));
    }

    #[test]
    fn placement_change_without_cost_model_is_clean() {
        let old = RunConfig::baseline(arch_with_hops(2, 0)).with_cross_layer();
        let mut new = old.clone();
        new.placement = PlacementStrategy::RoundRobinTiles;
        let inv = Invalidation::between(&old, &new);
        assert!(inv.is_clean(), "placement is unobservable without a cost model: {inv}");
    }

    #[test]
    fn display_names_stages_and_reasons() {
        let mut old = RunConfig::baseline(arch_with_hops(2, 2)).with_cross_layer();
        old.noc_cost = true;
        let mut new = old.clone();
        new.arch = arch_with_hops(2, 5);
        let text = Invalidation::between(&old, &new).to_string();
        assert!(text.contains("prepare: clean"), "{text}");
        assert!(text.contains("cost-table: dirty"), "{text}");
        assert!(text.contains("schedule: dirty"), "{text}");
    }

    #[test]
    fn run_incremental_reuses_clean_prepare_artifacts() {
        let g = chain();
        let mut old = RunConfig::baseline(arch_with_hops(2, 2)).with_cross_layer();
        old.noc_cost = true;
        let prev = prepare(&g, &old).unwrap();
        let mut new = old.clone();
        new.arch = arch_with_hops(2, 7);

        let inc = run_incremental(&g, &prev, &old, &new).unwrap();
        assert!(inc.reused_prepare);
        assert!(Arc::ptr_eq(&inc.result.mapped_graph, &prev.mapped_graph));
        assert!(Arc::ptr_eq(&inc.result.layers, &prev.layers));

        let scratch = run(&g, &new).unwrap();
        assert_eq!(inc.result.schedule, scratch.schedule);
        assert_eq!(inc.result.report, scratch.report);
    }

    #[test]
    fn run_incremental_reprepares_on_dirty_prepare() {
        let g = chain();
        let old = RunConfig::baseline(arch_with_hops(2, 2)).with_cross_layer();
        let prev = prepare(&g, &old).unwrap();
        let mut new = old.clone();
        new.arch = arch_with_hops(4, 2);

        let inc = run_incremental(&g, &prev, &old, &new).unwrap();
        assert!(!inc.reused_prepare);
        assert!(!Arc::ptr_eq(&inc.result.mapped_graph, &prev.mapped_graph));
        let scratch = run(&g, &new).unwrap();
        assert_eq!(inc.result.schedule, scratch.schedule);
        assert_eq!(inc.result.report, scratch.report);
    }
}
