//! Stage II — determine dependencies (Sec. IV-2 of the paper, Fig. 5b).
//!
//! For every OFM set of every base layer, find the OFM sets of *predecessor*
//! base layers whose data it needs. The set's rectangle is propagated
//! backward along the non-base layer path (bias, activation, pooling,
//! padding, slice, concat, …) using the receptive-field arithmetic of
//! [`cim_ir::input_region`]; a producer set is a dependency iff the
//! propagated rectangle intersects it.
//!
//! One producer set can influence multiple consumer sets (the paper's `Q`
//! relation) and one consumer set can require multiple producer sets (`P`).

use std::collections::HashSet;

use cim_ir::{input_region, Graph, NodeId, Op, Rect};
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::sets::LayerSets;

/// Identifier of a set: layer index (into the Stage-I slice) and set index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SetRef {
    /// Index of the layer in the Stage-I output.
    pub layer: usize,
    /// Index of the set within the layer.
    pub set: usize,
}

impl std::fmt::Display for SetRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}S{}", self.layer, self.set)
    }
}

/// The Stage-II result: per consumer set, the producer sets it depends on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependencies {
    /// `deps[l][s]` — producer sets required by set `s` of layer `l`,
    /// sorted and deduplicated.
    deps: Vec<Vec<Vec<SetRef>>>,
}

impl Dependencies {
    /// Builds a dependency structure directly from `(consumer, producer)`
    /// edges — for synthetic workloads, failure-injection tests, and users
    /// bringing their own dependency analysis.
    ///
    /// `sets_per_layer[l]` is the number of Stage-I sets of layer `l`.
    /// Edges are deduplicated and sorted. Note that *topological* sanity
    /// (producers strictly earlier than consumers) is deliberately not
    /// enforced here; the schedulers and the simulator detect violations
    /// themselves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StageMismatch`] when an edge references a
    /// nonexistent layer or set.
    pub fn from_edges(sets_per_layer: &[usize], edges: &[(SetRef, SetRef)]) -> Result<Self> {
        let mut deps: Vec<Vec<Vec<SetRef>>> = sets_per_layer
            .iter()
            .map(|&n| vec![Vec::new(); n])
            .collect();
        for &(consumer, producer) in edges {
            for r in [consumer, producer] {
                let ok = r.layer < sets_per_layer.len() && r.set < sets_per_layer[r.layer];
                if !ok {
                    return Err(CoreError::StageMismatch {
                        detail: format!("edge endpoint {r} out of range"),
                    });
                }
            }
            deps[consumer.layer][consumer.set].push(producer);
        }
        for sets in &mut deps {
            for d in sets {
                d.sort_unstable();
                d.dedup();
            }
        }
        Ok(Self { deps })
    }

    /// Producer sets required by set `s` of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn of(&self, l: usize, s: usize) -> &[SetRef] {
        &self.deps[l][s]
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.deps.len()
    }

    /// Iterates over all `(consumer, producer)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (SetRef, SetRef)> + '_ {
        self.deps.iter().enumerate().flat_map(|(l, sets)| {
            sets.iter()
                .enumerate()
                .flat_map(move |(s, ds)| ds.iter().map(move |&p| (SetRef { layer: l, set: s }, p)))
        })
    }

    /// Total number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.deps.iter().flatten().map(Vec::len).sum()
    }

    /// The paper's `P` value for a consumer set: how many producer sets it
    /// is affected by.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fan_in(&self, l: usize, s: usize) -> usize {
        self.deps[l][s].len()
    }

    /// The paper's `Q` relation, inverted from the stored edges: for every
    /// producer set, the consumer sets it influences.
    pub fn fan_out(&self) -> Vec<Vec<Vec<SetRef>>> {
        let mut out: Vec<Vec<Vec<SetRef>>> = self
            .deps
            .iter()
            .map(|sets| vec![Vec::new(); sets.len()])
            .collect();
        for (consumer, producer) in self.edges() {
            out[producer.layer][producer.set].push(consumer);
        }
        out
    }
}

/// Runs Stage II on the Stage-I output.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] when `layers` does not correspond to
/// `graph` and propagates graph access errors.
///
/// # Examples
///
/// See the crate-level documentation for the worked Fig. 5 example.
pub fn determine_dependencies(graph: &Graph, layers: &[LayerSets]) -> Result<Dependencies> {
    // Map node id -> layer index for base layers.
    let mut layer_of = vec![usize::MAX; graph.len()];
    for (i, l) in layers.iter().enumerate() {
        let node = graph.node(l.node)?;
        if !node.op.is_base() {
            return Err(CoreError::StageMismatch {
                detail: format!("layer entry `{}` is not a base layer", l.name),
            });
        }
        layer_of[l.node.index()] = i;
    }

    let mut deps: Vec<Vec<Vec<SetRef>>> = layers
        .iter()
        .map(|l| vec![Vec::new(); l.sets.len()])
        .collect();

    for (li, layer) in layers.iter().enumerate() {
        let node = graph.node(layer.node)?;
        let in_shapes: Vec<_> = node
            .inputs
            .iter()
            .map(|&i| graph.node(i).map(|n| n.out_shape))
            .collect::<std::result::Result<_, _>>()?;
        for (si, set) in layer.sets.iter().enumerate() {
            // The IFM region this conv/dense set needs.
            let mut found: HashSet<SetRef> = HashSet::new();
            for (idx, &inp) in node.inputs.iter().enumerate() {
                if let Some(r) = input_region(&node.op, set.rect, &in_shapes, idx, node.out_shape) {
                    back_propagate(graph, &layer_of, layers, inp, r, &mut found)?;
                }
            }
            let mut v: Vec<SetRef> = found.into_iter().collect();
            v.sort_unstable();
            deps[li][si] = v;
        }
    }
    Ok(Dependencies { deps })
}

/// Propagates `rect` (a region of `node`'s output) backwards until base
/// layers or graph inputs are reached, recording intersecting producer sets.
fn back_propagate(
    graph: &Graph,
    layer_of: &[usize],
    layers: &[LayerSets],
    node: NodeId,
    rect: Rect,
    found: &mut HashSet<SetRef>,
) -> Result<()> {
    let n = graph.node(node)?;
    if n.op.is_base() {
        let li = layer_of[node.index()];
        if li == usize::MAX {
            return Err(CoreError::StageMismatch {
                detail: format!("base layer `{}` has no Stage-I sets", n.name),
            });
        }
        for (si, set) in layers[li].sets.iter().enumerate() {
            if set.rect.intersects(&rect) {
                found.insert(SetRef { layer: li, set: si });
            }
        }
        return Ok(());
    }
    if matches!(n.op, Op::Input { .. }) {
        return Ok(());
    }
    let in_shapes: Vec<_> = n
        .inputs
        .iter()
        .map(|&i| graph.node(i).map(|x| x.out_shape))
        .collect::<std::result::Result<_, _>>()?;
    for (idx, &inp) in n.inputs.iter().enumerate() {
        if let Some(r) = input_region(&n.op, rect, &in_shapes, idx, n.out_shape) {
            back_propagate(graph, layer_of, layers, inp, r, found)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, PadSpec, Padding, PoolAttrs};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::sets::{determine_sets, SetPolicy};

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    fn stages(g: &Graph, policy: &SetPolicy) -> (Vec<LayerSets>, Dependencies) {
        let costs = layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(g, &costs, policy).unwrap();
        let deps = determine_dependencies(g, &layers).unwrap();
        (layers, deps)
    }

    /// The paper's Fig. 5 minimal example: two Conv2D layers with a
    /// bias → activation → pooling → padding non-base path in between.
    fn fig5_graph() -> Graph {
        let mut g = Graph::new("fig5");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("conv1", conv_op(8, 3, 1), &[x]).unwrap(); // 8×8
        let b = g.add("bias", Op::Bias, &[c1]).unwrap();
        let a = g.add("act", Op::Activation(ActFn::Relu), &[b]).unwrap();
        let p = g
            .add(
                "pool",
                Op::MaxPool2d(PoolAttrs {
                    window: (2, 2),
                    stride: (2, 2),
                    padding: Padding::Valid,
                }),
                &[a],
            )
            .unwrap(); // 4×4
        let pad = g
            .add("pad", Op::ZeroPad2d(PadSpec::uniform(1)), &[p])
            .unwrap(); // 6×6
        g.add("conv2", conv_op(8, 3, 1), &[pad]).unwrap(); // 4×4
        g
    }

    #[test]
    fn fig5_dependencies() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        // conv1: 8 rows, quantum 2 (pool) → 4 sets. conv2: 4 rows → 4 sets.
        assert_eq!(layers[0].sets.len(), 4);
        assert_eq!(layers[1].sets.len(), 4);

        // conv2 set 0 (OFM row 0) reads padded rows 0..=2 = pool rows 0..=1
        // = conv1 rows 0..=3 = conv1 sets {0, 1}.
        assert_eq!(
            deps.of(1, 0),
            &[SetRef { layer: 0, set: 0 }, SetRef { layer: 0, set: 1 }]
        );
        // conv2 set 1 reads padded rows 1..=3 = pool rows 0..=2 = conv1 rows
        // 0..=5 = sets {0, 1, 2}.
        assert_eq!(deps.fan_in(1, 1), 3);
        // conv2 set 3 (last row) reads padded rows 3..=5 = pool rows 2..=3 =
        // conv1 rows 4..=7 = sets {2, 3}.
        assert_eq!(
            deps.of(1, 3),
            &[SetRef { layer: 0, set: 2 }, SetRef { layer: 0, set: 3 }]
        );
        // conv1 has no base-layer predecessors.
        for s in 0..4 {
            assert!(deps.of(0, s).is_empty());
        }
    }

    #[test]
    fn fan_out_inverts_fan_in() {
        let g = fig5_graph();
        let (_, deps) = stages(&g, &SetPolicy::finest());
        let q = deps.fan_out();
        // conv1 set 0 feeds conv2 sets {0, 1} (the paper's Q relation).
        assert_eq!(
            q[0][0],
            vec![SetRef { layer: 1, set: 0 }, SetRef { layer: 1, set: 1 }]
        );
        // Edge count symmetry.
        let total_q: usize = q.iter().flatten().map(Vec::len).sum();
        assert_eq!(total_q, deps.num_edges());
    }

    #[test]
    fn single_set_policy_yields_full_dependencies() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::coarse(1));
        assert_eq!(layers[0].sets.len(), 1);
        assert_eq!(deps.of(1, 0), &[SetRef { layer: 0, set: 0 }]);
    }

    #[test]
    fn concat_branches_route_to_both_producers() {
        // Two conv branches concatenated on channels, then a consumer conv:
        // every consumer set depends on matching sets of both branches.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        let a = g.add("branch_a", conv_op(4, 1, 1), &[x]).unwrap(); // 8×8
        let b = g.add("branch_b", conv_op(4, 1, 1), &[x]).unwrap(); // 8×8
        let cat = g.add("cat", Op::Concat(cim_ir::Axis::C), &[a, b]).unwrap();
        g.add("head", conv_op(8, 1, 1), &[cat]).unwrap(); // 8×8
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // head is layer 2; its set k depends on row k of both branches.
        for s in 0..8 {
            assert_eq!(
                deps.of(2, s),
                &[SetRef { layer: 0, set: s }, SetRef { layer: 1, set: s }]
            );
        }
    }

    #[test]
    fn residual_add_joins_identity_and_conv_paths() {
        // x → c1 → c2 → add(c1's output) → c3 (a ResNet-style skip).
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 4),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 1, 1), &[x]).unwrap();
        let c2 = g.add("c2", conv_op(4, 1, 1), &[c1]).unwrap();
        let add = g.add("add", Op::Add, &[c1, c2]).unwrap();
        g.add("c3", conv_op(4, 1, 1), &[add]).unwrap();
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // c3 (layer 2) set k needs row k of both c1 (skip) and c2 (main).
        for s in 0..8 {
            assert_eq!(
                deps.of(2, s),
                &[SetRef { layer: 0, set: s }, SetRef { layer: 1, set: s }]
            );
        }
        // c2 set k needs only c1 set k (1×1 kernel).
        for s in 0..8 {
            assert_eq!(deps.of(1, s), &[SetRef { layer: 0, set: s }]);
        }
    }

    #[test]
    fn upsample_halves_producer_fanin() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 1, 1), &[x]).unwrap(); // 4×4
        let up = g
            .add("up", Op::Upsample2d { factor: (2, 2) }, &[c1])
            .unwrap(); // 8×8
        g.add("c2", conv_op(4, 1, 1), &[up]).unwrap(); // 8×8
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // c2 rows 2k and 2k+1 both map to c1 row k.
        for s in 0..8 {
            assert_eq!(
                deps.of(1, s),
                &[SetRef {
                    layer: 0,
                    set: s / 2
                }]
            );
        }
    }

    #[test]
    fn stride2_conv_consumes_two_producer_sets_per_set() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(11, 11, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 1, 1), &[x]).unwrap(); // 11×11
        g.add("c2", conv_op(4, 3, 2), &[c1]).unwrap(); // 5×5
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // c2 row r reads c1 rows 2r..=2r+2 → sets {2r, 2r+1, 2r+2}.
        for s in 0..5 {
            let expect: Vec<SetRef> = (2 * s..=2 * s + 2)
                .map(|k| SetRef { layer: 0, set: k })
                .collect();
            assert_eq!(deps.of(1, s), expect.as_slice());
        }
    }

    #[test]
    fn dense_depends_on_every_producer_set() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 3, 1), &[x]).unwrap(); // 4×4
        let f = g.add("flat", Op::Flatten, &[c1]).unwrap();
        g.add(
            "fc",
            Op::Dense(cim_ir::DenseAttrs {
                units: 10,
                use_bias: false,
            }),
            &[f],
        )
        .unwrap();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        // Flatten forces c1 into a single set; fc depends on it.
        assert_eq!(layers[0].sets.len(), 1);
        assert_eq!(deps.of(1, 0), &[SetRef { layer: 0, set: 0 }]);
    }

    #[test]
    fn edges_iterator_matches_num_edges() {
        let g = fig5_graph();
        let (_, deps) = stages(&g, &SetPolicy::finest());
        assert_eq!(deps.edges().count(), deps.num_edges());
        assert!(deps.num_edges() > 0);
        // Every edge points backwards in layer order (topological).
        for (consumer, producer) in deps.edges() {
            assert!(producer.layer < consumer.layer);
        }
    }

    #[test]
    fn mismatched_layers_rejected() {
        let g = fig5_graph();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let mut layers = determine_sets(&g, &costs, &SetPolicy::finest()).unwrap();
        layers[0].node = NodeId(0); // the input node — not a base layer
        assert!(matches!(
            determine_dependencies(&g, &layers),
            Err(CoreError::StageMismatch { .. })
        ));
    }
}
