//! Stage II — determine dependencies (Sec. IV-2 of the paper, Fig. 5b).
//!
//! For every OFM set of every base layer, find the OFM sets of *predecessor*
//! base layers whose data it needs. The set's rectangle is propagated
//! backward along the non-base layer path (bias, activation, pooling,
//! padding, slice, concat, …) using the receptive-field arithmetic of
//! [`cim_ir::input_region`]; a producer set is a dependency iff the
//! propagated rectangle intersects it.
//!
//! One producer set can influence multiple consumer sets (the paper's `Q`
//! relation) and one consumer set can require multiple producer sets (`P`).
//!
//! # Representation
//!
//! The relation is stored in **CSR form** over the global
//! [`SetSpace`] index: one flat `producers` arena holding
//! every edge's producer [`SetRef`], sliced per consumer set by an offset
//! table. Compared to the former `Vec<Vec<Vec<SetRef>>>` nesting this is
//! one allocation instead of one per set, with cache-linear edge walks in
//! the Stage III/IV longest-path sweep. The public API (`of`, `edges`,
//! `fan_in`, `fan_out`) and the serde format (the nested `deps` array) are
//! unchanged.

use cim_ir::{input_region, Graph, NodeId, Op, Rect};
use serde::{Deserialize, Serialize, Value};

use crate::error::{CoreError, Result};
use crate::sets::LayerSets;
use crate::space::SetSpace;

/// Identifier of a set: layer index (into the Stage-I slice) and set index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SetRef {
    /// Index of the layer in the Stage-I output.
    pub layer: usize,
    /// Index of the set within the layer.
    pub set: usize,
}

impl std::fmt::Display for SetRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}S{}", self.layer, self.set)
    }
}

/// The Stage-II result: per consumer set, the producer sets it depends on.
///
/// CSR-backed: `producers[offsets[i]..offsets[i + 1]]` are the (sorted,
/// deduplicated) producers of the consumer set with global index `i` (see
/// [`SetSpace::index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependencies {
    /// The `(layer, set) → usize` index space the CSR arrays are sliced by.
    space: SetSpace,
    /// `offsets[i]..offsets[i + 1]` bounds consumer `i`'s producer slice.
    offsets: Vec<usize>,
    /// Flat producer arena (`edge_producers`), concatenated in consumer
    /// order; each consumer's slice is sorted and deduplicated.
    producers: Vec<SetRef>,
}

impl Dependencies {
    /// Builds a dependency structure directly from `(consumer, producer)`
    /// edges — for synthetic workloads, failure-injection tests, and users
    /// bringing their own dependency analysis.
    ///
    /// `sets_per_layer[l]` is the number of Stage-I sets of layer `l`.
    /// Edges are deduplicated and sorted. Note that *topological* sanity
    /// (producers strictly earlier than consumers) is deliberately not
    /// enforced here; the schedulers and the simulator detect violations
    /// themselves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StageMismatch`] when an edge references a
    /// nonexistent layer or set.
    pub fn from_edges(sets_per_layer: &[usize], edges: &[(SetRef, SetRef)]) -> Result<Self> {
        let space = SetSpace::from_counts(sets_per_layer);
        // Validate endpoints, then sort the edge list by (consumer global
        // index, producer) so the CSR arena can be filled in one pass.
        let mut keyed: Vec<(usize, SetRef)> = Vec::with_capacity(edges.len());
        for &(consumer, producer) in edges {
            for r in [consumer, producer] {
                let ok = r.layer < sets_per_layer.len() && r.set < sets_per_layer[r.layer];
                if !ok {
                    return Err(CoreError::StageMismatch {
                        detail: format!("edge endpoint {r} out of range"),
                    });
                }
            }
            keyed.push((space.index(consumer.layer, consumer.set), producer));
        }
        keyed.sort_unstable();
        keyed.dedup();

        let total = space.total_sets();
        let mut offsets = Vec::with_capacity(total + 1);
        let mut producers = Vec::with_capacity(keyed.len());
        offsets.push(0);
        let mut cursor = 0usize;
        for i in 0..total {
            while cursor < keyed.len() && keyed[cursor].0 == i {
                producers.push(keyed[cursor].1);
                cursor += 1;
            }
            offsets.push(producers.len());
        }
        Ok(Self {
            space,
            offsets,
            producers,
        })
    }

    /// Rebuilds the CSR form from the legacy nested `deps[l][s]` shape
    /// (each inner list is sorted and deduplicated on ingestion) — the
    /// serde wire format.
    fn from_nested(nested: Vec<Vec<Vec<SetRef>>>) -> Self {
        let counts: Vec<usize> = nested.iter().map(Vec::len).collect();
        let space = SetSpace::from_counts(&counts);
        let mut offsets = Vec::with_capacity(space.total_sets() + 1);
        let mut producers =
            Vec::with_capacity(nested.iter().flatten().map(Vec::len).sum::<usize>());
        offsets.push(0);
        for sets in nested {
            for mut ds in sets {
                ds.sort_unstable();
                ds.dedup();
                producers.extend_from_slice(&ds);
                offsets.push(producers.len());
            }
        }
        Self {
            space,
            offsets,
            producers,
        }
    }

    /// Producer sets required by set `s` of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn of(&self, l: usize, s: usize) -> &[SetRef] {
        let i = self.space.index(l, s);
        &self.producers[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.space.num_layers()
    }

    /// The global `(layer, set) → usize` index space of the CSR arrays.
    pub fn space(&self) -> &SetSpace {
        &self.space
    }

    /// The raw CSR view: the per-consumer offset table (length
    /// `total_sets + 1`) and the flat producer arena it slices. Consumer
    /// `i`'s producers are `producers[offsets[i]..offsets[i + 1]]`, with
    /// `i` as assigned by [`space`](Self::space).
    pub fn csr(&self) -> (&[usize], &[SetRef]) {
        (&self.offsets, &self.producers)
    }

    /// Iterates over all `(consumer, producer)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (SetRef, SetRef)> + '_ {
        (0..self.num_layers()).flat_map(move |l| {
            (0..self.space.sets_in(l)).flat_map(move |s| {
                self.of(l, s)
                    .iter()
                    .map(move |&p| (SetRef { layer: l, set: s }, p))
            })
        })
    }

    /// Total number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.producers.len()
    }

    /// The paper's `P` value for a consumer set: how many producer sets it
    /// is affected by.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fan_in(&self, l: usize, s: usize) -> usize {
        self.of(l, s).len()
    }

    /// The paper's `Q` relation, inverted from the stored edges: for every
    /// producer set, the consumer sets it influences.
    pub fn fan_out(&self) -> Vec<Vec<Vec<SetRef>>> {
        let mut out: Vec<Vec<Vec<SetRef>>> = (0..self.num_layers())
            .map(|l| vec![Vec::new(); self.space.sets_in(l)])
            .collect();
        for (consumer, producer) in self.edges() {
            out[producer.layer][producer.set].push(consumer);
        }
        out
    }

    /// Checks, once, that every edge points to a topologically earlier
    /// layer — the precondition of the forward longest-path sweep. The
    /// schedulers run this once per `(layers, deps)` pair (formerly the
    /// check was duplicated inside both scheduling inner loops and re-run
    /// for every batch instance).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StageMismatch`] naming the first offending
    /// edge.
    pub fn ensure_backward(&self) -> Result<()> {
        for l in 0..self.num_layers() {
            for s in 0..self.space.sets_in(l) {
                for dep in self.of(l, s) {
                    if dep.layer >= l {
                        return Err(CoreError::StageMismatch {
                            detail: format!(
                                "dependency {dep} of layer {l} is not topologically earlier"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

// The wire format predates the CSR backing: a `deps` field holding the
// nested `deps[l][s] -> [SetRef]` lists. Serialization reconstitutes that
// shape so on-disk artifacts and fingerprints are byte-identical to the
// pre-CSR representation.
impl Serialize for Dependencies {
    fn to_value(&self) -> Value {
        let layers: Vec<Value> = (0..self.num_layers())
            .map(|l| {
                Value::Seq(
                    (0..self.space.sets_in(l))
                        .map(|s| Value::Seq(self.of(l, s).iter().map(|p| p.to_value()).collect()))
                        .collect(),
                )
            })
            .collect();
        Value::Map(vec![("deps".to_string(), Value::Seq(layers))])
    }
}

impl Deserialize for Dependencies {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("Dependencies: expected a map"))?;
        let deps = Value::map_get(entries, "deps")
            .ok_or_else(|| serde::Error::custom("Dependencies: missing `deps`"))?;
        let nested: Vec<Vec<Vec<SetRef>>> = Deserialize::from_value(deps)?;
        Ok(Self::from_nested(nested))
    }
}

/// Runs Stage II on the Stage-I output.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] when `layers` does not correspond to
/// `graph` and propagates graph access errors.
///
/// # Examples
///
/// See the crate-level documentation for the worked Fig. 5 example.
pub fn determine_dependencies(graph: &Graph, layers: &[LayerSets]) -> Result<Dependencies> {
    // Map node id -> layer index for base layers.
    let mut layer_of = vec![usize::MAX; graph.len()];
    for (i, l) in layers.iter().enumerate() {
        let node = graph.node(l.node)?;
        if !node.op.is_base() {
            return Err(CoreError::StageMismatch {
                detail: format!("layer entry `{}` is not a base layer", l.name),
            });
        }
        layer_of[l.node.index()] = i;
    }

    let space = SetSpace::of_layers(layers);
    let mut offsets = Vec::with_capacity(space.total_sets() + 1);
    let mut producers: Vec<SetRef> = Vec::new();
    offsets.push(0);
    // One scratch buffer reused across every set (duplicates from multiple
    // propagation paths are sorted out before the arena append) — no
    // per-set `HashSet` allocation.
    let mut scratch: Vec<SetRef> = Vec::new();

    for layer in layers {
        let node = graph.node(layer.node)?;
        let in_shapes: Vec<_> = node
            .inputs
            .iter()
            .map(|&i| graph.node(i).map(|n| n.out_shape))
            .collect::<std::result::Result<_, _>>()?;
        for set in &layer.sets {
            // The IFM region this conv/dense set needs.
            scratch.clear();
            for (idx, &inp) in node.inputs.iter().enumerate() {
                if let Some(r) = input_region(&node.op, set.rect, &in_shapes, idx, node.out_shape) {
                    back_propagate(graph, &layer_of, layers, inp, r, &mut scratch)?;
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            producers.extend_from_slice(&scratch);
            offsets.push(producers.len());
        }
    }
    Ok(Dependencies {
        space,
        offsets,
        producers,
    })
}

/// Propagates `rect` (a region of `node`'s output) backwards until base
/// layers or graph inputs are reached, recording intersecting producer sets
/// (possibly with duplicates — the caller sort-dedups the scratch buffer).
fn back_propagate(
    graph: &Graph,
    layer_of: &[usize],
    layers: &[LayerSets],
    node: NodeId,
    rect: Rect,
    found: &mut Vec<SetRef>,
) -> Result<()> {
    let n = graph.node(node)?;
    if n.op.is_base() {
        let li = layer_of[node.index()];
        if li == usize::MAX {
            return Err(CoreError::StageMismatch {
                detail: format!("base layer `{}` has no Stage-I sets", n.name),
            });
        }
        for (si, set) in layers[li].sets.iter().enumerate() {
            if set.rect.intersects(&rect) {
                found.push(SetRef { layer: li, set: si });
            }
        }
        return Ok(());
    }
    if matches!(n.op, Op::Input { .. }) {
        return Ok(());
    }
    let in_shapes: Vec<_> = n
        .inputs
        .iter()
        .map(|&i| graph.node(i).map(|x| x.out_shape))
        .collect::<std::result::Result<_, _>>()?;
    for (idx, &inp) in n.inputs.iter().enumerate() {
        if let Some(r) = input_region(&n.op, rect, &in_shapes, idx, n.out_shape) {
            back_propagate(graph, layer_of, layers, inp, r, found)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, PadSpec, Padding, PoolAttrs};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::sets::{determine_sets, SetPolicy};

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    fn stages(g: &Graph, policy: &SetPolicy) -> (Vec<LayerSets>, Dependencies) {
        let costs = layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(g, &costs, policy).unwrap();
        let deps = determine_dependencies(g, &layers).unwrap();
        (layers, deps)
    }

    /// The paper's Fig. 5 minimal example: two Conv2D layers with a
    /// bias → activation → pooling → padding non-base path in between.
    fn fig5_graph() -> Graph {
        let mut g = Graph::new("fig5");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("conv1", conv_op(8, 3, 1), &[x]).unwrap(); // 8×8
        let b = g.add("bias", Op::Bias, &[c1]).unwrap();
        let a = g.add("act", Op::Activation(ActFn::Relu), &[b]).unwrap();
        let p = g
            .add(
                "pool",
                Op::MaxPool2d(PoolAttrs {
                    window: (2, 2),
                    stride: (2, 2),
                    padding: Padding::Valid,
                }),
                &[a],
            )
            .unwrap(); // 4×4
        let pad = g
            .add("pad", Op::ZeroPad2d(PadSpec::uniform(1)), &[p])
            .unwrap(); // 6×6
        g.add("conv2", conv_op(8, 3, 1), &[pad]).unwrap(); // 4×4
        g
    }

    #[test]
    fn fig5_dependencies() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        // conv1: 8 rows, quantum 2 (pool) → 4 sets. conv2: 4 rows → 4 sets.
        assert_eq!(layers[0].sets.len(), 4);
        assert_eq!(layers[1].sets.len(), 4);

        // conv2 set 0 (OFM row 0) reads padded rows 0..=2 = pool rows 0..=1
        // = conv1 rows 0..=3 = conv1 sets {0, 1}.
        assert_eq!(
            deps.of(1, 0),
            &[SetRef { layer: 0, set: 0 }, SetRef { layer: 0, set: 1 }]
        );
        // conv2 set 1 reads padded rows 1..=3 = pool rows 0..=2 = conv1 rows
        // 0..=5 = sets {0, 1, 2}.
        assert_eq!(deps.fan_in(1, 1), 3);
        // conv2 set 3 (last row) reads padded rows 3..=5 = pool rows 2..=3 =
        // conv1 rows 4..=7 = sets {2, 3}.
        assert_eq!(
            deps.of(1, 3),
            &[SetRef { layer: 0, set: 2 }, SetRef { layer: 0, set: 3 }]
        );
        // conv1 has no base-layer predecessors.
        for s in 0..4 {
            assert!(deps.of(0, s).is_empty());
        }
    }

    #[test]
    fn fan_out_inverts_fan_in() {
        let g = fig5_graph();
        let (_, deps) = stages(&g, &SetPolicy::finest());
        let q = deps.fan_out();
        // conv1 set 0 feeds conv2 sets {0, 1} (the paper's Q relation).
        assert_eq!(
            q[0][0],
            vec![SetRef { layer: 1, set: 0 }, SetRef { layer: 1, set: 1 }]
        );
        // Edge count symmetry.
        let total_q: usize = q.iter().flatten().map(Vec::len).sum();
        assert_eq!(total_q, deps.num_edges());
    }

    #[test]
    fn single_set_policy_yields_full_dependencies() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::coarse(1));
        assert_eq!(layers[0].sets.len(), 1);
        assert_eq!(deps.of(1, 0), &[SetRef { layer: 0, set: 0 }]);
    }

    #[test]
    fn concat_branches_route_to_both_producers() {
        // Two conv branches concatenated on channels, then a consumer conv:
        // every consumer set depends on matching sets of both branches.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        let a = g.add("branch_a", conv_op(4, 1, 1), &[x]).unwrap(); // 8×8
        let b = g.add("branch_b", conv_op(4, 1, 1), &[x]).unwrap(); // 8×8
        let cat = g.add("cat", Op::Concat(cim_ir::Axis::C), &[a, b]).unwrap();
        g.add("head", conv_op(8, 1, 1), &[cat]).unwrap(); // 8×8
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // head is layer 2; its set k depends on row k of both branches.
        for s in 0..8 {
            assert_eq!(
                deps.of(2, s),
                &[SetRef { layer: 0, set: s }, SetRef { layer: 1, set: s }]
            );
        }
    }

    #[test]
    fn residual_add_joins_identity_and_conv_paths() {
        // x → c1 → c2 → add(c1's output) → c3 (a ResNet-style skip).
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 4),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 1, 1), &[x]).unwrap();
        let c2 = g.add("c2", conv_op(4, 1, 1), &[c1]).unwrap();
        let add = g.add("add", Op::Add, &[c1, c2]).unwrap();
        g.add("c3", conv_op(4, 1, 1), &[add]).unwrap();
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // c3 (layer 2) set k needs row k of both c1 (skip) and c2 (main).
        for s in 0..8 {
            assert_eq!(
                deps.of(2, s),
                &[SetRef { layer: 0, set: s }, SetRef { layer: 1, set: s }]
            );
        }
        // c2 set k needs only c1 set k (1×1 kernel).
        for s in 0..8 {
            assert_eq!(deps.of(1, s), &[SetRef { layer: 0, set: s }]);
        }
    }

    #[test]
    fn upsample_halves_producer_fanin() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 1, 1), &[x]).unwrap(); // 4×4
        let up = g
            .add("up", Op::Upsample2d { factor: (2, 2) }, &[c1])
            .unwrap(); // 8×8
        g.add("c2", conv_op(4, 1, 1), &[up]).unwrap(); // 8×8
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // c2 rows 2k and 2k+1 both map to c1 row k.
        for s in 0..8 {
            assert_eq!(
                deps.of(1, s),
                &[SetRef {
                    layer: 0,
                    set: s / 2
                }]
            );
        }
    }

    #[test]
    fn stride2_conv_consumes_two_producer_sets_per_set() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(11, 11, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 1, 1), &[x]).unwrap(); // 11×11
        g.add("c2", conv_op(4, 3, 2), &[c1]).unwrap(); // 5×5
        let (_, deps) = stages(&g, &SetPolicy::finest());
        // c2 row r reads c1 rows 2r..=2r+2 → sets {2r, 2r+1, 2r+2}.
        for s in 0..5 {
            let expect: Vec<SetRef> = (2 * s..=2 * s + 2)
                .map(|k| SetRef { layer: 0, set: k })
                .collect();
            assert_eq!(deps.of(1, s), expect.as_slice());
        }
    }

    #[test]
    fn dense_depends_on_every_producer_set() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(4, 3, 1), &[x]).unwrap(); // 4×4
        let f = g.add("flat", Op::Flatten, &[c1]).unwrap();
        g.add(
            "fc",
            Op::Dense(cim_ir::DenseAttrs {
                units: 10,
                use_bias: false,
            }),
            &[f],
        )
        .unwrap();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        // Flatten forces c1 into a single set; fc depends on it.
        assert_eq!(layers[0].sets.len(), 1);
        assert_eq!(deps.of(1, 0), &[SetRef { layer: 0, set: 0 }]);
    }

    #[test]
    fn edges_iterator_matches_num_edges() {
        let g = fig5_graph();
        let (_, deps) = stages(&g, &SetPolicy::finest());
        assert_eq!(deps.edges().count(), deps.num_edges());
        assert!(deps.num_edges() > 0);
        // Every edge points backwards in layer order (topological).
        for (consumer, producer) in deps.edges() {
            assert!(producer.layer < consumer.layer);
        }
        deps.ensure_backward().unwrap();
    }

    #[test]
    fn mismatched_layers_rejected() {
        let g = fig5_graph();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let mut layers = determine_sets(&g, &costs, &SetPolicy::finest()).unwrap();
        layers[0].node = NodeId(0); // the input node — not a base layer
        assert!(matches!(
            determine_dependencies(&g, &layers),
            Err(CoreError::StageMismatch { .. })
        ));
    }

    #[test]
    fn from_edges_dedups_into_the_csr_arena() {
        let edges = [
            (SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 1 }),
            (SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 0 }),
            (SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 1 }), // dup
            (SetRef { layer: 1, set: 1 }, SetRef { layer: 0, set: 1 }),
        ];
        let deps = Dependencies::from_edges(&[2, 2], &edges).unwrap();
        assert_eq!(deps.num_edges(), 3);
        assert_eq!(
            deps.of(1, 0),
            &[SetRef { layer: 0, set: 0 }, SetRef { layer: 0, set: 1 }]
        );
        assert_eq!(deps.of(1, 1), &[SetRef { layer: 0, set: 1 }]);
        let (offsets, producers) = deps.csr();
        assert_eq!(offsets, &[0, 0, 0, 2, 3]);
        assert_eq!(producers.len(), 3);
    }

    #[test]
    fn ensure_backward_rejects_forward_edges() {
        let deps = Dependencies::from_edges(
            &[1, 1],
            &[(SetRef { layer: 0, set: 0 }, SetRef { layer: 1, set: 0 })],
        )
        .unwrap();
        let err = deps.ensure_backward().unwrap_err();
        assert!(
            err.to_string().contains("not topologically earlier"),
            "{err}"
        );
    }

    #[test]
    fn serde_format_is_the_legacy_nested_shape() {
        let g = fig5_graph();
        let (_, deps) = stages(&g, &SetPolicy::finest());
        let json = serde_json::to_string(&deps).unwrap();
        // Wire format: {"deps": [[[{"layer":..,"set":..}, ...], ...], ...]}
        assert!(json.starts_with("{\"deps\":[["), "{json}");
        let back: Dependencies = serde_json::from_str(&json).unwrap();
        assert_eq!(back, deps);
        // CSR internals survive the round-trip exactly.
        assert_eq!(back.csr(), deps.csr());
    }
}
