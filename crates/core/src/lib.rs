//! # clsa-core — CLSA-CIM cross-layer scheduling
//!
//! The paper's primary contribution (Pelke et al., *CLSA-CIM: A Cross-Layer
//! Scheduling Approach for Computing-in-Memory Architectures*, DATE 2024):
//! a scheduling algorithm for tiled CIM accelerators that forwards parts of
//! a layer's output feature map to subsequent layers *before* the whole OFM
//! is computed, dramatically raising PE utilization over layer-by-layer
//! inference.
//!
//! The four stages of Sec. IV map one-to-one onto this crate:
//!
//! | Stage | Paper | Here |
//! |-------|-------|------|
//! | I | determine sets (Fig. 5a) | [`determine_sets`] → [`LayerSets`] |
//! | II | determine dependencies (Fig. 5b) | [`determine_dependencies`] → [`Dependencies`] |
//! | III | intra-layer scheduling | set order within [`LayerSets`], enforced as chain constraints |
//! | IV | cross-layer scheduling (Fig. 5c) | [`cross_layer_schedule`] → [`Schedule`] |
//!
//! plus the [`layer_by_layer_schedule`] baseline (Sec. II-B), [`metrics`]
//! for Eq. 2/3, machine-checked [`validate_schedule`], Gantt export, and the
//! one-call [`run`] pipeline combining mapping (`cim-mapping`) and
//! scheduling — the `wdup` / `xinf` / `wdup+xinf` configurations of the
//! paper's evaluation.
//!
//! # Examples
//!
//! The paper's minimal example (Fig. 5) — two convolutions joined by a
//! non-base path — scheduled with and without cross-layer inference:
//!
//! ```
//! use cim_arch::Architecture;
//! use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, Graph, Op, PadSpec, Padding, PoolAttrs};
//! use clsa_core::{run, RunConfig};
//!
//! # fn main() -> Result<(), clsa_core::CoreError> {
//! let mut g = Graph::new("fig5");
//! let x = g.add("input", Op::Input { shape: FeatureShape::new(10, 10, 3) }, &[])?;
//! let c1 = g.add("conv1", Op::Conv2d(Conv2dAttrs {
//!     out_channels: 8, kernel: (3, 3), stride: (1, 1),
//!     padding: Padding::Valid, use_bias: false,
//! }), &[x])?;
//! let b = g.add("bias", Op::Bias, &[c1])?;
//! let a = g.add("act", Op::Activation(ActFn::Relu), &[b])?;
//! let p = g.add("pool", Op::MaxPool2d(PoolAttrs {
//!     window: (2, 2), stride: (2, 2), padding: Padding::Valid,
//! }), &[a])?;
//! let pad = g.add("pad", Op::ZeroPad2d(PadSpec::uniform(1)), &[p])?;
//! g.add("conv2", Op::Conv2d(Conv2dAttrs {
//!     out_channels: 8, kernel: (3, 3), stride: (1, 1),
//!     padding: Padding::Valid, use_bias: false,
//! }), &[pad])?;
//!
//! let arch = Architecture::paper_case_study(2)?;
//! let baseline = run(&g, &RunConfig::baseline(arch.clone()))?;
//! let clsa = run(&g, &RunConfig::baseline(arch).with_cross_layer())?;
//! assert!(clsa.makespan() < baseline.makespan());
//! assert!(clsa.report.utilization > baseline.report.utilization);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cost;
pub mod deps;
pub mod diagnose;
pub mod error;
pub mod gantt;
pub mod incremental;
pub mod metrics;
pub mod pipeline;
pub mod reference;
pub mod schedule;
pub mod sets;
pub mod space;
pub mod validate;

pub use analysis::{critical_cycles_per_layer, critical_path, CriticalStep};
pub use cost::CostedDeps;
pub use deps::{determine_dependencies, Dependencies, SetRef};
pub use diagnose::{
    analyze_costed, capacity_diagnostics, is_validation_code, ScheduleDiagnostic, Severity,
};
pub use error::{CoreError, Result};
pub use gantt::{gantt_csv, gantt_rows, gantt_text, GanttRow};
pub use incremental::{run_incremental, IncrementalRun, Invalidation, PipelineStage, StageStatus};
pub use metrics::{
    eq3_predicted_from_utilization, eq3_predicted_speedup, speedup, utilization, UtilizationReport,
};
pub use pipeline::{
    prepare, run, run_prepared, Costs, Deps, Layers, MappedGraph, MappingChoice, Prepared,
    RunConfig, RunResult, SchedulingChoice,
};
pub use schedule::{
    batched_cross_layer_schedule, batched_cross_layer_schedule_costed, cross_layer_schedule,
    cross_layer_schedule_costed, layer_by_layer_schedule, set_bytes, BatchedSchedule, EdgeCost,
    Schedule, SetTime,
};
pub use sets::{determine_sets, LayerSets, OfmSet, SetPolicy};
pub use space::SetSpace;
pub use validate::{validate_schedule, validate_schedule_costed};
