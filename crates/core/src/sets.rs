//! Stage I — determine sets (Sec. IV-1 of the paper, Fig. 5a).
//!
//! Every base layer's OFM is divided into disjoint hyperrectangular *sets*,
//! the minimum scheduling units of CLSA-CIM. All elements of a set are
//! produced before any element of the next set of the same OFM.
//!
//! Design choices, following the paper:
//!
//! * Sets are **row bands** — `q` consecutive rows × full width × all
//!   channels. The minimum MVM unit already produces a full `(1,1,OC)`
//!   vector (Sec. III-B), so channels are never split; rows are the natural
//!   streaming direction of im2col convolution.
//! * Sets are **quantum-aligned**: the row count per set is a multiple of
//!   the downstream pooling strides, so non-base operations (e.g. a
//!   `(2,2)/(2,2)` pooling) always see complete input windows — the Fig. 5a
//!   constraint that sets contain at least `2×2` values.
//! * Set count per OFM is tunable via [`SetPolicy`]: finer sets give the
//!   cross-layer scheduler more freedom (paper: "increasing the number of
//!   sets provides a more detailed scheduling granularity") at the price of
//!   more scheduling state.

use cim_ir::{FeatureShape, Graph, NodeId, Op, Rect};
use cim_mapping::LayerCost;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Granularity policy for Stage I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SetPolicy {
    /// Upper bound on the number of sets per OFM. `None` (default) uses the
    /// finest quantum-aligned granularity — one quantum of rows per set.
    pub max_sets_per_layer: Option<usize>,
}

impl SetPolicy {
    /// Finest quantum-aligned granularity (the default).
    pub const fn finest() -> Self {
        Self {
            max_sets_per_layer: None,
        }
    }

    /// At most `n` sets per OFM.
    pub const fn coarse(n: usize) -> Self {
        Self {
            max_sets_per_layer: Some(n),
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadPolicy`] if a zero set count is requested.
    pub fn validate(&self) -> Result<()> {
        if self.max_sets_per_layer == Some(0) {
            return Err(CoreError::BadPolicy {
                detail: "max_sets_per_layer must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One OFM set: a rectangle of output positions and its execution time on
/// the layer's PE group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfmSet {
    /// Spatial extent of the set within the OFM.
    pub rect: Rect,
    /// Cycles to compute the set: one MVM per spatial position
    /// (Sec. III-B), i.e. the rectangle area.
    pub duration: u64,
}

/// All sets of one base layer, in Stage-III execution order (top to bottom).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSets {
    /// The base-layer node these sets belong to.
    pub node: NodeId,
    /// Node name.
    pub name: String,
    /// Logical layer id (duplicates share it).
    pub logical: u32,
    /// OFM shape.
    pub ofm: FeatureShape,
    /// PEs in this layer's group (`c_i`, Eq. 1).
    pub pes: usize,
    /// Row quantum used for alignment.
    pub quantum: usize,
    /// The sets, ordered top row band first.
    pub sets: Vec<OfmSet>,
}

impl LayerSets {
    /// Total cycles to execute every set back-to-back (`t_OFM`).
    pub fn total_cycles(&self) -> u64 {
        self.sets.iter().map(|s| s.duration).sum()
    }
}

/// Runs Stage I: partitions every base layer's OFM into quantum-aligned row
/// bands.
///
/// `costs` must come from [`cim_mapping::layer_costs`] on the same graph —
/// it supplies the PE group sizes and fixes the layer order (topological).
///
/// # Errors
///
/// Returns [`CoreError::BadPolicy`] for invalid policies and
/// [`CoreError::StageMismatch`] when `costs` does not match `graph`.
///
/// # Examples
///
/// ```
/// use cim_arch::CrossbarSpec;
/// use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
/// use cim_mapping::{layer_costs, MappingOptions};
/// use clsa_core::{determine_sets, SetPolicy};
///
/// # fn main() -> Result<(), clsa_core::CoreError> {
/// let mut g = Graph::new("t");
/// let x = g.add("input", Op::Input { shape: FeatureShape::new(10, 10, 3) }, &[])?;
/// g.add(
///     "conv",
///     Op::Conv2d(Conv2dAttrs {
///         out_channels: 8,
///         kernel: (3, 3),
///         stride: (1, 1),
///         padding: Padding::Valid,
///         use_bias: false,
///     }),
///     &[x],
/// )?;
/// let costs = layer_costs(&g, &CrossbarSpec::wan_nature_2022(), &MappingOptions::default())?;
/// let layers = determine_sets(&g, &costs, &SetPolicy::finest())?;
/// assert_eq!(layers[0].sets.len(), 8, "8 OFM rows, quantum 1");
/// # Ok(())
/// # }
/// ```
pub fn determine_sets(
    graph: &Graph,
    costs: &[LayerCost],
    policy: &SetPolicy,
) -> Result<Vec<LayerSets>> {
    policy.validate()?;
    let consumers = graph.consumers();
    let mut out = Vec::with_capacity(costs.len());
    for cost in costs {
        let node = graph.node(cost.node)?;
        if !node.op.is_base() {
            return Err(CoreError::StageMismatch {
                detail: format!("cost entry `{}` is not a base layer", cost.name),
            });
        }
        if node.out_shape != cost.ofm {
            return Err(CoreError::StageMismatch {
                detail: format!(
                    "cost entry `{}` records OFM {} but the graph has {}",
                    cost.name, cost.ofm, node.out_shape
                ),
            });
        }
        let ofm = node.out_shape;
        let quantum = row_quantum(graph, &consumers, cost.node).min(ofm.h).max(1);
        let quanta = ofm.h.div_ceil(quantum);
        let quanta_per_set = match policy.max_sets_per_layer {
            Some(max) => quanta.div_ceil(max),
            None => 1,
        };
        let rows_per_set = quantum * quanta_per_set;
        let mut sets = Vec::with_capacity(ofm.h.div_ceil(rows_per_set));
        let mut y = 0usize;
        while y < ofm.h {
            let y1 = (y + rows_per_set).min(ofm.h) - 1;
            let rect = Rect::new(y, 0, y1, ofm.w - 1);
            sets.push(OfmSet {
                rect,
                duration: rect.area() as u64,
            });
            y = y1 + 1;
        }
        out.push(LayerSets {
            node: cost.node,
            name: cost.name.clone(),
            logical: node.logical_layer.unwrap_or(node.id.0),
            ofm,
            pes: cost.pes,
            quantum,
            sets,
        });
    }
    Ok(out)
}

/// The row quantum a base layer's sets must be aligned to: the product of
/// the pooling row-strides along every downstream non-base path, maximized
/// over paths (Fig. 5a: sets must accommodate the `(2,2)` pooling between
/// the layers). Globally-coupled consumers (dense, flatten, global pooling)
/// require the whole OFM.
fn row_quantum(graph: &Graph, consumers: &[Vec<NodeId>], node: NodeId) -> usize {
    fn walk(graph: &Graph, consumers: &[Vec<NodeId>], node: NodeId) -> usize {
        let mut q = 1usize;
        for &c in &consumers[node.index()] {
            let cn = graph.node(c).expect("validated graph"); // cim-lint: allow(panic-unwrap) graph validated upstream
            let here = match &cn.op {
                // Base layers end the non-base path.
                Op::Conv2d(_) | Op::Dense(_) => 1,
                // Saturating: a downstream global consumer reports
                // usize::MAX ("whole OFM") and must stay there.
                Op::MaxPool2d(a) | Op::AvgPool2d(a) => {
                    a.stride.0.max(1).saturating_mul(walk(graph, consumers, c))
                }
                Op::GlobalAvgPool | Op::Flatten | Op::Softmax => usize::MAX,
                _ => walk(graph, consumers, c),
            };
            q = q.max(here);
        }
        q
    }
    walk(graph, consumers, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, Padding, PoolAttrs};
    use cim_mapping::{layer_costs, MappingOptions};

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    fn pool_op(w: usize, st: usize) -> Op {
        Op::MaxPool2d(PoolAttrs {
            window: (w, w),
            stride: (st, st),
            padding: Padding::Valid,
        })
    }

    fn costs_of(g: &Graph) -> Vec<LayerCost> {
        layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap()
    }

    /// conv(12×12 OFM) → pool/2 → conv.
    fn conv_pool_conv() -> Graph {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(14, 14, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap(); // 12×12
        let p = g.add("pool", pool_op(2, 2), &[c1]).unwrap(); // 6×6
        g.add("c2", conv_op(8, 3, 1), &[p]).unwrap(); // 4×4
        g
    }

    #[test]
    fn finest_policy_respects_pool_quantum() {
        let g = conv_pool_conv();
        let layers = determine_sets(&g, &costs_of(&g), &SetPolicy::finest()).unwrap();
        // c1 feeds a stride-2 pool → quantum 2 → 6 sets of 2 rows.
        assert_eq!(layers[0].quantum, 2);
        assert_eq!(layers[0].sets.len(), 6);
        assert_eq!(layers[0].sets[0].rect, Rect::new(0, 0, 1, 11));
        assert_eq!(layers[0].sets[0].duration, 2 * 12);
        // c2 has no consumers → quantum 1 → 4 single-row sets.
        assert_eq!(layers[1].quantum, 1);
        assert_eq!(layers[1].sets.len(), 4);
    }

    #[test]
    fn sets_partition_the_ofm() {
        let g = conv_pool_conv();
        for policy in [
            SetPolicy::finest(),
            SetPolicy::coarse(4),
            SetPolicy::coarse(1),
        ] {
            let layers = determine_sets(&g, &costs_of(&g), &policy).unwrap();
            for l in &layers {
                let area: usize = l.sets.iter().map(|s| s.rect.area()).sum();
                assert_eq!(area, l.ofm.hw(), "{} under {policy:?}", l.name);
                assert_eq!(l.total_cycles(), l.ofm.hw() as u64);
                // Contiguous, ordered, full-width bands.
                let mut y = 0;
                for s in &l.sets {
                    assert_eq!(s.rect.y0, y);
                    assert_eq!(s.rect.x0, 0);
                    assert_eq!(s.rect.x1, l.ofm.w - 1);
                    y = s.rect.y1 + 1;
                }
                assert_eq!(y, l.ofm.h);
            }
        }
    }

    #[test]
    fn coarse_policy_caps_set_count() {
        let g = conv_pool_conv();
        let layers = determine_sets(&g, &costs_of(&g), &SetPolicy::coarse(3)).unwrap();
        for l in &layers {
            assert!(l.sets.len() <= 3, "{} has {} sets", l.name, l.sets.len());
        }
        // Single-set policy = whole OFM at once (degenerates to no
        // cross-layer overlap within the layer).
        let single = determine_sets(&g, &costs_of(&g), &SetPolicy::coarse(1)).unwrap();
        for l in &single {
            assert_eq!(l.sets.len(), 1);
            assert_eq!(l.sets[0].duration, l.ofm.hw() as u64);
        }
    }

    #[test]
    fn stacked_pools_multiply_quantum() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(18, 18, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap(); // 16×16
        let p1 = g.add("p1", pool_op(2, 2), &[c1]).unwrap(); // 8×8
        let p2 = g.add("p2", pool_op(2, 2), &[p1]).unwrap(); // 4×4
        g.add("c2", conv_op(8, 3, 1), &[p2]).unwrap();
        let layers = determine_sets(&g, &costs_of(&g), &SetPolicy::finest()).unwrap();
        assert_eq!(layers[0].quantum, 4, "two stacked stride-2 pools");
        assert_eq!(layers[0].sets.len(), 4);
    }

    #[test]
    fn global_consumer_forces_single_set() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap(); // 8×8
        let gap = g.add("gap", Op::GlobalAvgPool, &[c1]).unwrap();
        let f = g.add("flat", Op::Flatten, &[gap]).unwrap();
        g.add(
            "fc",
            Op::Dense(cim_ir::DenseAttrs {
                units: 10,
                use_bias: false,
            }),
            &[f],
        )
        .unwrap();
        let layers = determine_sets(&g, &costs_of(&g), &SetPolicy::finest()).unwrap();
        assert_eq!(layers[0].quantum, 8, "global pooling needs the whole OFM");
        assert_eq!(layers[0].sets.len(), 1);
        // The dense layer itself has a 1×1 OFM — one set of one cycle.
        assert_eq!(layers[1].sets.len(), 1);
        assert_eq!(layers[1].sets[0].duration, 1);
    }

    #[test]
    fn pool_before_global_consumer_saturates() {
        // conv → pool → flatten → dense: the global consumer's "whole OFM"
        // requirement must survive the pooling-stride multiplication
        // without overflowing (regression test).
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap(); // 8×8
        let p = g.add("p", pool_op(2, 2), &[c1]).unwrap(); // 4×4
        let f = g.add("flat", Op::Flatten, &[p]).unwrap();
        g.add(
            "fc",
            Op::Dense(cim_ir::DenseAttrs {
                units: 4,
                use_bias: false,
            }),
            &[f],
        )
        .unwrap();
        let layers = determine_sets(&g, &costs_of(&g), &SetPolicy::finest()).unwrap();
        assert_eq!(layers[0].quantum, 8, "clamped to the OFM height");
        assert_eq!(layers[0].sets.len(), 1);
    }

    #[test]
    fn stride1_pool_does_not_constrain() {
        // TinyYOLOv3's 2×2/1 pool: window 2 but stride 1 → quantum 1.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(15, 15, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap(); // 13×13
        let p = g.add("p", pool_op(2, 1), &[c1]).unwrap(); // 12×12
        g.add("c2", conv_op(8, 3, 1), &[p]).unwrap();
        let layers = determine_sets(&g, &costs_of(&g), &SetPolicy::finest()).unwrap();
        assert_eq!(layers[0].quantum, 1);
        assert_eq!(layers[0].sets.len(), 13);
    }

    #[test]
    fn zero_policy_rejected() {
        let g = conv_pool_conv();
        assert!(matches!(
            determine_sets(&g, &costs_of(&g), &SetPolicy::coarse(0)),
            Err(CoreError::BadPolicy { .. })
        ));
    }

    #[test]
    fn stale_costs_rejected() {
        let g = conv_pool_conv();
        let mut costs = costs_of(&g);
        costs[0].ofm = FeatureShape::new(1, 1, 1);
        assert!(matches!(
            determine_sets(&g, &costs, &SetPolicy::finest()),
            Err(CoreError::StageMismatch { .. })
        ));
    }

    #[test]
    fn ragged_last_band() {
        // 13-row OFM with quantum 2 → 7 sets, last band one row.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(15, 15, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap(); // 13×13
        let p = g.add("p", pool_op(2, 2), &[c1]).unwrap(); // 6×6
        g.add("c2", conv_op(4, 3, 1), &[p]).unwrap();
        let layers = determine_sets(&g, &costs_of(&g), &SetPolicy::finest()).unwrap();
        assert_eq!(layers[0].quantum, 2);
        assert_eq!(layers[0].sets.len(), 7);
        let last = layers[0].sets.last().unwrap();
        assert_eq!(last.rect.height(), 1);
        assert_eq!(last.duration, 13);
    }
}
