//! End-to-end pipeline: mapping choice × scheduling choice on one
//! architecture — the four configurations evaluated in the paper's Sec. V
//! (`layer-by-layer`, `wdup`, `xinf`, `wdup+xinf`).

use std::sync::Arc;

use cim_arch::{place_groups, Architecture, CrossbarSpec, PlacementStrategy};
use cim_ir::Graph;
use cim_mapping::{
    apply_duplication, layer_costs, min_pes, optimize, DuplicationPlan, MappingOptions, Solver,
};
use serde::{Deserialize, Serialize};

use crate::cost::CostedDeps;
use crate::deps::{determine_dependencies, Dependencies};
use crate::error::Result;
use crate::metrics::{utilization, UtilizationReport};
use crate::schedule::{
    cross_layer_schedule_costed, layer_by_layer_schedule, EdgeCost, Schedule,
};
use crate::sets::{determine_sets, LayerSets, SetPolicy};
use crate::validate::validate_schedule_costed;

/// Weight-mapping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MappingChoice {
    /// Store every weight exactly once (`C_num` PEs used; spares idle).
    #[default]
    OnceEach,
    /// Weight duplication (Sec. III-C): solve Optimization Problem 1 for
    /// the architecture's full PE budget with the given solver.
    WeightDuplication {
        /// Solver for Optimization Problem 1.
        solver: Solver,
    },
}

/// Scheduling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulingChoice {
    /// The layer-by-layer baseline (Sec. II-B).
    #[default]
    LayerByLayer,
    /// CLSA-CIM cross-layer scheduling (Sec. IV) — `xinf` in the paper.
    CrossLayer,
}

/// Full configuration of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The target architecture. Its total PE count is the budget `F`.
    pub arch: Architecture,
    /// Weight-mapping choice.
    pub mapping: MappingChoice,
    /// Scheduling choice.
    pub scheduling: SchedulingChoice,
    /// Stage-I granularity.
    pub set_policy: SetPolicy,
    /// Cost-model options (bit slicing).
    pub mapping_options: MappingOptions,
    /// Charge NoC hop latency on cross-layer data edges (the Sec. V-C
    /// extension). Requires the architecture's `hop_latency_cycles` to be
    /// non-zero to have any effect.
    pub noc_cost: bool,
    /// Additionally charge GPEU processing time for the forwarded data
    /// (implies `noc_cost`-style placement; the non-base-layer work the
    /// paper's peak model treats as free).
    pub gpeu_cost: bool,
    /// PE-group placement strategy (only observable when `noc_cost` or
    /// `gpeu_cost` is on).
    pub placement: PlacementStrategy,
}

impl RunConfig {
    /// The paper's default evaluation setup on `arch`: once-each mapping,
    /// layer-by-layer scheduling, finest sets, zero-cost NoC.
    pub fn baseline(arch: Architecture) -> Self {
        Self {
            arch,
            mapping: MappingChoice::OnceEach,
            scheduling: SchedulingChoice::LayerByLayer,
            set_policy: SetPolicy::finest(),
            mapping_options: MappingOptions::default(),
            noc_cost: false,
            gpeu_cost: false,
            placement: PlacementStrategy::Contiguous,
        }
    }

    /// Switches to CLSA-CIM cross-layer scheduling (`xinf`).
    pub fn with_cross_layer(mut self) -> Self {
        self.scheduling = SchedulingChoice::CrossLayer;
        self
    }

    /// Switches to weight duplication over the full PE budget (`wdup`).
    pub fn with_duplication(mut self, solver: Solver) -> Self {
        self.mapping = MappingChoice::WeightDuplication { solver };
        self
    }

    /// The slice of the architecture [`prepare`] actually reads: the
    /// crossbar spec and the total PE budget. Everything else about the
    /// architecture (tile geometry, NoC latency) only matters to the
    /// scheduling side — two configs with equal `prepare_arch_facet`s and
    /// equal [`mapping_facet`](Self::mapping_facet)s produce identical
    /// stage artifacts. The dirty-key protocol
    /// ([`Invalidation`](crate::Invalidation)) and `cim-bench`'s stage
    /// cache key are both built on this accessor; widen it if [`prepare`]
    /// ever reads more of the architecture.
    pub fn prepare_arch_facet(&self) -> (&CrossbarSpec, usize) {
        (self.arch.crossbar(), self.arch.total_pes())
    }

    /// The mapping-side configuration [`prepare`] reads besides the
    /// architecture: mapping choice, Stage-I granularity, and bit-slicing
    /// options, in the order the stage fingerprint serializes them.
    pub fn mapping_facet(&self) -> (&MappingChoice, &SetPolicy, &MappingOptions) {
        (&self.mapping, &self.set_policy, &self.mapping_options)
    }

    /// The scheduling-side configuration consumed by [`run_prepared`]:
    /// scheduling choice, NoC/GPEU cost flags, and placement strategy, in
    /// the order the schedule fingerprint serializes them. Note the
    /// architecture's *scheduling-visible* facets (tile geometry, NoC hop
    /// latency) are not part of this tuple — they live on `arch` and enter
    /// the schedule key through the full-architecture fingerprint.
    pub fn scheduling_facet(&self) -> (&SchedulingChoice, bool, bool, &PlacementStrategy) {
        (&self.scheduling, self.noc_cost, self.gpeu_cost, &self.placement)
    }
}

/// The reusable front half of a pipeline run: mapping plus Stages I & II.
///
/// [`prepare`] computes everything that depends only on the graph, the
/// architecture, and the *mapping-side* configuration (mapping choice, set
/// policy, bit slicing) — the expensive `determine_sets` /
/// `determine_dependencies` analyses. A `Prepared` can then be scheduled
/// any number of times under different *scheduling-side* configurations
/// (baseline vs cross-layer, NoC/GPEU cost, placement) via
/// [`run_prepared`] without redoing the stage work. The parallel sweep
/// runner in `cim-bench` memoizes values of this type in a concurrent
/// cache so that e.g. a baseline and a CLSA run over the same model share
/// one stage computation.
///
/// The stage artifacts are handed out behind [`Arc`]s ([`MappedGraph`],
/// [`Layers`], [`Deps`]): cloning a `Prepared` — and building any number of
/// [`RunResult`]s from it via [`run_prepared`] — bumps three reference
/// counts instead of deep-copying a multi-hundred-layer graph, so a batch
/// over N configurations of one model holds **one** copy of the stage
/// outputs, not N. All payloads are plain owned data (`Send + Sync`), so
/// the `Arc`s share freely across worker threads.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The mapped graph (duplicates expanded, logical layers marked).
    pub mapped_graph: MappedGraph,
    /// Stage-I sets per base layer of the mapped graph.
    pub layers: Layers,
    /// Stage-II dependencies.
    pub deps: Deps,
    /// Precomputed zero-cost edge tables for the paper's peak model
    /// ([`EdgeCost::Free`]): byte counts, fan-out CSR, all-zeros
    /// latencies. Cached here — like the other stage artifacts — because
    /// it depends only on the mapping side; every `Free`-model schedule,
    /// validation, and simulation over this mapping shares the one table.
    pub costed_free: Costs,
    /// `PE_min` of the *original* graph (weights stored once).
    pub pe_min: usize,
    /// The duplication plan, when weight duplication was requested.
    pub plan: Option<DuplicationPlan>,
}

/// Shared handle to a mapped graph (duplicates expanded, logical layers
/// marked). Cloning is a reference-count bump.
pub type MappedGraph = Arc<Graph>;

/// Shared handle to the Stage-I sets of every base layer. Cloning is a
/// reference-count bump; `&layers` deref-coerces to `&[LayerSets]`
/// wherever a slice is expected.
pub type Layers = Arc<Vec<LayerSets>>;

/// Shared handle to the Stage-II dependency relation. Cloning is a
/// reference-count bump.
pub type Deps = Arc<Dependencies>;

/// Shared handle to a precomputed [`CostedDeps`] edge-cost table. Cloning
/// is a reference-count bump.
pub type Costs = Arc<CostedDeps>;

/// Everything a pipeline run produces.
///
/// The stage artifacts (`mapped_graph`, `layers`, `deps`) are the *same*
/// [`Arc`]s as the [`Prepared`] the run came from — results of different
/// scheduling variants over one mapping share one copy of the stage
/// outputs (checked by `tests/arc_sharing.rs`).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The mapped graph (duplicates expanded, logical layers marked).
    pub mapped_graph: MappedGraph,
    /// Stage-I sets per base layer of the mapped graph.
    pub layers: Layers,
    /// Stage-II dependencies.
    pub deps: Deps,
    /// The precomputed edge-cost table the schedule was built and
    /// validated with. For the paper's peak model this *is* the
    /// [`Prepared::costed_free`] `Arc` (shared, never rebuilt); cost-model
    /// runs carry their own table.
    pub costed: Costs,
    /// The schedule (Stage IV or the baseline).
    pub schedule: Schedule,
    /// Eq. 2 utilization report over the architecture's PEs.
    pub report: UtilizationReport,
    /// `PE_min` of the *original* graph (weights stored once).
    pub pe_min: usize,
    /// The duplication plan, when weight duplication was requested.
    pub plan: Option<DuplicationPlan>,
}

impl RunResult {
    /// Makespan in cycles.
    pub fn makespan(&self) -> u64 {
        self.schedule.makespan
    }
}

/// Runs the full pipeline on `graph` under `config`.
///
/// The produced schedule is always validated against the stage outputs
/// before being returned, so a successful run is a machine-checked one.
///
/// # Errors
///
/// Propagates mapping errors (including
/// [`MappingError::BudgetTooSmall`](cim_mapping::MappingError::BudgetTooSmall)
/// when the architecture cannot store the network), stage mismatches, and
/// validation failures.
///
/// # Examples
///
/// ```
/// use cim_arch::Architecture;
/// use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
/// use clsa_core::{run, RunConfig};
///
/// # fn main() -> Result<(), clsa_core::CoreError> {
/// let mut g = Graph::new("toy");
/// let x = g.add("input", Op::Input { shape: FeatureShape::new(10, 10, 3) }, &[])?;
/// g.add("conv", Op::Conv2d(Conv2dAttrs {
///     out_channels: 8, kernel: (3, 3), stride: (1, 1),
///     padding: Padding::Valid, use_bias: false,
/// }), &[x])?;
/// let arch = Architecture::paper_case_study(4)?;
/// let baseline = run(&g, &RunConfig::baseline(arch.clone()))?;
/// let xinf = run(&g, &RunConfig::baseline(arch).with_cross_layer())?;
/// assert!(xinf.makespan() <= baseline.makespan());
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph, config: &RunConfig) -> Result<RunResult> {
    let prepared = prepare(graph, config)?;
    run_prepared(&prepared, config)
}

/// Runs the front half of the pipeline: mapping plus Stages I & II.
///
/// Only the mapping-side fields of `config` are read (`arch`, `mapping`,
/// `set_policy`, `mapping_options`); the scheduling-side fields are
/// consumed later by [`run_prepared`], so one `Prepared` serves every
/// scheduling variant over the same mapping. Of the architecture, only
/// the crossbar spec and the total PE budget are read — `cim-bench`'s
/// stage cache keys on exactly those two facets, so widen that key if
/// this function ever reads more of the architecture.
///
/// # Errors
///
/// Propagates mapping errors, including
/// [`MappingError::BudgetTooSmall`](cim_mapping::MappingError::BudgetTooSmall)
/// when the architecture cannot store the network.
pub fn prepare(graph: &Graph, config: &RunConfig) -> Result<Prepared> {
    let xbar = config.arch.crossbar();
    let budget = config.arch.total_pes();

    // Mapping: decide duplicates, then rewrite the graph. A trivial plan is
    // applied even for once-each mapping so that every base layer carries a
    // logical-layer marker for the baseline scheduler.
    let costs0 = layer_costs(graph, xbar, &config.mapping_options)?;
    let pe_min = min_pes(&costs0);
    let (plan, keep_plan) = match config.mapping {
        MappingChoice::OnceEach => (optimize(&costs0, pe_min, Solver::Greedy)?, false),
        MappingChoice::WeightDuplication { solver } => (optimize(&costs0, budget, solver)?, true),
    };
    if pe_min > budget {
        return Err(cim_mapping::MappingError::BudgetTooSmall {
            required: pe_min,
            available: budget,
        }
        .into());
    }
    let mapped_graph = apply_duplication(graph, &costs0, &plan)?;

    // Stages I & II on the mapped graph.
    let costs = layer_costs(&mapped_graph, xbar, &config.mapping_options)?;
    let layers = determine_sets(&mapped_graph, &costs, &config.set_policy)?;
    let deps = determine_dependencies(&mapped_graph, &layers)?;

    let costed_free = CostedDeps::free(&layers, &deps)?;
    Ok(Prepared {
        mapped_graph: Arc::new(mapped_graph),
        layers: Arc::new(layers),
        deps: Arc::new(deps),
        costed_free: Arc::new(costed_free),
        pe_min,
        plan: keep_plan.then_some(plan),
    })
}

/// Runs the back half of the pipeline — the edge-cost model, Stages III &
/// IV (or the baseline), validation, and metrics — on stage outputs from
/// [`prepare`].
///
/// `config` must carry the same architecture the `Prepared` was built
/// with; the mapping-side fields are not re-read.
///
/// The returned result *shares* the `Prepared`'s stage artifacts — the
/// `mapped_graph`/`layers`/`deps` clones below are `Arc` reference-count
/// bumps, never deep copies, so scheduling a cached `Prepared` under many
/// strategies is zero-copy on the stage outputs.
///
/// # Errors
///
/// Propagates placement, scheduling, and validation failures.
pub fn run_prepared(prepared: &Prepared, config: &RunConfig) -> Result<RunResult> {
    let (schedule, report, costed) = schedule_prepared(prepared, config)?;
    Ok(RunResult {
        mapped_graph: Arc::clone(&prepared.mapped_graph),
        layers: Arc::clone(&prepared.layers),
        deps: Arc::clone(&prepared.deps),
        costed,
        schedule,
        report,
        pe_min: prepared.pe_min,
        plan: prepared.plan.clone(),
    })
}

/// The scheduling core shared by [`run`] and [`run_prepared`]: borrows the
/// stage outputs, never clones them.
fn schedule_prepared(
    prepared: &Prepared,
    config: &RunConfig,
) -> Result<(Schedule, UtilizationReport, Costs)> {
    let budget = config.arch.total_pes();
    let layers = &prepared.layers;
    let deps = &prepared.deps;

    // Edge-cost model, precomputed once per `(mapping, EdgeCost)` pair:
    // the peak model reuses the table cached on the `Prepared`; the
    // NoC/GPEU extensions build theirs here, and everything downstream
    // (scheduler, validator, callers simulating the result) consumes the
    // flat `u64` tables instead of the cost model. The baseline keeps
    // whole layers sequential, which trivially satisfies data deps but
    // not necessarily with edge costs — it models DRAM round-trips
    // instead, so it schedules and validates cost-free.
    let costed: Costs = if config.noc_cost || config.gpeu_cost {
        // Placement must succeed whenever a data-movement model is
        // requested — also for baseline runs, which schedule cost-free
        // but still reject unplaceable configurations.
        let sizes: Vec<usize> = layers.iter().map(|l| l.pes).collect();
        let placement = place_groups(&config.arch, &sizes, config.placement)?;
        match config.scheduling {
            SchedulingChoice::LayerByLayer => Arc::clone(&prepared.costed_free),
            SchedulingChoice::CrossLayer => {
                let arch = config.arch.clone();
                let edge_cost = if config.gpeu_cost {
                    EdgeCost::NocAndGpeu { arch, placement }
                } else {
                    EdgeCost::NocHops { arch, placement }
                };
                Arc::new(CostedDeps::build(layers, deps, &edge_cost)?)
            }
        }
    } else {
        Arc::clone(&prepared.costed_free)
    };

    // Stages III & IV (or the baseline).
    let schedule = match config.scheduling {
        SchedulingChoice::LayerByLayer => layer_by_layer_schedule(layers)?,
        SchedulingChoice::CrossLayer => cross_layer_schedule_costed(layers, deps, &costed)?,
    };
    validate_schedule_costed(layers, deps, &schedule, &costed)?;

    let report = utilization(layers, &schedule, budget)?;
    Ok((schedule, report, costed))
}

// The sweep runner shares graphs, configs, and stage outputs across worker
// threads; keep the whole hot path free of interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Graph>();
    assert_send_sync::<RunConfig>();
    assert_send_sync::<Prepared>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<crate::sets::LayerSets>();
    assert_send_sync::<crate::deps::Dependencies>();
    assert_send_sync::<crate::schedule::Schedule>();
    assert_send_sync::<crate::schedule::EdgeCost>();
    assert_send_sync::<crate::cost::CostedDeps>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, Op, Padding, PoolAttrs};

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    /// A small 3-conv CNN with pooling and activation, PE_min = 3.
    fn small_cnn() -> Graph {
        let mut g = Graph::new("small");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(34, 34, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(16, 3, 1), &[x]).unwrap(); // 32×32
        let a1 = g.add("a1", Op::Activation(ActFn::Relu), &[c1]).unwrap();
        let p1 = g
            .add(
                "p1",
                Op::MaxPool2d(PoolAttrs {
                    window: (2, 2),
                    stride: (2, 2),
                    padding: Padding::Valid,
                }),
                &[a1],
            )
            .unwrap(); // 16×16
        let c2 = g.add("c2", conv_op(16, 3, 1), &[p1]).unwrap(); // 14×14
        g.add("c3", conv_op(8, 3, 1), &[c2]).unwrap(); // 12×12
        g
    }

    fn arch(pes: usize) -> Architecture {
        Architecture::paper_case_study(pes).unwrap()
    }

    #[test]
    fn four_paper_configurations_are_ordered() {
        let g = small_cnn();
        // PE_min for this net: c1 needs 1 (27 rows), c2 needs 1 (144 rows),
        // c3 needs 1 → 3.
        let lbl = run(&g, &RunConfig::baseline(arch(3))).unwrap();
        assert_eq!(lbl.pe_min, 3);
        let xinf = run(&g, &RunConfig::baseline(arch(3)).with_cross_layer()).unwrap();
        let wdup = run(
            &g,
            &RunConfig::baseline(arch(3 + 4)).with_duplication(Solver::Greedy),
        )
        .unwrap();
        let both = run(
            &g,
            &RunConfig::baseline(arch(3 + 4))
                .with_duplication(Solver::Greedy)
                .with_cross_layer(),
        )
        .unwrap();
        assert!(xinf.makespan() <= lbl.makespan());
        assert!(wdup.makespan() <= lbl.makespan());
        assert!(both.makespan() <= xinf.makespan());
        assert!(both.makespan() <= wdup.makespan());
        // Utilization ordering mirrors speedup (same work, Eq. 3).
        assert!(both.report.utilization >= lbl.report.utilization);
    }

    #[test]
    fn prepared_split_reproduces_run_for_every_scheduling_variant() {
        let g = small_cnn();
        // One prepare serves both scheduling variants over the same mapping.
        let cfg_lbl = RunConfig::baseline(arch(3));
        let cfg_xinf = cfg_lbl.clone().with_cross_layer();
        let prepared = prepare(&g, &cfg_lbl).unwrap();
        for cfg in [&cfg_lbl, &cfg_xinf] {
            let split = run_prepared(&prepared, cfg).unwrap();
            let whole = run(&g, cfg).unwrap();
            assert_eq!(split.schedule, whole.schedule);
            assert_eq!(split.report, whole.report);
            assert_eq!(split.pe_min, whole.pe_min);
            assert_eq!(split.mapped_graph, whole.mapped_graph);
        }
    }

    #[test]
    fn prepare_rejects_insufficient_budget() {
        let g = small_cnn();
        let err = prepare(&g, &RunConfig::baseline(arch(2))).unwrap_err();
        assert!(matches!(
            err,
            crate::error::CoreError::Mapping(cim_mapping::MappingError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn baseline_makespan_is_sum_of_layer_latencies() {
        let g = small_cnn();
        let lbl = run(&g, &RunConfig::baseline(arch(3))).unwrap();
        assert_eq!(lbl.makespan(), (32 * 32 + 14 * 14 + 12 * 12) as u64);
    }

    #[test]
    fn duplication_plan_reported() {
        let g = small_cnn();
        let r = run(
            &g,
            &RunConfig::baseline(arch(7)).with_duplication(Solver::ExactDp),
        )
        .unwrap();
        let plan = r.plan.as_ref().expect("duplication requested");
        assert!(!plan.is_trivial());
        assert!(plan.pes_used <= 7);
        assert!(r.report.used_pes <= 7);
        // Once-each runs report no plan.
        let lbl = run(&g, &RunConfig::baseline(arch(7))).unwrap();
        assert!(lbl.plan.is_none());
        assert_eq!(lbl.report.used_pes, 3);
    }

    #[test]
    fn insufficient_pes_is_reported() {
        let g = small_cnn();
        let err = run(&g, &RunConfig::baseline(arch(2))).unwrap_err();
        assert!(matches!(
            err,
            crate::error::CoreError::Mapping(cim_mapping::MappingError::BudgetTooSmall {
                required: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn baseline_with_noc_cost_schedules_cost_free_but_places_groups() {
        // A data-movement model on a LayerByLayer run must still resolve
        // the placement (surfacing placement errors exactly as before the
        // cost tables), while scheduling and validating cost-free.
        let g = small_cnn();
        let mut cfg = RunConfig::baseline(arch(3));
        cfg.noc_cost = true;
        let prepared = prepare(&g, &cfg).unwrap();
        let r = run_prepared(&prepared, &cfg).unwrap();
        let free = run(&g, &RunConfig::baseline(arch(3))).unwrap();
        assert_eq!(r.schedule, free.schedule);
        assert!(std::sync::Arc::ptr_eq(&r.costed, &prepared.costed_free));
    }

    #[test]
    fn noc_cost_slows_cross_layer_schedules() {
        let g = small_cnn();
        let base = Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 1,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(10)
            .pes(3)
            .build()
            .unwrap();
        let mut cfg = RunConfig::baseline(base).with_cross_layer();
        let free = run(&g, &cfg).unwrap();
        cfg.noc_cost = true;
        let costly = run(&g, &cfg).unwrap();
        assert!(costly.makespan() > free.makespan());
    }

    #[test]
    fn gpeu_cost_slows_more_than_noc_alone() {
        let g = small_cnn();
        let base = Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 1,
                gpeu_ops_per_cycle: 16,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(2)
            .pes(3)
            .build()
            .unwrap();
        let mut cfg = RunConfig::baseline(base).with_cross_layer();
        cfg.noc_cost = true;
        let noc_only = run(&g, &cfg).unwrap();
        cfg.gpeu_cost = true;
        let with_gpeu = run(&g, &cfg).unwrap();
        assert!(with_gpeu.makespan() > noc_only.makespan());
    }

    #[test]
    fn coarse_sets_reduce_overlap() {
        let g = small_cnn();
        let mut cfg = RunConfig::baseline(arch(3)).with_cross_layer();
        let fine = run(&g, &cfg).unwrap();
        cfg.set_policy = SetPolicy::coarse(1);
        let coarse = run(&g, &cfg).unwrap();
        assert!(fine.makespan() <= coarse.makespan());
    }
}
