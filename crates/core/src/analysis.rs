//! Schedule analysis: critical-path extraction and per-layer bottleneck
//! attribution.
//!
//! The cross-layer schedule is a longest path through the set DAG; knowing
//! *which* sets lie on that path tells a user where extra PEs (weight
//! duplication) or finer sets would actually help — the reasoning behind
//! the paper's observation that the early, high-`OH·OW` layers are the
//! profitable duplication targets.

use serde::{Deserialize, Serialize};

use crate::cost::CostedDeps;
use crate::deps::{Dependencies, SetRef};
use crate::error::{CoreError, Result};
use crate::schedule::{EdgeCost, Schedule};
use crate::sets::LayerSets;

/// One step of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalStep {
    /// The set on the path.
    pub set: SetRef,
    /// Its scheduled start cycle.
    pub start: u64,
    /// Its scheduled finish cycle.
    pub finish: u64,
}

/// Extracts one critical path of `schedule`: a chain of sets from a
/// zero-start set to the set that finishes at the makespan, where every
/// step is the binding constraint of its successor (either the same
/// group's previous set, or a data dependency whose arrival equals the
/// successor's start).
///
/// Returned in execution order (earliest first). Ties are broken toward
/// data dependencies, which usually yields the more informative
/// cross-layer story.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] when the inputs disagree in shape,
/// and [`CoreError::InvalidSchedule`] when no binding predecessor exists
/// for a non-zero start (the schedule was not built from these inputs).
pub fn critical_path(
    layers: &[LayerSets],
    deps: &Dependencies,
    schedule: &Schedule,
    edge_cost: &EdgeCost,
) -> Result<Vec<CriticalStep>> {
    if schedule.num_layers() != layers.len() || deps.num_layers() != layers.len() {
        return Err(CoreError::StageMismatch {
            detail: "analysis inputs cover different layer counts".into(),
        });
    }
    // Edge latencies, precomputed once for the whole walk (consumer side
    // only — the walk never needs the fan-out view).
    let costed = CostedDeps::build_consumer_only(layers, deps, edge_cost)?;
    // Find the set finishing last.
    let mut cur: Option<SetRef> = None;
    let mut best_finish = 0u64;
    for (li, lt) in schedule.iter_layers().enumerate() {
        for (si, t) in lt.iter().enumerate() {
            if t.finish >= best_finish {
                best_finish = t.finish;
                cur = Some(SetRef { layer: li, set: si });
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = cur.ok_or(CoreError::StageMismatch {
        detail: "empty schedule".into(),
    })?;
    loop {
        let t = schedule.time(cur.layer, cur.set);
        path.push(CriticalStep {
            set: cur,
            start: t.start,
            finish: t.finish,
        });
        if t.start == 0 {
            break;
        }
        // Prefer a data dependency whose arrival binds the start.
        let mut binding: Option<SetRef> = None;
        for (dep, &lat) in deps
            .of(cur.layer, cur.set)
            .iter()
            .zip(costed.latencies_of(cur.layer, cur.set))
        {
            let dt = schedule.time(dep.layer, dep.set);
            if dt.finish + lat == t.start {
                binding = Some(*dep);
                break;
            }
        }
        // Otherwise the group chain binds.
        if binding.is_none() && cur.set > 0 {
            let prev = SetRef {
                layer: cur.layer,
                set: cur.set - 1,
            };
            if schedule.time(prev.layer, prev.set).finish == t.start {
                binding = Some(prev);
            }
        }
        cur = binding.ok_or_else(|| CoreError::InvalidSchedule {
            detail: format!(
                "no binding predecessor for {cur} starting at {} — schedule does not \
                 match the given stages",
                t.start
            ),
        })?;
    }
    path.reverse();
    Ok(path)
}

/// Aggregates the critical path per layer: cycles each layer contributes.
///
/// The sum over all layers equals the makespan minus the total edge-cost
/// waiting on the path (zero in the peak-performance model).
pub fn critical_cycles_per_layer(
    layers: &[LayerSets],
    path: &[CriticalStep],
) -> Vec<(String, u64)> {
    let mut acc = vec![0u64; layers.len()];
    for step in path {
        acc[step.set.layer] += step.finish - step.start;
    }
    layers
        .iter()
        .zip(acc)
        .map(|(l, c)| (l.name.clone(), c))
        .filter(|&(_, c)| c > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::deps::determine_dependencies;
    use crate::schedule::cross_layer_schedule;
    use crate::sets::{determine_sets, SetPolicy};

    fn conv_op(oc: usize, k: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (1, 1),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    fn two_convs() -> (Vec<LayerSets>, Dependencies, Schedule) {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3), &[x]).unwrap();
        g.add("c2", conv_op(8, 3), &[c1]).unwrap();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(&g, &costs, &SetPolicy::finest()).unwrap();
        let deps = determine_dependencies(&g, &layers).unwrap();
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        (layers, deps, s)
    }

    #[test]
    fn path_spans_zero_to_makespan_contiguously() {
        let (layers, deps, s) = two_convs();
        let path = critical_path(&layers, &deps, &s, &EdgeCost::Free).unwrap();
        assert_eq!(path.first().unwrap().start, 0);
        assert_eq!(path.last().unwrap().finish, s.makespan);
        // Under EdgeCost::Free the path is gap-free.
        for w in path.windows(2) {
            assert_eq!(w[0].finish, w[1].start, "critical path must be contiguous");
        }
    }

    #[test]
    fn path_crosses_into_the_consumer_layer() {
        let (layers, deps, s) = two_convs();
        let path = critical_path(&layers, &deps, &s, &EdgeCost::Free).unwrap();
        // It must end in c2 (the last finisher) and start in c1.
        assert_eq!(path.first().unwrap().set.layer, 0);
        assert_eq!(path.last().unwrap().set.layer, 1);
        let per_layer = critical_cycles_per_layer(&layers, &path);
        assert_eq!(per_layer.len(), 2);
        // c1 dominates: the consumer chases the producer's full run.
        assert!(per_layer[0].1 > per_layer[1].1);
        let total: u64 = per_layer.iter().map(|(_, c)| c).sum();
        assert_eq!(total, s.makespan, "free edges: path cycles sum to makespan");
    }

    #[test]
    fn tampered_schedule_is_detected() {
        let (layers, deps, mut s) = two_convs();
        // Delay the final set artificially: its start no longer has a
        // binding predecessor, and it still ends the schedule.
        let last = s.layer(1).len() - 1;
        s.time_mut(1, last).start += 1;
        s.time_mut(1, last).finish += 1;
        s.makespan += 1;
        assert!(matches!(
            critical_path(&layers, &deps, &s, &EdgeCost::Free),
            Err(CoreError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (layers, deps, s) = two_convs();
        assert!(critical_path(&layers[..1], &deps, &s, &EdgeCost::Free).is_err());
    }
}
