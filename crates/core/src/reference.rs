//! Naive reference implementations — the executable specification of the
//! scheduling core.
//!
//! These are the pre-CSR algorithms, kept verbatim: nested `Vec` dependency
//! tables, per-edge [`EdgeCost::cycles`] calls inside the scheduling inner
//! loops, per-set `HashSet` allocation in the dependency analysis. They are
//! deliberately *not* optimized — their job is to stay obviously correct so
//! the differential property suite (`tests/csr_differential.rs`) and the
//! `schedule_core` benchmarks can compare the flat/precomputed hot paths
//! against them on random DAGs, real models, and every cost model.


// cim-lint: allow-file(hash-collection) the pre-CSR reference implementation is kept verbatim as the differential-testing oracle
use std::collections::HashSet;

use cim_ir::{input_region, Graph, NodeId, Op, Rect};

use crate::deps::{Dependencies, SetRef};
use crate::error::{CoreError, Result};
use crate::schedule::{set_bytes, BatchedSchedule, EdgeCost, Schedule, SetTime};
use crate::sets::LayerSets;

/// Reference Stage IV: the cross-layer longest-path sweep with per-edge
/// cost-model calls (the pre-optimization implementation of
/// [`cross_layer_schedule`](crate::cross_layer_schedule)).
///
/// # Errors
///
/// Same conditions as the optimized scheduler.
pub fn cross_layer_schedule_naive(
    layers: &[LayerSets],
    deps: &Dependencies,
    edge_cost: &EdgeCost,
) -> Result<Schedule> {
    if deps.num_layers() != layers.len() {
        return Err(CoreError::StageMismatch {
            detail: format!(
                "dependencies cover {} layers, sets cover {}",
                deps.num_layers(),
                layers.len()
            ),
        });
    }
    let mut times: Vec<Vec<SetTime>> = Vec::with_capacity(layers.len());
    let mut makespan = 0u64;
    for (li, layer) in layers.iter().enumerate() {
        let mut layer_times = Vec::with_capacity(layer.sets.len());
        let mut group_free = 0u64;
        for (si, set) in layer.sets.iter().enumerate() {
            let mut start = group_free;
            for dep in deps.of(li, si) {
                if dep.layer >= li {
                    return Err(CoreError::StageMismatch {
                        detail: format!(
                            "dependency {dep} of layer {li} is not topologically earlier"
                        ),
                    });
                }
                let dep_finish: u64 = times[dep.layer][dep.set].finish;
                let bytes = set_bytes(&layers[dep.layer], dep.set);
                let arrive = dep_finish + edge_cost.cycles(dep.layer, li, bytes)?;
                start = start.max(arrive);
            }
            let finish = start + set.duration;
            group_free = finish;
            makespan = makespan.max(finish);
            layer_times.push(SetTime { start, finish });
        }
        times.push(layer_times);
    }
    Ok(Schedule::from_nested(times, makespan))
}

/// Reference batched scheduler: recomputes every edge cost for every batch
/// instance (the `O(batch × edges)` behaviour the precomputed tables
/// eliminate).
///
/// # Errors
///
/// Same conditions as the optimized scheduler.
pub fn batched_cross_layer_schedule_naive(
    layers: &[LayerSets],
    deps: &Dependencies,
    edge_cost: &EdgeCost,
    batch: usize,
) -> Result<BatchedSchedule> {
    if batch == 0 {
        return Err(CoreError::StageMismatch {
            detail: "batch must be at least 1".into(),
        });
    }
    if deps.num_layers() != layers.len() {
        return Err(CoreError::StageMismatch {
            detail: format!(
                "dependencies cover {} layers, sets cover {}",
                deps.num_layers(),
                layers.len()
            ),
        });
    }
    let mut group_free = vec![0u64; layers.len()];
    let mut instances = Vec::with_capacity(batch);
    let mut makespan = 0u64;
    for _ in 0..batch {
        let mut times: Vec<Vec<SetTime>> = Vec::with_capacity(layers.len());
        let mut instance_makespan = 0u64;
        for (li, layer) in layers.iter().enumerate() {
            let mut layer_times = Vec::with_capacity(layer.sets.len());
            for (si, set) in layer.sets.iter().enumerate() {
                let mut start = group_free[li];
                for dep in deps.of(li, si) {
                    if dep.layer >= li {
                        return Err(CoreError::StageMismatch {
                            detail: format!(
                                "dependency {dep} of layer {li} is not topologically earlier"
                            ),
                        });
                    }
                    let dep_finish = times[dep.layer][dep.set].finish;
                    let bytes = set_bytes(&layers[dep.layer], dep.set);
                    start = start.max(dep_finish + edge_cost.cycles(dep.layer, li, bytes)?);
                }
                let finish = start + set.duration;
                group_free[li] = finish;
                instance_makespan = instance_makespan.max(finish);
                layer_times.push(SetTime { start, finish });
            }
            times.push(layer_times);
        }
        makespan = makespan.max(instance_makespan);
        instances.push(Schedule::from_nested(times, instance_makespan));
    }
    Ok(BatchedSchedule {
        instances,
        makespan,
    })
}

/// Reference Stage II: per-set `HashSet` accumulation (the pre-CSR
/// implementation of
/// [`determine_dependencies`](crate::determine_dependencies)).
///
/// # Errors
///
/// Same conditions as the optimized analysis.
pub fn determine_dependencies_naive(graph: &Graph, layers: &[LayerSets]) -> Result<Dependencies> {
    let mut layer_of = vec![usize::MAX; graph.len()];
    for (i, l) in layers.iter().enumerate() {
        let node = graph.node(l.node)?;
        if !node.op.is_base() {
            return Err(CoreError::StageMismatch {
                detail: format!("layer entry `{}` is not a base layer", l.name),
            });
        }
        layer_of[l.node.index()] = i;
    }

    let sets_per_layer: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
    let mut edges: Vec<(SetRef, SetRef)> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        let node = graph.node(layer.node)?;
        let in_shapes: Vec<_> = node
            .inputs
            .iter()
            .map(|&i| graph.node(i).map(|n| n.out_shape))
            .collect::<std::result::Result<_, _>>()?;
        for (si, set) in layer.sets.iter().enumerate() {
            let mut found: HashSet<SetRef> = HashSet::new();
            for (idx, &inp) in node.inputs.iter().enumerate() {
                if let Some(r) = input_region(&node.op, set.rect, &in_shapes, idx, node.out_shape) {
                    back_propagate_naive(graph, &layer_of, layers, inp, r, &mut found)?;
                }
            }
            let consumer = SetRef { layer: li, set: si };
            edges.extend(found.into_iter().map(|p| (consumer, p)));
        }
    }
    Dependencies::from_edges(&sets_per_layer, &edges)
}

fn back_propagate_naive(
    graph: &Graph,
    layer_of: &[usize],
    layers: &[LayerSets],
    node: NodeId,
    rect: Rect,
    found: &mut HashSet<SetRef>,
) -> Result<()> {
    let n = graph.node(node)?;
    if n.op.is_base() {
        let li = layer_of[node.index()];
        if li == usize::MAX {
            return Err(CoreError::StageMismatch {
                detail: format!("base layer `{}` has no Stage-I sets", n.name),
            });
        }
        for (si, set) in layers[li].sets.iter().enumerate() {
            if set.rect.intersects(&rect) {
                found.insert(SetRef { layer: li, set: si });
            }
        }
        return Ok(());
    }
    if matches!(n.op, Op::Input { .. }) {
        return Ok(());
    }
    let in_shapes: Vec<_> = n
        .inputs
        .iter()
        .map(|&i| graph.node(i).map(|x| x.out_shape))
        .collect::<std::result::Result<_, _>>()?;
    for (idx, &inp) in n.inputs.iter().enumerate() {
        if let Some(r) = input_region(&n.op, rect, &in_shapes, idx, n.out_shape) {
            back_propagate_naive(graph, layer_of, layers, inp, r, found)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, FeatureShape, Op, Padding};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::schedule::{batched_cross_layer_schedule, cross_layer_schedule};
    use crate::sets::{determine_sets, SetPolicy};

    #[test]
    fn reference_agrees_on_the_fig5_style_chain() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(12, 12, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g
            .add(
                "c1",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 8,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Valid,
                    use_bias: false,
                }),
                &[x],
            )
            .unwrap();
        g.add(
            "c2",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[c1],
        )
        .unwrap();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(&g, &costs, &SetPolicy::finest()).unwrap();
        let deps = crate::deps::determine_dependencies(&g, &layers).unwrap();
        assert_eq!(determine_dependencies_naive(&g, &layers).unwrap(), deps);
        assert_eq!(
            cross_layer_schedule_naive(&layers, &deps, &EdgeCost::Free).unwrap(),
            cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap()
        );
        assert_eq!(
            batched_cross_layer_schedule_naive(&layers, &deps, &EdgeCost::Free, 8).unwrap(),
            batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 8).unwrap()
        );
    }
}
