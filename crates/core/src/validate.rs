//! Schedule validation: machine-checks every property a legal CLSA-CIM
//! schedule must have. Used by the test suite (including the property tests
//! over random graphs) and available to downstream users as a debugging
//! aid.

use crate::deps::Dependencies;
use crate::error::{CoreError, Result};
use crate::schedule::{EdgeCost, Schedule};
use crate::sets::LayerSets;

/// Validates `schedule` against the Stage I/II outputs it was built from.
///
/// Checked properties:
///
/// 1. shape: one time window per set, everywhere;
/// 2. durations: `finish − start` equals the set's duration;
/// 3. Stage III resource order: a layer's windows are non-overlapping and
///    in set order (one PE group per layer);
/// 4. Stage II data dependencies: every producer set finishes (plus the
///    edge cost) before its consumer starts;
/// 5. the makespan equals the latest finish.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSchedule`] describing the first violation.
pub fn validate_schedule(
    layers: &[LayerSets],
    deps: &Dependencies,
    schedule: &Schedule,
    edge_cost: &EdgeCost,
) -> Result<()> {
    if schedule.num_layers() != layers.len() {
        return Err(CoreError::InvalidSchedule {
            detail: format!(
                "schedule has {} layers, expected {}",
                schedule.num_layers(),
                layers.len()
            ),
        });
    }
    let mut latest = 0u64;
    for (li, layer) in layers.iter().enumerate() {
        let times = &schedule.times[li];
        if times.len() != layer.sets.len() {
            return Err(CoreError::InvalidSchedule {
                detail: format!(
                    "layer `{}` has {} windows for {} sets",
                    layer.name,
                    times.len(),
                    layer.sets.len()
                ),
            });
        }
        for (si, (t, set)) in times.iter().zip(&layer.sets).enumerate() {
            if t.finish.saturating_sub(t.start) != set.duration {
                return Err(CoreError::InvalidSchedule {
                    detail: format!(
                        "layer `{}` set {si}: window [{}, {}) does not match duration {}",
                        layer.name, t.start, t.finish, set.duration
                    ),
                });
            }
            latest = latest.max(t.finish);
        }
        for (si, w) in times.windows(2).enumerate() {
            if w[1].start < w[0].finish {
                return Err(CoreError::InvalidSchedule {
                    detail: format!(
                        "layer `{}`: set {} starts at {} before set {} finishes at {} \
                         (one PE group cannot overlap)",
                        layer.name,
                        si + 1,
                        w[1].start,
                        si,
                        w[0].finish
                    ),
                });
            }
        }
    }
    for (consumer, producer) in deps.edges() {
        let p = schedule.times[producer.layer][producer.set];
        let c = schedule.times[consumer.layer][consumer.set];
        let bytes = crate::schedule::set_bytes(&layers[producer.layer], producer.set);
        let arrival = p.finish + edge_cost.cycles(producer.layer, consumer.layer, bytes)?;
        if c.start < arrival {
            return Err(CoreError::InvalidSchedule {
                detail: format!(
                    "data dependency violated: {producer} arrives at {arrival} but \
                     {consumer} starts at {}",
                    c.start
                ),
            });
        }
    }
    if schedule.makespan != latest {
        return Err(CoreError::InvalidSchedule {
            detail: format!(
                "makespan {} does not match latest finish {latest}",
                schedule.makespan
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::deps::determine_dependencies;
    use crate::schedule::{cross_layer_schedule, layer_by_layer_schedule};
    use crate::sets::{determine_sets, SetPolicy};

    fn pipeline() -> (Vec<LayerSets>, Dependencies, Schedule) {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g
            .add(
                "c1",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 8,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Valid,
                    use_bias: false,
                }),
                &[x],
            )
            .unwrap();
        g.add(
            "c2",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[c1],
        )
        .unwrap();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(&g, &costs, &SetPolicy::finest()).unwrap();
        let deps = determine_dependencies(&g, &layers).unwrap();
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        (layers, deps, s)
    }

    #[test]
    fn valid_schedules_pass() {
        let (layers, deps, s) = pipeline();
        validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap();
        let lbl = layer_by_layer_schedule(&layers).unwrap();
        validate_schedule(&layers, &deps, &lbl, &EdgeCost::Free).unwrap();
    }

    #[test]
    fn detects_duration_mismatch() {
        let (layers, deps, mut s) = pipeline();
        s.times[0][0].finish += 1;
        // Either the duration check or a downstream one fires; it must fail.
        assert!(validate_schedule(&layers, &deps, &s, &EdgeCost::Free).is_err());
    }

    #[test]
    fn detects_group_overlap() {
        let (layers, deps, mut s) = pipeline();
        // Shift set 1 of layer 0 to overlap set 0.
        let d = s.times[0][1].finish - s.times[0][1].start;
        s.times[0][1].start = s.times[0][0].start;
        s.times[0][1].finish = s.times[0][1].start + d;
        let err = validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap_err();
        assert!(err.to_string().contains("PE group"), "{err}");
    }

    #[test]
    fn detects_dependency_violation() {
        let (layers, deps, mut s) = pipeline();
        // Pull the first consumer set before its producers finish.
        let d = s.times[1][0].finish - s.times[1][0].start;
        s.times[1][0].start = 0;
        s.times[1][0].finish = d;
        let err = validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap_err();
        assert!(err.to_string().contains("dependency"), "{err}");
    }

    #[test]
    fn detects_wrong_makespan() {
        let (layers, deps, mut s) = pipeline();
        s.makespan += 7;
        let err = validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap_err();
        assert!(err.to_string().contains("makespan"), "{err}");
    }

    #[test]
    fn detects_shape_mismatch() {
        let (layers, deps, mut s) = pipeline();
        s.times[0].pop();
        assert!(validate_schedule(&layers, &deps, &s, &EdgeCost::Free).is_err());
    }
}
