//! Schedule validation: machine-checks every property a legal CLSA-CIM
//! schedule must have. Used by the test suite (including the property tests
//! over random graphs) and available to downstream users as a debugging
//! aid.

use crate::cost::CostedDeps;
use crate::deps::Dependencies;
use crate::diagnose::{analyze_costed, is_validation_code, Severity};
use crate::error::{CoreError, Result};
use crate::schedule::{EdgeCost, Schedule};
use crate::sets::LayerSets;

/// Validates `schedule` against the Stage I/II outputs it was built from.
///
/// Checked properties:
///
/// 1. shape: one time window per set, everywhere;
/// 2. durations: `finish − start` equals the set's duration;
/// 3. Stage III resource order: a layer's windows are non-overlapping and
///    in set order (one PE group per layer);
/// 4. Stage II data dependencies: every producer set finishes (plus the
///    edge cost) before its consumer starts;
/// 5. the makespan equals the latest finish.
///
/// Edge costs are precomputed once; callers that already hold the
/// [`CostedDeps`] of the `(mapping, EdgeCost)` pair (e.g. because the
/// schedule was built from it) should use [`validate_schedule_costed`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidSchedule`] describing the first violation.
pub fn validate_schedule(
    layers: &[LayerSets],
    deps: &Dependencies,
    schedule: &Schedule,
    edge_cost: &EdgeCost,
) -> Result<()> {
    check_shape(layers, schedule)?;
    let costed = CostedDeps::build_consumer_only(layers, deps, edge_cost).map_err(invalidate)?;
    validate_schedule_costed(layers, deps, schedule, &costed)
}

/// [`validate_schedule`] on a prebuilt [`CostedDeps`] table.
///
/// Implemented as a filter over the structured diagnostics pass
/// ([`crate::diagnose::analyze_costed`]): the first validation finding of
/// [`Severity::Error`] becomes the returned error, with a message
/// byte-identical to the historical single-shot validator's. Analysis
/// findings (backward edges, fan-in anomalies, …) never affect the
/// verdict — see the `diagnose` module docs for the split.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSchedule`] describing the first violation.
pub fn validate_schedule_costed(
    layers: &[LayerSets],
    deps: &Dependencies,
    schedule: &Schedule,
    costed: &CostedDeps,
) -> Result<()> {
    let first = analyze_costed(layers, deps, schedule, costed)
        .into_iter()
        .find(|d| d.severity == Severity::Error && is_validation_code(d.code));
    match first {
        Some(d) => Err(CoreError::InvalidSchedule { detail: d.detail }),
        None => Ok(()),
    }
}

/// Shape agreement between the schedule and the layer list.
fn check_shape(layers: &[LayerSets], schedule: &Schedule) -> Result<()> {
    if schedule.num_layers() != layers.len() {
        return Err(CoreError::InvalidSchedule {
            detail: format!(
                "schedule has {} layers, expected {}",
                schedule.num_layers(),
                layers.len()
            ),
        });
    }
    for (li, layer) in layers.iter().enumerate() {
        let n = schedule.layer(li).len();
        if n != layer.sets.len() {
            return Err(CoreError::InvalidSchedule {
                detail: format!(
                    "layer `{}` has {} windows for {} sets",
                    layer.name,
                    n,
                    layer.sets.len()
                ),
            });
        }
    }
    Ok(())
}

/// Maps a stage mismatch from cost-table construction onto the validator's
/// error type.
fn invalidate(e: CoreError) -> CoreError {
    match e {
        CoreError::StageMismatch { detail } => CoreError::InvalidSchedule { detail },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::deps::determine_dependencies;
    use crate::schedule::{cross_layer_schedule, layer_by_layer_schedule};
    use crate::sets::{determine_sets, SetPolicy};

    fn pipeline() -> (Vec<LayerSets>, Dependencies, Schedule) {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g
            .add(
                "c1",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 8,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Valid,
                    use_bias: false,
                }),
                &[x],
            )
            .unwrap();
        g.add(
            "c2",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[c1],
        )
        .unwrap();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(&g, &costs, &SetPolicy::finest()).unwrap();
        let deps = determine_dependencies(&g, &layers).unwrap();
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        (layers, deps, s)
    }

    #[test]
    fn valid_schedules_pass() {
        let (layers, deps, s) = pipeline();
        validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap();
        let lbl = layer_by_layer_schedule(&layers).unwrap();
        validate_schedule(&layers, &deps, &lbl, &EdgeCost::Free).unwrap();
    }

    #[test]
    fn costed_validator_matches_the_wrapper() {
        let (layers, deps, s) = pipeline();
        let costed = crate::cost::CostedDeps::free(&layers, &deps).unwrap();
        validate_schedule_costed(&layers, &deps, &s, &costed).unwrap();
    }

    #[test]
    fn detects_duration_mismatch() {
        let (layers, deps, mut s) = pipeline();
        s.time_mut(0, 0).finish += 1;
        // Either the duration check or a downstream one fires; it must fail.
        assert!(validate_schedule(&layers, &deps, &s, &EdgeCost::Free).is_err());
    }

    #[test]
    fn detects_group_overlap() {
        let (layers, deps, mut s) = pipeline();
        // Shift set 1 of layer 0 to overlap set 0.
        let d = s.time(0, 1).finish - s.time(0, 1).start;
        s.time_mut(0, 1).start = s.time(0, 0).start;
        s.time_mut(0, 1).finish = s.time(0, 1).start + d;
        let err = validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap_err();
        assert!(err.to_string().contains("PE group"), "{err}");
    }

    #[test]
    fn detects_dependency_violation() {
        let (layers, deps, mut s) = pipeline();
        // Pull the first consumer set before its producers finish.
        let d = s.time(1, 0).finish - s.time(1, 0).start;
        s.time_mut(1, 0).start = 0;
        s.time_mut(1, 0).finish = d;
        let err = validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap_err();
        assert!(err.to_string().contains("dependency"), "{err}");
    }

    #[test]
    fn detects_wrong_makespan() {
        let (layers, deps, mut s) = pipeline();
        s.makespan += 7;
        let err = validate_schedule(&layers, &deps, &s, &EdgeCost::Free).unwrap_err();
        assert!(err.to_string().contains("makespan"), "{err}");
    }

    #[test]
    fn detects_shape_mismatch() {
        let (layers, deps, s) = pipeline();
        let mut nested = s.to_nested();
        nested[0].pop();
        let s = Schedule::from_nested(nested, s.makespan);
        assert!(validate_schedule(&layers, &deps, &s, &EdgeCost::Free).is_err());
    }
}
