//! Metrics: utilization (Eq. 2), speedup, and the speedup–utilization
//! identity (Eq. 3).
//!
//! The paper defines architecture utilization as the mean over all PEs of
//! the ratio of active cycles to total inference time:
//!
//! ```text
//! Ut := (1/#PE) · Σ_p  t_p,active / t_NN                    (Eq. 2)
//! ```
//!
//! and relates the speedup of configuration `c` with `x` extra PEs to the
//! utilizations:
//!
//! ```text
//! S_x,c ≈ Ut_x,c · (PE_min + x) / (Ut_lbl · PE_min)          (Eq. 3)
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::schedule::Schedule;
use crate::sets::LayerSets;

/// Utilization and activity report of one schedule (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// PEs in the architecture (`#PE` in Eq. 2 — including idle spares).
    pub total_pes: usize,
    /// PEs actually holding weights (`Σ c_i · d_i`).
    pub used_pes: usize,
    /// Schedule makespan in cycles (`t_NN`).
    pub makespan: u64,
    /// Σ over PEs of active cycles. Every PE of a layer's group is active
    /// exactly while the group computes (intra-layer scheduling keeps the
    /// group in lock-step, Sec. III-B).
    pub active_pe_cycles: u64,
    /// Eq. 2 utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Computes the Eq. 2 utilization of `schedule` over an architecture with
/// `total_pes` PEs.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] when the schedule and layer list
/// disagree, or when the used PEs exceed `total_pes`.
pub fn utilization(
    layers: &[LayerSets],
    schedule: &Schedule,
    total_pes: usize,
) -> Result<UtilizationReport> {
    if layers.len() != schedule.num_layers() {
        return Err(CoreError::StageMismatch {
            detail: format!(
                "schedule covers {} layers, sets cover {}",
                schedule.num_layers(),
                layers.len()
            ),
        });
    }
    let used_pes: usize = layers.iter().map(|l| l.pes).sum();
    if used_pes > total_pes {
        return Err(CoreError::StageMismatch {
            detail: format!("{used_pes} PEs used but architecture has {total_pes}"),
        });
    }
    let active_pe_cycles: u64 = layers
        .iter()
        .enumerate()
        .map(|(li, l)| l.pes as u64 * schedule.active_cycles(li))
        .sum();
    let denom = total_pes as u64 * schedule.makespan;
    let utilization = if denom == 0 {
        0.0
    } else {
        active_pe_cycles as f64 / denom as f64
    };
    Ok(UtilizationReport {
        total_pes,
        used_pes,
        makespan: schedule.makespan,
        active_pe_cycles,
        utilization,
    })
}

/// Speedup of `makespan` relative to `baseline_makespan`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSchedule`] for a zero makespan.
pub fn speedup(baseline_makespan: u64, makespan: u64) -> Result<f64> {
    if makespan == 0 || baseline_makespan == 0 {
        return Err(CoreError::InvalidSchedule {
            detail: "speedup undefined for zero makespan".into(),
        });
    }
    Ok(baseline_makespan as f64 / makespan as f64)
}

/// Eq. 3: predicted speedup from utilizations.
///
/// `ut` is the configuration's utilization on `pe_min + x` PEs, `ut_lbl` the
/// layer-by-layer baseline utilization on `pe_min` PEs. This form bakes in
/// the paper-case-study convention that the configuration's architecture
/// holds exactly `pe_min + x` PEs and the baseline exactly `pe_min`; for
/// arbitrary architectures use [`eq3_predicted_from_utilization`], which
/// reads the actual PE totals.
pub fn eq3_predicted_speedup(ut: f64, ut_lbl: f64, pe_min: usize, x: usize) -> f64 {
    ut * (pe_min + x) as f64 / (ut_lbl * pe_min as f64)
}

/// Eq. 3 from the *actual* architecture totals: predicted speedup of a
/// configuration with utilization `ut` on `total_pes` PEs over a baseline
/// with utilization `ut_lbl` on `baseline_total_pes` PEs.
///
/// Eq. 3 rests on the invariant `S ≈ (Ut · #PE) / (Ut_lbl · #PE_lbl)` —
/// active work is conserved, so speedup is the ratio of active-PE-cycle
/// *rates*. Unlike [`eq3_predicted_speedup`] this reads the architectures'
/// real PE counts instead of assuming the paper's `pe_min + x` sizing, so
/// it stays correct for autotuned/retargeted architectures; it returns
/// `None` when the prediction is undefined (an idle or degenerate
/// baseline), instead of a division-by-zero artefact.
pub fn eq3_predicted_from_utilization(
    ut: f64,
    ut_lbl: f64,
    total_pes: usize,
    baseline_total_pes: usize,
) -> Option<f64> {
    if !ut_lbl.is_finite() || ut_lbl <= 0.0 || baseline_total_pes == 0 || total_pes == 0 {
        return None;
    }
    Some(ut * total_pes as f64 / (ut_lbl * baseline_total_pes as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Schedule, SetTime};
    use crate::sets::OfmSet;
    use cim_ir::{FeatureShape, NodeId, Rect};

    fn layer(pes: usize, durations: &[u64]) -> LayerSets {
        LayerSets {
            node: NodeId(0),
            name: "l".into(),
            logical: 0,
            ofm: FeatureShape::new(durations.len(), 1, 1),
            pes,
            quantum: 1,
            sets: durations
                .iter()
                .enumerate()
                .map(|(y, &d)| OfmSet {
                    rect: Rect::new(y, 0, y, 0),
                    duration: d,
                })
                .collect(),
        }
    }

    fn schedule_of(layers: &[LayerSets]) -> Schedule {
        crate::schedule::layer_by_layer_schedule(layers).unwrap()
    }

    #[test]
    fn eq2_hand_example() {
        // Layer A: 2 PEs × 10 cycles, layer B: 3 PEs × 5 cycles, sequential.
        let mut a = layer(2, &[10]);
        a.logical = 1;
        let mut b = layer(3, &[5]);
        b.logical = 2;
        let layers = vec![a, b];
        let s = schedule_of(&layers);
        assert_eq!(s.makespan, 15);
        let r = utilization(&layers, &s, 10).unwrap();
        assert_eq!(r.active_pe_cycles, 2 * 10 + 3 * 5);
        assert!((r.utilization - 35.0 / 150.0).abs() < 1e-12);
        assert_eq!(r.used_pes, 5);
    }

    #[test]
    fn idle_spare_pes_lower_utilization() {
        let layers = vec![layer(2, &[10])];
        let s = schedule_of(&layers);
        let tight = utilization(&layers, &s, 2).unwrap();
        let spare = utilization(&layers, &s, 4).unwrap();
        assert!((tight.utilization - 1.0).abs() < 1e-12);
        assert!((spare.utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn used_exceeding_total_rejected() {
        let layers = vec![layer(8, &[10])];
        let s = schedule_of(&layers);
        assert!(matches!(
            utilization(&layers, &s, 4),
            Err(CoreError::StageMismatch { .. })
        ));
    }

    #[test]
    fn speedup_basics() {
        assert!((speedup(100, 50).unwrap() - 2.0).abs() < 1e-12);
        assert!((speedup(100, 100).unwrap() - 1.0).abs() < 1e-12);
        assert!(speedup(100, 0).is_err());
        assert!(speedup(0, 100).is_err());
    }

    /// Eq. 3 holds exactly when the active work is invariant across
    /// configurations (same layers, same architecture work).
    #[test]
    fn eq3_exact_when_work_invariant() {
        let mut a = layer(2, &[6, 6]);
        a.logical = 1;
        let mut b = layer(1, &[4, 4]);
        b.logical = 2;
        let layers = vec![a, b];
        let pe_min = 3;

        let lbl = schedule_of(&layers);
        let ut_lbl = utilization(&layers, &lbl, pe_min).unwrap().utilization;

        // A hypothetical faster schedule with the same active cycles.
        let fast = Schedule::from_nested(
            vec![
                vec![
                    SetTime {
                        start: 0,
                        finish: 6,
                    },
                    SetTime {
                        start: 6,
                        finish: 12,
                    },
                ],
                vec![
                    SetTime {
                        start: 4,
                        finish: 8,
                    },
                    SetTime {
                        start: 8,
                        finish: 12,
                    },
                ],
            ],
            12,
        );
        let ut_fast = utilization(&layers, &fast, pe_min).unwrap().utilization;
        let s_measured = speedup(lbl.makespan, fast.makespan).unwrap();
        let s_predicted = eq3_predicted_speedup(ut_fast, ut_lbl, pe_min, 0);
        assert!(
            (s_measured - s_predicted).abs() < 1e-9,
            "measured {s_measured} vs Eq.3 {s_predicted}"
        );
    }

    #[test]
    fn eq3_from_totals_matches_paper_form_and_guards_degenerates() {
        // On the paper family (config on pe_min + x PEs, baseline on
        // pe_min) the two forms are bit-identical.
        let (ut, ut_lbl, pe_min, x) = (0.23, 0.041, 117usize, 32usize);
        let legacy = eq3_predicted_speedup(ut, ut_lbl, pe_min, x);
        let general = eq3_predicted_from_utilization(ut, ut_lbl, pe_min + x, pe_min).unwrap();
        assert_eq!(legacy.to_bits(), general.to_bits());
        // Degenerate baselines yield no prediction instead of inf/NaN.
        assert_eq!(eq3_predicted_from_utilization(0.5, 0.0, 10, 10), None);
        assert_eq!(eq3_predicted_from_utilization(0.5, f64::NAN, 10, 10), None);
        assert_eq!(eq3_predicted_from_utilization(0.5, 0.1, 0, 10), None);
        assert_eq!(eq3_predicted_from_utilization(0.5, 0.1, 10, 0), None);
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let layers = vec![layer(1, &[1])];
        let s = Schedule::from_nested(vec![], 0);
        assert!(matches!(
            utilization(&layers, &s, 1),
            Err(CoreError::StageMismatch { .. })
        ));
    }
}
