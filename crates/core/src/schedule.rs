//! Stages III & IV — intra-layer ordering and cross-layer scheduling
//! (Sec. IV-3/4 of the paper, Fig. 5c), plus the layer-by-layer baseline
//! (Sec. II-B).
//!
//! **Stage III** fixes the execution order of each layer's sets: the single
//! PE group holding the layer's weights processes its sets serially, top
//! band first (the orange *resource dependencies* of Fig. 5b).
//!
//! **Stage IV** then "ascertains the earliest feasible starting point for
//! computing each OFM set": a set starts once (a) its PE group has finished
//! the previous set of the same layer and (b) every producer set it depends
//! on (Stage II) has finished — optionally plus a NoC forwarding delay when
//! the data-movement extension is enabled. Because both the layer list and
//! each dependency point backwards in topological order, one forward sweep
//! computes the longest path exactly.
//!
//! The **layer-by-layer baseline** runs logical layers strictly one after
//! another (only one layer's PEs active at a time); duplicates created by
//! weight duplication share a logical id and run concurrently within their
//! layer's slot — reproducing the `wdup` configuration of the evaluation.

use cim_arch::{Architecture, Placement};
use serde::{Deserialize, Serialize};

use crate::deps::Dependencies;
use crate::error::{CoreError, Result};
use crate::sets::LayerSets;

/// Start/finish times of one scheduled set, in crossbar cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetTime {
    /// First cycle of execution.
    pub start: u64,
    /// One past the last cycle (`finish - start == duration`).
    pub finish: u64,
}

/// Cost model for cross-layer data-dependency edges.
#[derive(Debug, Clone, Default)]
pub enum EdgeCost {
    /// The paper's peak-performance assumption: forwarding partial results
    /// is free (Sec. V: "the costs associated with data movement have not
    /// been differentiated yet").
    #[default]
    Free,
    /// The Sec. V-C future-work extension: an edge from layer `p` to layer
    /// `c` costs the XY-routed hop count between their home tiles times the
    /// NoC hop latency.
    NocHops {
        /// The architecture providing the NoC geometry and hop latency.
        arch: Architecture,
        /// Placement of the PE groups, in the same layer order as Stage I.
        placement: Placement,
    },
    /// NoC hops plus GPEU processing: the forwarded set (one byte per OFM
    /// element) must additionally be chewed through the consumer tile's
    /// general-purpose execution unit (the non-base-layer work the paper's
    /// peak model treats as free).
    NocAndGpeu {
        /// The architecture providing NoC geometry and GPEU throughput.
        arch: Architecture,
        /// Placement of the PE groups, in the same layer order as Stage I.
        placement: Placement,
    },
}

impl EdgeCost {
    /// Latency in cycles added to a data dependency from layer `p` to
    /// layer `c` (indices in Stage-I order), forwarding `bytes` bytes of
    /// producer-set data.
    ///
    /// # Errors
    ///
    /// Propagates architecture errors when the placement and architecture
    /// disagree.
    pub fn cycles(&self, p: usize, c: usize, bytes: u64) -> Result<u64> {
        match self {
            EdgeCost::Free => Ok(0),
            EdgeCost::NocHops { arch, placement } => {
                let hops = placement.hops_between(arch, p, c)?;
                Ok(hops as u64 * arch.noc().hop_latency_cycles)
            }
            EdgeCost::NocAndGpeu { arch, placement } => {
                let hops = placement.hops_between(arch, p, c)?;
                let gpeu = bytes.div_ceil(arch.tile().gpeu_ops_per_cycle as u64);
                Ok(hops as u64 * arch.noc().hop_latency_cycles + gpeu)
            }
        }
    }
}

/// A complete schedule: per layer, per set, start and finish times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per layer, per set, the assigned execution window.
    pub times: Vec<Vec<SetTime>>,
    /// Total makespan in cycles (`t_NN` in Eq. 2).
    pub makespan: u64,
}

impl Schedule {
    /// Active cycles of layer `l`'s PE group (the sum of its set durations).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn active_cycles(&self, l: usize) -> u64 {
        self.times[l].iter().map(|t| t.finish - t.start).sum()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.times.len()
    }
}

/// Runs Stage IV: the CLSA-CIM cross-layer schedule.
///
/// `layers` and `deps` are the Stage I/II outputs; `edge_cost` selects the
/// data-movement model.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] when the stage outputs disagree and
/// propagates edge-cost errors.
///
/// # Examples
///
/// ```
/// use cim_arch::CrossbarSpec;
/// use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
/// use cim_mapping::{layer_costs, MappingOptions};
/// use clsa_core::{cross_layer_schedule, determine_dependencies, determine_sets, EdgeCost, SetPolicy};
///
/// # fn main() -> Result<(), clsa_core::CoreError> {
/// let mut g = Graph::new("t");
/// let x = g.add("input", Op::Input { shape: FeatureShape::new(10, 10, 3) }, &[])?;
/// let c1 = g.add("c1", Op::Conv2d(Conv2dAttrs {
///     out_channels: 8, kernel: (3, 3), stride: (1, 1),
///     padding: Padding::Valid, use_bias: false,
/// }), &[x])?;
/// g.add("c2", Op::Conv2d(Conv2dAttrs {
///     out_channels: 8, kernel: (3, 3), stride: (1, 1),
///     padding: Padding::Valid, use_bias: false,
/// }), &[c1])?;
/// let costs = layer_costs(&g, &CrossbarSpec::wan_nature_2022(), &MappingOptions::default())?;
/// let layers = determine_sets(&g, &costs, &SetPolicy::finest())?;
/// let deps = determine_dependencies(&g, &layers)?;
/// let schedule = cross_layer_schedule(&layers, &deps, &EdgeCost::Free)?;
/// // c2 overlaps c1 instead of waiting for it.
/// assert!(schedule.makespan < 64 + 36);
/// # Ok(())
/// # }
/// ```
pub fn cross_layer_schedule(
    layers: &[LayerSets],
    deps: &Dependencies,
    edge_cost: &EdgeCost,
) -> Result<Schedule> {
    if deps.num_layers() != layers.len() {
        return Err(CoreError::StageMismatch {
            detail: format!(
                "dependencies cover {} layers, sets cover {}",
                deps.num_layers(),
                layers.len()
            ),
        });
    }
    let mut times: Vec<Vec<SetTime>> = Vec::with_capacity(layers.len());
    let mut makespan = 0u64;
    for (li, layer) in layers.iter().enumerate() {
        let mut layer_times = Vec::with_capacity(layer.sets.len());
        let mut group_free = 0u64; // Stage III: the group runs its sets serially.
        for (si, set) in layer.sets.iter().enumerate() {
            let mut start = group_free;
            for dep in deps.of(li, si) {
                if dep.layer >= li {
                    return Err(CoreError::StageMismatch {
                        detail: format!(
                            "dependency {dep} of layer {li} is not topologically earlier"
                        ),
                    });
                }
                let dep_finish: u64 = times[dep.layer][dep.set].finish;
                let bytes = set_bytes(&layers[dep.layer], dep.set);
                let arrive = dep_finish + edge_cost.cycles(dep.layer, li, bytes)?;
                start = start.max(arrive);
            }
            let finish = start + set.duration;
            group_free = finish;
            makespan = makespan.max(finish);
            layer_times.push(SetTime { start, finish });
        }
        times.push(layer_times);
    }
    Ok(Schedule { times, makespan })
}

/// Bytes of one producer set: one byte per OFM element (8-bit activations).
pub fn set_bytes(layer: &LayerSets, set: usize) -> u64 {
    (layer.sets[set].rect.area() * layer.ofm.c) as u64
}

/// A batched schedule: `batch` back-to-back inferences pipelined through
/// the same weight-stationary groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchedSchedule {
    /// Per inference instance, the full schedule (same shape as
    /// [`Schedule::times`]).
    pub instances: Vec<Schedule>,
    /// Total makespan over all instances.
    pub makespan: u64,
}

impl BatchedSchedule {
    /// Steady-state throughput: cycles between consecutive inference
    /// completions, averaged over the batch.
    pub fn cycles_per_inference(&self) -> f64 {
        self.makespan as f64 / self.instances.len() as f64
    }
}

/// Extension beyond the paper: schedules `batch` consecutive inferences
/// with CLSA-CIM. Because weights are stationary, a PE group can start
/// instance `b+1`'s sets as soon as it finishes its own instance-`b` work —
/// the inter-instance constraint is purely the group chain, and data
/// dependencies stay within an instance.
///
/// The paper observes that single-inference utilization "usually remains
/// below 10 %"; pipelining inferences removes the fill/drain bubbles and
/// drives utilization toward the structural limit (the busiest group's
/// share of the work).
///
/// # Errors
///
/// Same conditions as [`cross_layer_schedule`], plus an error for a zero
/// batch size.
pub fn batched_cross_layer_schedule(
    layers: &[LayerSets],
    deps: &Dependencies,
    edge_cost: &EdgeCost,
    batch: usize,
) -> Result<BatchedSchedule> {
    if batch == 0 {
        return Err(CoreError::StageMismatch {
            detail: "batch must be at least 1".into(),
        });
    }
    if deps.num_layers() != layers.len() {
        return Err(CoreError::StageMismatch {
            detail: format!(
                "dependencies cover {} layers, sets cover {}",
                deps.num_layers(),
                layers.len()
            ),
        });
    }
    let mut group_free = vec![0u64; layers.len()];
    let mut instances = Vec::with_capacity(batch);
    let mut makespan = 0u64;
    for _ in 0..batch {
        let mut times: Vec<Vec<SetTime>> = Vec::with_capacity(layers.len());
        let mut instance_makespan = 0u64;
        for (li, layer) in layers.iter().enumerate() {
            let mut layer_times = Vec::with_capacity(layer.sets.len());
            for (si, set) in layer.sets.iter().enumerate() {
                let mut start = group_free[li];
                for dep in deps.of(li, si) {
                    if dep.layer >= li {
                        return Err(CoreError::StageMismatch {
                            detail: format!(
                                "dependency {dep} of layer {li} is not topologically earlier"
                            ),
                        });
                    }
                    let dep_finish = times[dep.layer][dep.set].finish;
                    let bytes = set_bytes(&layers[dep.layer], dep.set);
                    start = start.max(dep_finish + edge_cost.cycles(dep.layer, li, bytes)?);
                }
                let finish = start + set.duration;
                group_free[li] = finish;
                instance_makespan = instance_makespan.max(finish);
                layer_times.push(SetTime { start, finish });
            }
            times.push(layer_times);
        }
        makespan = makespan.max(instance_makespan);
        instances.push(Schedule {
            times,
            makespan: instance_makespan,
        });
    }
    Ok(BatchedSchedule {
        instances,
        makespan,
    })
}

/// Runs the layer-by-layer baseline (Sec. II-B): logical layers execute
/// strictly sequentially in topological order; duplicates of one logical
/// layer run concurrently within the layer's slot.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] for an empty layer list.
pub fn layer_by_layer_schedule(layers: &[LayerSets]) -> Result<Schedule> {
    if layers.is_empty() {
        return Err(CoreError::StageMismatch {
            detail: "no layers to schedule".into(),
        });
    }
    // Group consecutive-in-topo-order layers by logical id, preserving the
    // order of first appearance.
    let mut slot_of_logical: std::collections::HashMap<u32, usize> = Default::default();
    let mut slots: Vec<Vec<usize>> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        match slot_of_logical.get(&layer.logical) {
            Some(&s) => slots[s].push(li),
            None => {
                slot_of_logical.insert(layer.logical, slots.len());
                slots.push(vec![li]);
            }
        }
    }
    let mut times: Vec<Vec<SetTime>> = vec![Vec::new(); layers.len()];
    let mut t = 0u64;
    for slot in slots {
        let mut slot_end = t;
        for li in slot {
            let mut cursor = t;
            let mut layer_times = Vec::with_capacity(layers[li].sets.len());
            for set in &layers[li].sets {
                layer_times.push(SetTime {
                    start: cursor,
                    finish: cursor + set.duration,
                });
                cursor += set.duration;
            }
            times[li] = layer_times;
            slot_end = slot_end.max(cursor);
        }
        t = slot_end;
    }
    Ok(Schedule { times, makespan: t })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::deps::determine_dependencies;
    use crate::sets::{determine_sets, SetPolicy};

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    /// Two stacked 3×3/1 convs: 10×10 input → 8×8 → 6×6.
    fn two_convs() -> Graph {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap();
        g.add("c2", conv_op(8, 3, 1), &[c1]).unwrap();
        g
    }

    fn stages(g: &Graph, policy: &SetPolicy) -> (Vec<LayerSets>, Dependencies) {
        let costs = layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(g, &costs, policy).unwrap();
        let deps = determine_dependencies(g, &layers).unwrap();
        (layers, deps)
    }

    #[test]
    fn cross_layer_overlaps_consecutive_convs() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let xl = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let lbl = layer_by_layer_schedule(&layers).unwrap();
        // t_OFM: c1 = 64, c2 = 36 → baseline 100.
        assert_eq!(lbl.makespan, 100);
        // Cross-layer: c2 row r needs c1 rows r..=r+2; c2's last row starts
        // after c1 finishes (8·8 = 64) ... exact: c2 set r starts at
        // max(chain, c1 finish of set r+2 = 8·(r+3)); last set r=5 →
        // start 64, finish 70.
        assert_eq!(xl.makespan, 70);
        // Hand-check the first sets: c1 s0 [0,8), c2 s0 needs c1 s0..s2
        // (finish 24) → [24, 30).
        assert_eq!(
            xl.times[0][0],
            SetTime {
                start: 0,
                finish: 8
            }
        );
        assert_eq!(
            xl.times[1][0],
            SetTime {
                start: 24,
                finish: 30
            }
        );
    }

    #[test]
    fn chain_order_is_respected() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        for lt in &s.times {
            for w in lt.windows(2) {
                assert!(
                    w[0].finish <= w[1].start,
                    "sets of one group must not overlap"
                );
            }
        }
    }

    #[test]
    fn data_deps_are_respected() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        for (consumer, producer) in deps.edges() {
            assert!(
                s.times[producer.layer][producer.set].finish
                    <= s.times[consumer.layer][consumer.set].start,
                "{producer} must finish before {consumer} starts"
            );
        }
    }

    #[test]
    fn coarse_sets_degrade_to_layer_by_layer() {
        // With one set per OFM there is nothing to overlap on a chain.
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::coarse(1));
        let xl = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let lbl = layer_by_layer_schedule(&layers).unwrap();
        assert_eq!(xl.makespan, lbl.makespan);
    }

    #[test]
    fn cross_layer_never_slower_than_baseline() {
        let g = two_convs();
        for policy in [
            SetPolicy::finest(),
            SetPolicy::coarse(4),
            SetPolicy::coarse(2),
        ] {
            let (layers, deps) = stages(&g, &policy);
            let xl = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
            let lbl = layer_by_layer_schedule(&layers).unwrap();
            assert!(xl.makespan <= lbl.makespan, "policy {policy:?}");
        }
    }

    #[test]
    fn baseline_runs_duplicates_concurrently() {
        // Two layers with the same logical id share a slot; a third layer
        // with its own id runs after.
        use cim_ir::NodeId;
        let mk = |node: u32, logical: u32, rows: usize| LayerSets {
            node: NodeId(node),
            name: format!("l{node}"),
            logical,
            ofm: FeatureShape::new(rows, 4, 8),
            pes: 1,
            quantum: 1,
            sets: (0..rows)
                .map(|y| crate::sets::OfmSet {
                    rect: cim_ir::Rect::new(y, 0, y, 3),
                    duration: 4,
                })
                .collect(),
        };
        let layers = vec![mk(1, 1, 6), mk(2, 1, 5), mk(3, 3, 2)];
        let s = layer_by_layer_schedule(&layers).unwrap();
        // Slot 0: duplicates run 24 and 20 cycles concurrently → ends at 24.
        assert_eq!(s.times[0][0].start, 0);
        assert_eq!(s.times[1][0].start, 0);
        assert_eq!(s.times[2][0].start, 24);
        assert_eq!(s.makespan, 24 + 8);
    }

    #[test]
    fn noc_edge_cost_delays_consumers() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let free = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();

        // Place the two 1-PE groups on distinct tiles of a 2-tile arch with
        // a 5-cycle hop latency.
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 1,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(5)
            .pes(2)
            .build()
            .unwrap();
        let placement =
            cim_arch::place_groups(&arch, &[1, 1], cim_arch::PlacementStrategy::Contiguous)
                .unwrap();
        let costly =
            cross_layer_schedule(&layers, &deps, &EdgeCost::NocHops { arch, placement }).unwrap();
        assert!(costly.makespan > free.makespan);
        assert_eq!(
            costly.makespan,
            free.makespan + 5,
            "one hop on the critical tail"
        );
    }

    #[test]
    fn gpeu_edge_cost_charges_processing_time() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        // GPEU of 8 ops/cycle: a 1×8×8-byte producer set (c1 rows are 8
        // wide × 8 channels = 64 bytes) takes 8 extra cycles per edge.
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 4,
                gpeu_ops_per_cycle: 8,
                ..cim_arch::TileSpec::isaac_like()
            })
            .pes(2)
            .build()
            .unwrap();
        let placement =
            cim_arch::place_groups(&arch, &[1, 1], cim_arch::PlacementStrategy::Contiguous)
                .unwrap();
        let free = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let cost = EdgeCost::NocAndGpeu { arch, placement };
        assert_eq!(
            cost.cycles(0, 1, 64).unwrap(),
            8,
            "64 bytes / 8 ops per cycle"
        );
        let charged = cross_layer_schedule(&layers, &deps, &cost).unwrap();
        assert_eq!(
            charged.makespan,
            free.makespan + 8,
            "GPEU delay on the critical tail"
        );
        crate::validate::validate_schedule(&layers, &deps, &charged, &cost).unwrap();
    }

    #[test]
    fn schedule_active_cycles_match_work() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        assert_eq!(s.active_cycles(0), 64);
        assert_eq!(s.active_cycles(1), 36);
    }

    #[test]
    fn empty_layers_rejected_by_baseline() {
        assert!(layer_by_layer_schedule(&[]).is_err());
    }

    #[test]
    fn batched_schedule_pipelines_instances() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let single = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let batched = batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 4).unwrap();
        // Instance 0 equals the single-inference schedule.
        assert_eq!(batched.instances[0], single);
        // Pipelining: the batch finishes far sooner than 4 sequential runs.
        assert!(batched.makespan < 4 * single.makespan);
        // Steady state: each extra inference costs the bottleneck group's
        // work (c1: 64 cycles), not the full makespan (70).
        assert_eq!(batched.makespan, single.makespan + 3 * 64);
        assert!(batched.cycles_per_inference() < single.makespan as f64);
        // Per-instance validity: chain and deps hold inside each instance.
        for inst in &batched.instances {
            for lt in &inst.times {
                for w in lt.windows(2) {
                    assert!(w[0].finish <= w[1].start);
                }
            }
            for (consumer, producer) in deps.edges() {
                assert!(
                    inst.times[producer.layer][producer.set].finish
                        <= inst.times[consumer.layer][consumer.set].start
                );
            }
        }
        // Groups never overlap across instances either.
        for li in 0..layers.len() {
            for b in 1..batched.instances.len() {
                let prev_end = batched.instances[b - 1].times[li].last().unwrap().finish;
                let next_start = batched.instances[b].times[li].first().unwrap().start;
                assert!(
                    prev_end <= next_start,
                    "group {li} overlaps across instances"
                );
            }
        }
    }

    #[test]
    fn batched_utilization_approaches_structural_limit() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let single = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let batched = batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 32).unwrap();
        // Work per inference: c1 64 + c2 36 = 100 PE-cycles (1 PE each).
        let total_pes = 2u64;
        let ut_single = 100.0 / (total_pes * single.makespan) as f64;
        let ut_batched = (32 * 100) as f64 / (total_pes * batched.makespan) as f64;
        assert!(ut_batched > ut_single);
        // Structural limit: the bottleneck group (c1) is busy 64 of every
        // 64 cycles in steady state → utilization → (64+36)/(2·64) ≈ 0.78.
        assert!(
            ut_batched > 0.75,
            "steady-state utilization {ut_batched:.2}"
        );
        assert!(ut_batched < 0.79, "cannot beat the structural limit");
    }

    #[test]
    fn batched_rejects_zero_batch() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        assert!(batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 0).is_err());
    }

    #[test]
    fn mismatched_stage_outputs_rejected() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        assert!(matches!(
            cross_layer_schedule(&layers[..1], &deps, &EdgeCost::Free),
            Err(CoreError::StageMismatch { .. })
        ));
    }
}
