//! Stages III & IV — intra-layer ordering and cross-layer scheduling
//! (Sec. IV-3/4 of the paper, Fig. 5c), plus the layer-by-layer baseline
//! (Sec. II-B).
//!
//! **Stage III** fixes the execution order of each layer's sets: the single
//! PE group holding the layer's weights processes its sets serially, top
//! band first (the orange *resource dependencies* of Fig. 5b).
//!
//! **Stage IV** then "ascertains the earliest feasible starting point for
//! computing each OFM set": a set starts once (a) its PE group has finished
//! the previous set of the same layer and (b) every producer set it depends
//! on (Stage II) has finished — optionally plus a NoC forwarding delay when
//! the data-movement extension is enabled. Because both the layer list and
//! each dependency point backwards in topological order, one forward sweep
//! computes the longest path exactly.
//!
//! The sweep runs on flat arenas: schedules store one contiguous
//! `Vec<SetTime>` sliced by the global [`SetSpace`], and
//! all per-edge latencies come precomputed from a
//! [`CostedDeps`] table — the `*_costed` entry points
//! accept a prebuilt table so batch sweeps never recompute edge costs.
//!
//! The **layer-by-layer baseline** runs logical layers strictly one after
//! another (only one layer's PEs active at a time); duplicates created by
//! weight duplication share a logical id and run concurrently within their
//! layer's slot — reproducing the `wdup` configuration of the evaluation.

use cim_arch::{Architecture, Placement};
use serde::{Deserialize, Serialize, Value};

use crate::cost::CostedDeps;
use crate::deps::Dependencies;
use crate::error::{CoreError, Result};
use crate::sets::LayerSets;
use crate::space::SetSpace;

/// Start/finish times of one scheduled set, in crossbar cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetTime {
    /// First cycle of execution.
    pub start: u64,
    /// One past the last cycle (`finish - start == duration`).
    pub finish: u64,
}

/// Cost model for cross-layer data-dependency edges.
#[derive(Debug, Clone, Default)]
pub enum EdgeCost {
    /// The paper's peak-performance assumption: forwarding partial results
    /// is free (Sec. V: "the costs associated with data movement have not
    /// been differentiated yet").
    #[default]
    Free,
    /// The Sec. V-C future-work extension: an edge from layer `p` to layer
    /// `c` costs the XY-routed hop count between their home tiles times the
    /// NoC hop latency.
    NocHops {
        /// The architecture providing the NoC geometry and hop latency.
        arch: Architecture,
        /// Placement of the PE groups, in the same layer order as Stage I.
        placement: Placement,
    },
    /// NoC hops plus GPEU processing: the forwarded set (one byte per OFM
    /// element) must additionally be chewed through the consumer tile's
    /// general-purpose execution unit (the non-base-layer work the paper's
    /// peak model treats as free).
    NocAndGpeu {
        /// The architecture providing NoC geometry and GPEU throughput.
        arch: Architecture,
        /// Placement of the PE groups, in the same layer order as Stage I.
        placement: Placement,
    },
}

impl EdgeCost {
    /// Latency in cycles added to a data dependency from layer `p` to
    /// layer `c` (indices in Stage-I order), forwarding `bytes` bytes of
    /// producer-set data.
    ///
    /// Hot paths should not call this per edge: build a
    /// [`CostedDeps`] once instead and read the
    /// precomputed tables.
    ///
    /// # Errors
    ///
    /// Propagates architecture errors when the placement and architecture
    /// disagree.
    pub fn cycles(&self, p: usize, c: usize, bytes: u64) -> Result<u64> {
        match self {
            EdgeCost::Free => Ok(0),
            EdgeCost::NocHops { arch, placement } => {
                let hops = placement.hops_between(arch, p, c)?;
                Ok(hops as u64 * arch.noc().hop_latency_cycles)
            }
            EdgeCost::NocAndGpeu { arch, placement } => {
                let hops = placement.hops_between(arch, p, c)?;
                let gpeu = bytes.div_ceil(arch.tile().gpeu_ops_per_cycle as u64);
                Ok(hops as u64 * arch.noc().hop_latency_cycles + gpeu)
            }
        }
    }
}

/// A complete schedule: per layer, per set, start and finish times.
///
/// Stored as one flat `Vec<SetTime>` arena sliced by a [`SetSpace`] —
/// a single allocation per schedule regardless of layer count. The serde
/// wire format is unchanged from the pre-arena representation (a nested
/// `times` array plus `makespan`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The `(layer, set) → usize` space slicing the arena.
    space: SetSpace,
    /// All execution windows, layers concatenated in order.
    arena: Vec<SetTime>,
    /// Total makespan in cycles (`t_NN` in Eq. 2).
    pub makespan: u64,
}

impl Schedule {
    /// Assembles a schedule from a flat arena covering `space`.
    ///
    /// # Panics
    ///
    /// Panics if `arena.len() != space.total_sets()`.
    pub fn from_arena(space: SetSpace, arena: Vec<SetTime>, makespan: u64) -> Self {
        assert_eq!(
            arena.len(),
            space.total_sets(),
            "arena length must match the set space"
        );
        Self {
            space,
            arena,
            makespan,
        }
    }

    /// Assembles a schedule from the legacy nested per-layer shape — for
    /// tests and external tooling constructing schedules by hand.
    pub fn from_nested(times: Vec<Vec<SetTime>>, makespan: u64) -> Self {
        let counts: Vec<usize> = times.iter().map(Vec::len).collect();
        let space = SetSpace::from_counts(&counts);
        let arena: Vec<SetTime> = times.into_iter().flatten().collect();
        Self {
            space,
            arena,
            makespan,
        }
    }

    /// The nested per-layer shape (allocates; prefer [`layer`](Self::layer)
    /// or [`iter_layers`](Self::iter_layers) on hot paths).
    pub fn to_nested(&self) -> Vec<Vec<SetTime>> {
        (0..self.num_layers())
            .map(|l| self.layer(l).to_vec())
            .collect()
    }

    /// The execution windows of layer `l`, in set order.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[inline]
    pub fn layer(&self, l: usize) -> &[SetTime] {
        &self.arena[self.space.layer_range(l)]
    }

    /// Mutable view of layer `l`'s windows (for tooling that post-edits
    /// schedules; the validator catches inconsistent edits).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_mut(&mut self, l: usize) -> &mut [SetTime] {
        let r = self.space.layer_range(l);
        &mut self.arena[r]
    }

    /// The window of set `s` of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn time(&self, l: usize, s: usize) -> SetTime {
        self.arena[self.space.index(l, s)]
    }

    /// Mutable access to one window.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn time_mut(&mut self, l: usize, s: usize) -> &mut SetTime {
        &mut self.arena[self.space.index(l, s)]
    }

    /// Iterates the layers as window slices, in layer order.
    pub fn iter_layers(&self) -> impl ExactSizeIterator<Item = &[SetTime]> + '_ {
        (0..self.num_layers()).map(|l| self.layer(l))
    }

    /// The space slicing the arena.
    pub fn space(&self) -> &SetSpace {
        &self.space
    }

    /// The raw flat arena (layers concatenated in order).
    pub fn arena(&self) -> &[SetTime] {
        &self.arena
    }

    /// Active cycles of layer `l`'s PE group (the sum of its set durations).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn active_cycles(&self, l: usize) -> u64 {
        self.layer(l).iter().map(|t| t.finish - t.start).sum()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.space.num_layers()
    }
}

// Wire format compatibility: schedules serialize as the nested `times`
// array plus `makespan`, exactly as the pre-arena `Vec<Vec<SetTime>>`
// representation did.
impl Serialize for Schedule {
    fn to_value(&self) -> Value {
        let times: Vec<Value> = self
            .iter_layers()
            .map(|lt| Value::Seq(lt.iter().map(|t| t.to_value()).collect()))
            .collect();
        Value::Map(vec![
            ("times".to_string(), Value::Seq(times)),
            ("makespan".to_string(), self.makespan.to_value()),
        ])
    }
}

impl Deserialize for Schedule {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("Schedule: expected a map"))?;
        let times = Value::map_get(entries, "times")
            .ok_or_else(|| serde::Error::custom("Schedule: missing `times`"))?;
        let makespan = Value::map_get(entries, "makespan")
            .ok_or_else(|| serde::Error::custom("Schedule: missing `makespan`"))?;
        let nested: Vec<Vec<SetTime>> = Deserialize::from_value(times)?;
        Ok(Self::from_nested(nested, Deserialize::from_value(makespan)?))
    }
}

/// Runs Stage IV: the CLSA-CIM cross-layer schedule.
///
/// `layers` and `deps` are the Stage I/II outputs; `edge_cost` selects the
/// data-movement model. The edge costs are precomputed once (see
/// [`CostedDeps`]); callers scheduling the same `(mapping, EdgeCost)` pair
/// repeatedly should build the table themselves and call
/// [`cross_layer_schedule_costed`].
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] when the stage outputs disagree and
/// propagates edge-cost errors.
///
/// # Examples
///
/// ```
/// use cim_arch::CrossbarSpec;
/// use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
/// use cim_mapping::{layer_costs, MappingOptions};
/// use clsa_core::{cross_layer_schedule, determine_dependencies, determine_sets, EdgeCost, SetPolicy};
///
/// # fn main() -> Result<(), clsa_core::CoreError> {
/// let mut g = Graph::new("t");
/// let x = g.add("input", Op::Input { shape: FeatureShape::new(10, 10, 3) }, &[])?;
/// let c1 = g.add("c1", Op::Conv2d(Conv2dAttrs {
///     out_channels: 8, kernel: (3, 3), stride: (1, 1),
///     padding: Padding::Valid, use_bias: false,
/// }), &[x])?;
/// g.add("c2", Op::Conv2d(Conv2dAttrs {
///     out_channels: 8, kernel: (3, 3), stride: (1, 1),
///     padding: Padding::Valid, use_bias: false,
/// }), &[c1])?;
/// let costs = layer_costs(&g, &CrossbarSpec::wan_nature_2022(), &MappingOptions::default())?;
/// let layers = determine_sets(&g, &costs, &SetPolicy::finest())?;
/// let deps = determine_dependencies(&g, &layers)?;
/// let schedule = cross_layer_schedule(&layers, &deps, &EdgeCost::Free)?;
/// // c2 overlaps c1 instead of waiting for it.
/// assert!(schedule.makespan < 64 + 36);
/// # Ok(())
/// # }
/// ```
pub fn cross_layer_schedule(
    layers: &[LayerSets],
    deps: &Dependencies,
    edge_cost: &EdgeCost,
) -> Result<Schedule> {
    check_layer_count(layers, deps)?;
    // Freshly built from `deps` — no need to re-verify the table matches.
    let costed = CostedDeps::build_consumer_only(layers, deps, edge_cost)?;
    deps.ensure_backward()?;
    Ok(sweep_single(layers, &costed))
}

/// [`cross_layer_schedule`] on a prebuilt [`CostedDeps`] table: the hot
/// path for repeated scheduling of one `(mapping, EdgeCost)` pair.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] when the stage outputs disagree
/// (including dependencies that are not topologically backward).
pub fn cross_layer_schedule_costed(
    layers: &[LayerSets],
    deps: &Dependencies,
    costed: &CostedDeps,
) -> Result<Schedule> {
    check_shapes(layers, deps, costed)?;
    deps.ensure_backward()?;
    Ok(sweep_single(layers, costed))
}

/// The Stage IV longest-path sweep. Precondition (upheld by every public
/// caller): `costed` covers `layers` and its edges all point backward.
fn sweep_single(layers: &[LayerSets], costed: &CostedDeps) -> Schedule {
    let space = costed.space().clone();
    let total = space.total_sets();
    let mut arena: Vec<SetTime> = Vec::with_capacity(total);
    let mut makespan = 0u64;
    for (li, layer) in layers.iter().enumerate() {
        let mut group_free = 0u64; // Stage III: the group runs its sets serially.
        for (si, set) in layer.sets.iter().enumerate() {
            let i = space.index(li, si);
            let mut start = group_free;
            let (producers, latencies) = costed.incoming(i);
            for (&pi, &lat) in producers.iter().zip(latencies) {
                // Backward edges only (see precondition): `pi < i`,
                // already scheduled.
                let arrive = arena[pi].finish + lat;
                start = start.max(arrive);
            }
            let finish = start + set.duration;
            group_free = finish;
            makespan = makespan.max(finish);
            arena.push(SetTime { start, finish });
        }
    }
    Schedule::from_arena(space, arena, makespan)
}

/// Bytes of one producer set: one byte per OFM element (8-bit activations).
pub fn set_bytes(layer: &LayerSets, set: usize) -> u64 {
    (layer.sets[set].rect.area() * layer.ofm.c) as u64
}

/// A batched schedule: `batch` back-to-back inferences pipelined through
/// the same weight-stationary groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchedSchedule {
    /// Per inference instance, the full schedule (same shape as a
    /// single-inference [`Schedule`]).
    pub instances: Vec<Schedule>,
    /// Total makespan over all instances.
    pub makespan: u64,
}

impl BatchedSchedule {
    /// Steady-state throughput: cycles between consecutive inference
    /// completions, averaged over the batch.
    pub fn cycles_per_inference(&self) -> f64 {
        self.makespan as f64 / self.instances.len() as f64
    }
}

/// Extension beyond the paper: schedules `batch` consecutive inferences
/// with CLSA-CIM. Because weights are stationary, a PE group can start
/// instance `b+1`'s sets as soon as it finishes its own instance-`b` work —
/// the inter-instance constraint is purely the group chain, and data
/// dependencies stay within an instance.
///
/// The paper observes that single-inference utilization "usually remains
/// below 10 %"; pipelining inferences removes the fill/drain bubbles and
/// drives utilization toward the structural limit (the busiest group's
/// share of the work).
///
/// Edge costs are precomputed **once** for the whole batch (they are
/// invariant across instances); the former implementation recomputed them
/// per edge per instance — `O(batch × edges)` cost-model calls.
///
/// # Errors
///
/// Same conditions as [`cross_layer_schedule`], plus an error for a zero
/// batch size.
pub fn batched_cross_layer_schedule(
    layers: &[LayerSets],
    deps: &Dependencies,
    edge_cost: &EdgeCost,
    batch: usize,
) -> Result<BatchedSchedule> {
    check_batch(batch)?;
    check_layer_count(layers, deps)?;
    // Freshly built from `deps` — no need to re-verify the table matches.
    let costed = CostedDeps::build_consumer_only(layers, deps, edge_cost)?;
    deps.ensure_backward()?;
    Ok(sweep_batched(layers, &costed, batch))
}

/// [`batched_cross_layer_schedule`] on a prebuilt [`CostedDeps`] table.
///
/// The topological check runs once per call — not once per batch
/// instance — and the inner loop consumes only precomputed `u64` weights.
///
/// # Errors
///
/// Same conditions as [`cross_layer_schedule_costed`], plus an error for a
/// zero batch size.
pub fn batched_cross_layer_schedule_costed(
    layers: &[LayerSets],
    deps: &Dependencies,
    costed: &CostedDeps,
    batch: usize,
) -> Result<BatchedSchedule> {
    check_batch(batch)?;
    check_shapes(layers, deps, costed)?;
    deps.ensure_backward()?;
    Ok(sweep_batched(layers, costed, batch))
}

/// The batched Stage IV sweep. Same precondition as [`sweep_single`].
fn sweep_batched(layers: &[LayerSets], costed: &CostedDeps, batch: usize) -> BatchedSchedule {
    let space = costed.space();
    let total = space.total_sets();
    let mut group_free = vec![0u64; layers.len()];
    let mut instances = Vec::with_capacity(batch);
    let mut makespan = 0u64;
    for _ in 0..batch {
        let mut arena: Vec<SetTime> = Vec::with_capacity(total);
        let mut instance_makespan = 0u64;
        for (li, layer) in layers.iter().enumerate() {
            for (si, set) in layer.sets.iter().enumerate() {
                let i = space.index(li, si);
                let mut start = group_free[li];
                let (producers, latencies) = costed.incoming(i);
                for (&pi, &lat) in producers.iter().zip(latencies) {
                    start = start.max(arena[pi].finish + lat);
                }
                let finish = start + set.duration;
                group_free[li] = finish;
                instance_makespan = instance_makespan.max(finish);
                arena.push(SetTime { start, finish });
            }
        }
        makespan = makespan.max(instance_makespan);
        instances.push(Schedule::from_arena(
            space.clone(),
            arena,
            instance_makespan,
        ));
    }
    BatchedSchedule {
        instances,
        makespan,
    }
}

/// Errors on a zero batch size.
fn check_batch(batch: usize) -> Result<()> {
    if batch == 0 {
        return Err(CoreError::StageMismatch {
            detail: "batch must be at least 1".into(),
        });
    }
    Ok(())
}

/// Runs the layer-by-layer baseline (Sec. II-B): logical layers execute
/// strictly sequentially in topological order; duplicates of one logical
/// layer run concurrently within the layer's slot.
///
/// # Errors
///
/// Returns [`CoreError::StageMismatch`] for an empty layer list.
pub fn layer_by_layer_schedule(layers: &[LayerSets]) -> Result<Schedule> {
    if layers.is_empty() {
        return Err(CoreError::StageMismatch {
            detail: "no layers to schedule".into(),
        });
    }
    // Group consecutive-in-topo-order layers by logical id, preserving the
    // order of first appearance.
    let mut slot_of_logical: std::collections::BTreeMap<u32, usize> = Default::default();
    let mut slots: Vec<Vec<usize>> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        match slot_of_logical.get(&layer.logical) {
            Some(&s) => slots[s].push(li),
            None => {
                slot_of_logical.insert(layer.logical, slots.len());
                slots.push(vec![li]);
            }
        }
    }
    let space = SetSpace::of_layers(layers);
    let mut arena = vec![
        SetTime {
            start: 0,
            finish: 0
        };
        space.total_sets()
    ];
    let mut t = 0u64;
    for slot in slots {
        let mut slot_end = t;
        for li in slot {
            let mut cursor = t;
            for (si, set) in layers[li].sets.iter().enumerate() {
                arena[space.index(li, si)] = SetTime {
                    start: cursor,
                    finish: cursor + set.duration,
                };
                cursor += set.duration;
            }
            slot_end = slot_end.max(cursor);
        }
        t = slot_end;
    }
    Ok(Schedule::from_arena(space, arena, t))
}

/// Errors when `deps` covers a different layer count than `layers`.
fn check_layer_count(layers: &[LayerSets], deps: &Dependencies) -> Result<()> {
    if deps.num_layers() != layers.len() {
        return Err(CoreError::StageMismatch {
            detail: format!(
                "dependencies cover {} layers, sets cover {}",
                deps.num_layers(),
                layers.len()
            ),
        });
    }
    Ok(())
}

/// Errors when the three inputs of a costed scheduling call disagree.
fn check_shapes(layers: &[LayerSets], deps: &Dependencies, costed: &CostedDeps) -> Result<()> {
    check_layer_count(layers, deps)?;
    if !costed.matches(deps) {
        return Err(CoreError::StageMismatch {
            detail: "cost table was built from different dependencies".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
    use cim_mapping::{layer_costs, MappingOptions};

    use crate::deps::determine_dependencies;
    use crate::sets::{determine_sets, SetPolicy};

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    /// Two stacked 3×3/1 convs: 10×10 input → 8×8 → 6×6.
    fn two_convs() -> Graph {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(10, 10, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("c1", conv_op(8, 3, 1), &[x]).unwrap();
        g.add("c2", conv_op(8, 3, 1), &[c1]).unwrap();
        g
    }

    fn stages(g: &Graph, policy: &SetPolicy) -> (Vec<LayerSets>, Dependencies) {
        let costs = layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(g, &costs, policy).unwrap();
        let deps = determine_dependencies(g, &layers).unwrap();
        (layers, deps)
    }

    #[test]
    fn cross_layer_overlaps_consecutive_convs() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let xl = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let lbl = layer_by_layer_schedule(&layers).unwrap();
        // t_OFM: c1 = 64, c2 = 36 → baseline 100.
        assert_eq!(lbl.makespan, 100);
        // Cross-layer: c2 row r needs c1 rows r..=r+2; c2's last row starts
        // after c1 finishes (8·8 = 64) ... exact: c2 set r starts at
        // max(chain, c1 finish of set r+2 = 8·(r+3)); last set r=5 →
        // start 64, finish 70.
        assert_eq!(xl.makespan, 70);
        // Hand-check the first sets: c1 s0 [0,8), c2 s0 needs c1 s0..s2
        // (finish 24) → [24, 30).
        assert_eq!(
            xl.time(0, 0),
            SetTime {
                start: 0,
                finish: 8
            }
        );
        assert_eq!(
            xl.time(1, 0),
            SetTime {
                start: 24,
                finish: 30
            }
        );
    }

    #[test]
    fn chain_order_is_respected() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        for lt in s.iter_layers() {
            for w in lt.windows(2) {
                assert!(
                    w[0].finish <= w[1].start,
                    "sets of one group must not overlap"
                );
            }
        }
    }

    #[test]
    fn data_deps_are_respected() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        for (consumer, producer) in deps.edges() {
            assert!(
                s.time(producer.layer, producer.set).finish
                    <= s.time(consumer.layer, consumer.set).start,
                "{producer} must finish before {consumer} starts"
            );
        }
    }

    #[test]
    fn coarse_sets_degrade_to_layer_by_layer() {
        // With one set per OFM there is nothing to overlap on a chain.
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::coarse(1));
        let xl = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let lbl = layer_by_layer_schedule(&layers).unwrap();
        assert_eq!(xl.makespan, lbl.makespan);
    }

    #[test]
    fn cross_layer_never_slower_than_baseline() {
        let g = two_convs();
        for policy in [
            SetPolicy::finest(),
            SetPolicy::coarse(4),
            SetPolicy::coarse(2),
        ] {
            let (layers, deps) = stages(&g, &policy);
            let xl = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
            let lbl = layer_by_layer_schedule(&layers).unwrap();
            assert!(xl.makespan <= lbl.makespan, "policy {policy:?}");
        }
    }

    #[test]
    fn baseline_runs_duplicates_concurrently() {
        // Two layers with the same logical id share a slot; a third layer
        // with its own id runs after.
        use cim_ir::NodeId;
        let mk = |node: u32, logical: u32, rows: usize| LayerSets {
            node: NodeId(node),
            name: format!("l{node}"),
            logical,
            ofm: FeatureShape::new(rows, 4, 8),
            pes: 1,
            quantum: 1,
            sets: (0..rows)
                .map(|y| crate::sets::OfmSet {
                    rect: cim_ir::Rect::new(y, 0, y, 3),
                    duration: 4,
                })
                .collect(),
        };
        let layers = vec![mk(1, 1, 6), mk(2, 1, 5), mk(3, 3, 2)];
        let s = layer_by_layer_schedule(&layers).unwrap();
        // Slot 0: duplicates run 24 and 20 cycles concurrently → ends at 24.
        assert_eq!(s.time(0, 0).start, 0);
        assert_eq!(s.time(1, 0).start, 0);
        assert_eq!(s.time(2, 0).start, 24);
        assert_eq!(s.makespan, 24 + 8);
    }

    #[test]
    fn noc_edge_cost_delays_consumers() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let free = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();

        // Place the two 1-PE groups on distinct tiles of a 2-tile arch with
        // a 5-cycle hop latency.
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 1,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(5)
            .pes(2)
            .build()
            .unwrap();
        let placement =
            cim_arch::place_groups(&arch, &[1, 1], cim_arch::PlacementStrategy::Contiguous)
                .unwrap();
        let costly =
            cross_layer_schedule(&layers, &deps, &EdgeCost::NocHops { arch, placement }).unwrap();
        assert!(costly.makespan > free.makespan);
        assert_eq!(
            costly.makespan,
            free.makespan + 5,
            "one hop on the critical tail"
        );
    }

    #[test]
    fn gpeu_edge_cost_charges_processing_time() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        // GPEU of 8 ops/cycle: a 1×8×8-byte producer set (c1 rows are 8
        // wide × 8 channels = 64 bytes) takes 8 extra cycles per edge.
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 4,
                gpeu_ops_per_cycle: 8,
                ..cim_arch::TileSpec::isaac_like()
            })
            .pes(2)
            .build()
            .unwrap();
        let placement =
            cim_arch::place_groups(&arch, &[1, 1], cim_arch::PlacementStrategy::Contiguous)
                .unwrap();
        let free = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let cost = EdgeCost::NocAndGpeu { arch, placement };
        assert_eq!(
            cost.cycles(0, 1, 64).unwrap(),
            8,
            "64 bytes / 8 ops per cycle"
        );
        let charged = cross_layer_schedule(&layers, &deps, &cost).unwrap();
        assert_eq!(
            charged.makespan,
            free.makespan + 8,
            "GPEU delay on the critical tail"
        );
        crate::validate::validate_schedule(&layers, &deps, &charged, &cost).unwrap();
    }

    #[test]
    fn costed_entry_points_match_the_wrappers() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 1,
                gpeu_ops_per_cycle: 16,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(3)
            .pes(2)
            .build()
            .unwrap();
        let placement =
            cim_arch::place_groups(&arch, &[1, 1], cim_arch::PlacementStrategy::Contiguous)
                .unwrap();
        let cost = EdgeCost::NocAndGpeu { arch, placement };
        let costed = CostedDeps::build(&layers, &deps, &cost).unwrap();
        assert_eq!(
            cross_layer_schedule_costed(&layers, &deps, &costed).unwrap(),
            cross_layer_schedule(&layers, &deps, &cost).unwrap()
        );
        assert_eq!(
            batched_cross_layer_schedule_costed(&layers, &deps, &costed, 5).unwrap(),
            batched_cross_layer_schedule(&layers, &deps, &cost, 5).unwrap()
        );
    }

    #[test]
    fn costed_shape_mismatch_rejected() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let (coarse_layers, coarse_deps) = stages(&g, &SetPolicy::coarse(1));
        let costed = CostedDeps::free(&coarse_layers, &coarse_deps).unwrap();
        assert!(matches!(
            cross_layer_schedule_costed(&layers, &deps, &costed),
            Err(CoreError::StageMismatch { .. })
        ));
    }

    #[test]
    fn schedule_active_cycles_match_work() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        assert_eq!(s.active_cycles(0), 64);
        assert_eq!(s.active_cycles(1), 36);
    }

    #[test]
    fn schedule_serde_keeps_the_nested_wire_format() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.starts_with("{\"times\":[["), "{json}");
        assert!(json.contains("\"makespan\":70"), "{json}");
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_round_trip_preserves_shape() {
        let nested = vec![
            vec![
                SetTime {
                    start: 0,
                    finish: 4
                },
                SetTime {
                    start: 4,
                    finish: 8
                },
            ],
            vec![SetTime {
                start: 8,
                finish: 12
            }],
        ];
        let s = Schedule::from_nested(nested.clone(), 12);
        assert_eq!(s.to_nested(), nested);
        assert_eq!(s.layer(0).len(), 2);
        assert_eq!(s.layer(1).len(), 1);
        assert_eq!(s.time(1, 0).finish, 12);
    }

    #[test]
    fn empty_layers_rejected_by_baseline() {
        assert!(layer_by_layer_schedule(&[]).is_err());
    }

    #[test]
    fn batched_schedule_pipelines_instances() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let single = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let batched = batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 4).unwrap();
        // Instance 0 equals the single-inference schedule.
        assert_eq!(batched.instances[0], single);
        // Pipelining: the batch finishes far sooner than 4 sequential runs.
        assert!(batched.makespan < 4 * single.makespan);
        // Steady state: each extra inference costs the bottleneck group's
        // work (c1: 64 cycles), not the full makespan (70).
        assert_eq!(batched.makespan, single.makespan + 3 * 64);
        assert!(batched.cycles_per_inference() < single.makespan as f64);
        // Per-instance validity: chain and deps hold inside each instance.
        for inst in &batched.instances {
            for lt in inst.iter_layers() {
                for w in lt.windows(2) {
                    assert!(w[0].finish <= w[1].start);
                }
            }
            for (consumer, producer) in deps.edges() {
                assert!(
                    inst.time(producer.layer, producer.set).finish
                        <= inst.time(consumer.layer, consumer.set).start
                );
            }
        }
        // Groups never overlap across instances either.
        for li in 0..layers.len() {
            for b in 1..batched.instances.len() {
                let prev_end = batched.instances[b - 1].layer(li).last().unwrap().finish;
                let next_start = batched.instances[b].layer(li).first().unwrap().start;
                assert!(
                    prev_end <= next_start,
                    "group {li} overlaps across instances"
                );
            }
        }
    }

    #[test]
    fn batched_utilization_approaches_structural_limit() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let single = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        let batched = batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 32).unwrap();
        // Work per inference: c1 64 + c2 36 = 100 PE-cycles (1 PE each).
        let total_pes = 2u64;
        let ut_single = 100.0 / (total_pes * single.makespan) as f64;
        let ut_batched = (32 * 100) as f64 / (total_pes * batched.makespan) as f64;
        assert!(ut_batched > ut_single);
        // Structural limit: the bottleneck group (c1) is busy 64 of every
        // 64 cycles in steady state → utilization → (64+36)/(2·64) ≈ 0.78.
        assert!(
            ut_batched > 0.75,
            "steady-state utilization {ut_batched:.2}"
        );
        assert!(ut_batched < 0.79, "cannot beat the structural limit");
    }

    #[test]
    fn batched_rejects_zero_batch() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        assert!(batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 0).is_err());
    }

    #[test]
    fn mismatched_stage_outputs_rejected() {
        let g = two_convs();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        assert!(matches!(
            cross_layer_schedule(&layers[..1], &deps, &EdgeCost::Free),
            Err(CoreError::StageMismatch { .. })
        ));
    }

    #[test]
    fn forward_dependency_rejected_once_per_call() {
        let g = two_convs();
        let (layers, _) = stages(&g, &SetPolicy::finest());
        let sets_per: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
        let deps = Dependencies::from_edges(
            &sets_per,
            &[(
                crate::deps::SetRef { layer: 0, set: 0 },
                crate::deps::SetRef { layer: 1, set: 0 },
            )],
        )
        .unwrap();
        let err = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap_err();
        assert!(
            err.to_string().contains("not topologically earlier"),
            "{err}"
        );
        assert!(batched_cross_layer_schedule(&layers, &deps, &EdgeCost::Free, 4).is_err());
    }
}
