//! Precomputed per-edge cost tables ([`CostedDeps`]).
//!
//! The Stage III/IV longest-path sweep, the schedule validator, and the
//! `cim-sim` event engine all charge every cross-layer data edge a latency
//! from the [`EdgeCost`] model. That latency is **invariant per `(mapping,
//! EdgeCost)` pair** — it depends only on the producer/consumer layer
//! placement and the producer set's byte count, never on the schedule
//! being built — yet the pre-CSR code recomputed it (`hops_between` +
//! `set_bytes` + the model branch) for every edge of every batch instance:
//! `O(batch × edges)` redundant work in the hottest loop of every sweep.
//!
//! [`CostedDeps::build`] hoists all of it: one pass over the CSR edge
//! arena yields flat `u64` latency tables on both the consumer side (for
//! the forward longest-path sweep and the validator) and the producer
//! side (a fan-out CSR for the event engine), plus per-set byte counts and
//! per-edge hop counts for traffic/energy accounting. The [`EdgeCost::Free`]
//! model degenerates to branch-free all-zeros tables. The consumers of the
//! tables never touch [`EdgeCost`] again.

use serde::{Deserialize, Serialize};

use crate::deps::{Dependencies, SetRef};
use crate::error::{CoreError, Result};
use crate::schedule::{set_bytes, EdgeCost};
use crate::sets::LayerSets;
use crate::space::SetSpace;

/// Flat, precomputed edge-cost tables for one `(mapping, EdgeCost)` pair.
///
/// Indexing follows the [`SetSpace`] of the [`Dependencies`] it was built
/// from; the consumer-side arrays (`dep_*`) are aligned edge-for-edge with
/// [`Dependencies::of`] / [`Dependencies::csr`], the producer-side arrays
/// (`out_*`) form an independent fan-out CSR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostedDeps {
    space: SetSpace,
    /// Bytes forwarded when the set with global index `i` is consumed
    /// (one byte per OFM element, 8-bit activations).
    bytes: Vec<u64>,
    /// Consumer-side CSR offsets (a copy of the dependency offsets, so the
    /// tables stay usable without the originating `Dependencies`).
    dep_offsets: Vec<usize>,
    /// Per consumer edge: the producer's global set index.
    dep_producer: Vec<usize>,
    /// Per consumer edge: precomputed latency in cycles.
    dep_latency: Vec<u64>,
    /// Fan-out CSR offsets, per producer global index.
    out_offsets: Vec<usize>,
    /// Per fan-out edge: the consumer set.
    out_consumers: Vec<SetRef>,
    /// Per fan-out edge: precomputed latency in cycles.
    out_latency: Vec<u64>,
    /// Per fan-out edge: NoC hop count (energy accounting).
    out_hops: Vec<u64>,
    /// Whether the producer-side fan-out CSR was materialized (the
    /// forward schedulers and the validator only read the consumer side;
    /// the event engine needs the fan-out).
    has_fanout: bool,
    /// Whether the cost model moves data over the NoC (energy/transfer
    /// accounting applies — false for [`EdgeCost::Free`]).
    tracks_transfers: bool,
}

impl CostedDeps {
    /// Precomputes every edge latency of `deps` under `edge_cost`.
    ///
    /// Runs once per `(mapping, EdgeCost)` pair; the result serves any
    /// number of schedule constructions, validations, and simulations.
    /// Topological sanity of the edges is deliberately **not** checked
    /// here (the event engine legitimately consumes cyclic inputs to
    /// detect deadlocks); the analytic schedulers run
    /// [`Dependencies::ensure_backward`] themselves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StageMismatch`] when `layers` and `deps` cover
    /// different shapes, and propagates architecture errors from the cost
    /// model (placement/architecture disagreement).
    pub fn build(
        layers: &[LayerSets],
        deps: &Dependencies,
        edge_cost: &EdgeCost,
    ) -> Result<Self> {
        Self::build_inner(layers, deps, edge_cost, true)
    }

    /// [`build`](Self::build) without the producer-side fan-out CSR — for
    /// the one-shot forward schedulers and the validator, which only walk
    /// the consumer side (skips one counting-sort pass and three edge
    /// arrays). [`outgoing`](Self::outgoing) panics on such a table.
    pub(crate) fn build_consumer_only(
        layers: &[LayerSets],
        deps: &Dependencies,
        edge_cost: &EdgeCost,
    ) -> Result<Self> {
        Self::build_inner(layers, deps, edge_cost, false)
    }

    fn build_inner(
        layers: &[LayerSets],
        deps: &Dependencies,
        edge_cost: &EdgeCost,
        with_fanout: bool,
    ) -> Result<Self> {
        let space = SetSpace::of_layers(layers);
        if !space.same_shape(deps.space()) {
            return Err(CoreError::StageMismatch {
                detail: format!(
                    "dependencies cover {} layers, sets cover {}",
                    deps.num_layers(),
                    layers.len()
                ),
            });
        }
        let total = space.total_sets();

        // Per-set forwarding bytes (mapping-invariant).
        let mut bytes = Vec::with_capacity(total);
        for l in layers {
            for s in 0..l.sets.len() {
                bytes.push(set_bytes(l, s));
            }
        }

        // Consumer-side tables, aligned with the dependency CSR.
        let (offsets, producers) = deps.csr();
        let dep_offsets = offsets.to_vec();
        let mut dep_producer = Vec::with_capacity(producers.len());
        let mut dep_latency = Vec::with_capacity(producers.len());
        let mut dep_hops = vec![0u64; producers.len()];
        match edge_cost {
            // Branch-free all-zeros tables: the paper's peak model.
            EdgeCost::Free => {
                for p in producers {
                    dep_producer.push(space.index(p.layer, p.set));
                }
                dep_latency.resize(producers.len(), 0);
            }
            EdgeCost::NocHops { arch, placement } | EdgeCost::NocAndGpeu { arch, placement } => {
                let hop_latency = arch.noc().hop_latency_cycles;
                let gpeu = match edge_cost {
                    EdgeCost::NocAndGpeu { .. } => Some(arch.tile().gpeu_ops_per_cycle as u64),
                    _ => None,
                };
                // Walk consumers in arena order so each edge knows its
                // consumer layer without searching the offset table.
                let mut k = 0usize;
                for c_layer in 0..space.num_layers() {
                    for s in 0..space.sets_in(c_layer) {
                        let i = space.index(c_layer, s);
                        for p in &producers[offsets[i]..offsets[i + 1]] {
                            let pi = space.index(p.layer, p.set);
                            let hops = placement.hops_between(arch, p.layer, c_layer)? as u64;
                            let mut lat = hops * hop_latency;
                            if let Some(g) = gpeu {
                                lat += bytes[pi].div_ceil(g);
                            }
                            dep_producer.push(pi);
                            dep_latency.push(lat);
                            dep_hops[k] = hops;
                            k += 1;
                        }
                    }
                }
            }
        }

        // Producer-side fan-out CSR (counting sort by producer index),
        // materialized only when the caller needs the producer view.
        let (out_offsets, out_consumers, out_latency, out_hops) = if with_fanout {
            let mut counts = vec![0usize; total + 1];
            for &pi in &dep_producer {
                counts[pi + 1] += 1;
            }
            for i in 0..total {
                counts[i + 1] += counts[i];
            }
            let out_offsets = counts.clone();
            let mut cursor = counts;
            let mut out_consumers = vec![SetRef { layer: 0, set: 0 }; dep_producer.len()];
            let mut out_latency = vec![0u64; dep_producer.len()];
            let mut out_hops = vec![0u64; dep_producer.len()];
            for l in 0..space.num_layers() {
                for s in 0..space.sets_in(l) {
                    let i = space.index(l, s);
                    for k in dep_offsets[i]..dep_offsets[i + 1] {
                        let slot = cursor[dep_producer[k]];
                        cursor[dep_producer[k]] += 1;
                        out_consumers[slot] = SetRef { layer: l, set: s };
                        out_latency[slot] = dep_latency[k];
                        out_hops[slot] = dep_hops[k];
                    }
                }
            }
            (out_offsets, out_consumers, out_latency, out_hops)
        } else {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        };

        Ok(Self {
            space,
            bytes,
            dep_offsets,
            dep_producer,
            dep_latency,
            out_offsets,
            out_consumers,
            out_latency,
            out_hops,
            has_fanout: with_fanout,
            tracks_transfers: !matches!(edge_cost, EdgeCost::Free),
        })
    }

    /// The zero-cost table for the paper's peak-performance model —
    /// equivalent to `build(layers, deps, &EdgeCost::Free)` but spelled
    /// out as the infallible fast path `prepare` caches.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StageMismatch`] when `layers` and `deps` cover
    /// different shapes.
    pub fn free(layers: &[LayerSets], deps: &Dependencies) -> Result<Self> {
        Self::build(layers, deps, &EdgeCost::Free)
    }

    /// The global index space the tables are sliced by.
    pub fn space(&self) -> &SetSpace {
        &self.space
    }

    /// Bytes forwarded per consumption of set `s` of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn set_bytes(&self, l: usize, s: usize) -> u64 {
        self.bytes[self.space.index(l, s)]
    }

    /// Consumer-side view of the set with global index `i`: per incoming
    /// edge, the producer's global index and the precomputed latency
    /// (aligned with [`Dependencies::of`] of the originating relation).
    #[inline]
    pub fn incoming(&self, i: usize) -> (&[usize], &[u64]) {
        let r = self.dep_offsets[i]..self.dep_offsets[i + 1];
        (&self.dep_producer[r.clone()], &self.dep_latency[r])
    }

    /// Latencies of the edges into set `s` of layer `l`, aligned with
    /// [`Dependencies::of`].
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn latencies_of(&self, l: usize, s: usize) -> &[u64] {
        let i = self.space.index(l, s);
        &self.dep_latency[self.dep_offsets[i]..self.dep_offsets[i + 1]]
    }

    /// Whether the producer-side fan-out CSR was materialized (true for
    /// [`build`](Self::build); the event engine requires it).
    pub fn has_fanout(&self) -> bool {
        self.has_fanout
    }

    /// Whether this table was built from exactly `deps` — same set space
    /// *and* the same edge arena (offsets and producers). The schedulers,
    /// the validator, and the event engine refuse mismatched tables: a
    /// same-shaped table from different edges would silently skip or
    /// mis-weight dependency checks. O(edges) slice comparisons — the
    /// same order as the topological precondition check.
    pub fn matches(&self, deps: &Dependencies) -> bool {
        if !self.space.same_shape(deps.space()) {
            return false;
        }
        let (offsets, producers) = deps.csr();
        self.dep_offsets == offsets
            && self.dep_producer.len() == producers.len()
            && self
                .dep_producer
                .iter()
                .zip(producers)
                .all(|(&pi, p)| pi == self.space.index(p.layer, p.set))
    }

    /// Producer-side view of the set with global index `i`: the consumer
    /// sets it feeds, with per-edge latency and hop count.
    ///
    /// # Panics
    ///
    /// Panics on a consumer-only table (see [`has_fanout`](Self::has_fanout)).
    #[inline]
    pub fn outgoing(&self, i: usize) -> (&[SetRef], &[u64], &[u64]) {
        assert!(
            self.has_fanout,
            "outgoing() requires a table built with the fan-out CSR"
        );
        let r = self.out_offsets[i]..self.out_offsets[i + 1];
        (
            &self.out_consumers[r.clone()],
            &self.out_latency[r.clone()],
            &self.out_hops[r],
        )
    }

    /// Whether the underlying model moves data over the NoC (false for
    /// [`EdgeCost::Free`] — no traffic, no transfer energy).
    pub fn tracks_transfers(&self) -> bool {
        self.tracks_transfers
    }

    /// Total number of edges covered.
    pub fn num_edges(&self) -> usize {
        self.dep_latency.len()
    }

    /// Total bytes forwarded over all cross-layer dependency edges per
    /// inference — each edge charges its producer set's byte count, so a
    /// set feeding `k` consumers contributes `k × bytes`. This is the
    /// mapping's NoC traffic volume, one of the tuner's Pareto axes; it
    /// is independent of the edge-cost *model* (the byte table is the
    /// same for [`EdgeCost::Free`] and the NoC models over one mapping).
    pub fn total_dep_bytes(&self) -> u64 {
        self.dep_producer.iter().map(|&pi| self.bytes[pi]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::{place_groups, Architecture, PlacementStrategy, TileSpec};
    use cim_ir::{FeatureShape, NodeId, Rect};

    use crate::sets::OfmSet;

    fn layer(nsets: usize, width: usize, pes: usize) -> LayerSets {
        LayerSets {
            node: NodeId(0),
            name: format!("l{nsets}x{width}"),
            logical: 0,
            ofm: FeatureShape::new(nsets, width, 1),
            pes,
            quantum: 1,
            sets: (0..nsets)
                .map(|y| OfmSet {
                    rect: Rect::new(y, 0, y, width - 1),
                    duration: width as u64,
                })
                .collect(),
        }
    }

    fn workload() -> (Vec<LayerSets>, Dependencies) {
        let layers = vec![layer(2, 4, 1), layer(2, 8, 1)];
        let deps = Dependencies::from_edges(
            &[2, 2],
            &[
                (SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 0 }),
                (SetRef { layer: 1, set: 1 }, SetRef { layer: 0, set: 0 }),
                (SetRef { layer: 1, set: 1 }, SetRef { layer: 0, set: 1 }),
            ],
        )
        .unwrap();
        (layers, deps)
    }

    #[test]
    fn free_model_is_all_zeros() {
        let (layers, deps) = workload();
        let c = CostedDeps::free(&layers, &deps).unwrap();
        assert_eq!(c.num_edges(), 3);
        assert!(!c.tracks_transfers());
        for l in 0..2 {
            for s in 0..2 {
                assert!(c.latencies_of(l, s).iter().all(|&x| x == 0));
            }
        }
        // Byte table: one byte per OFM element.
        assert_eq!(c.set_bytes(0, 0), 4);
        assert_eq!(c.set_bytes(1, 1), 8);
        // Edge traffic: (0,0) feeds two consumers, (0,1) one → 2·4 + 4.
        assert_eq!(c.total_dep_bytes(), 12);
    }

    #[test]
    fn latencies_match_the_edge_cost_model() {
        let (layers, deps) = workload();
        let arch = Architecture::builder()
            .tile(TileSpec {
                pes_per_tile: 1,
                gpeu_ops_per_cycle: 2,
                ..TileSpec::isaac_like()
            })
            .noc_hop_latency(5)
            .pes(2)
            .build()
            .unwrap();
        let placement = place_groups(&arch, &[1, 1], PlacementStrategy::Contiguous).unwrap();
        let cost = EdgeCost::NocAndGpeu { arch, placement };
        let c = CostedDeps::build(&layers, &deps, &cost).unwrap();
        assert!(c.tracks_transfers());
        // Every edge goes layer 0 → layer 1: hops(0,1) × 5 + 4 bytes / 2.
        let expect = cost.cycles(0, 1, 4).unwrap();
        for (k, &lat) in c.latencies_of(1, 0).iter().enumerate() {
            assert_eq!(lat, expect, "edge {k}");
        }
        for (si, want) in deps.of(1, 1).iter().zip(c.latencies_of(1, 1)) {
            let bytes = set_bytes(&layers[si.layer], si.set);
            assert_eq!(*want, cost.cycles(si.layer, 1, bytes).unwrap());
        }
    }

    #[test]
    fn fanout_mirrors_the_consumer_side() {
        let (layers, deps) = workload();
        let c = CostedDeps::free(&layers, &deps).unwrap();
        // Set (0,0) feeds (1,0) and (1,1); set (0,1) feeds (1,1).
        let (consumers, lat, hops) = c.outgoing(c.space().index(0, 0));
        assert_eq!(
            consumers,
            &[SetRef { layer: 1, set: 0 }, SetRef { layer: 1, set: 1 }]
        );
        assert_eq!(lat, &[0, 0]);
        assert_eq!(hops, &[0, 0]);
        let (consumers, _, _) = c.outgoing(c.space().index(0, 1));
        assert_eq!(consumers, &[SetRef { layer: 1, set: 1 }]);
        // Consumers have no fan-out.
        assert!(c.outgoing(c.space().index(1, 0)).0.is_empty());
        // Totals agree across both views.
        let total_out: usize = (0..c.space().total_sets())
            .map(|i| c.outgoing(i).0.len())
            .sum();
        assert_eq!(total_out, c.num_edges());
    }

    #[test]
    fn consumer_only_tables_skip_the_fanout() {
        let (layers, deps) = workload();
        let full = CostedDeps::build(&layers, &deps, &EdgeCost::Free).unwrap();
        let lean = CostedDeps::build_consumer_only(&layers, &deps, &EdgeCost::Free).unwrap();
        assert!(full.has_fanout());
        assert!(!lean.has_fanout());
        // Consumer sides are identical.
        for l in 0..2 {
            for s in 0..2 {
                assert_eq!(lean.latencies_of(l, s), full.latencies_of(l, s));
                assert_eq!(lean.set_bytes(l, s), full.set_bytes(l, s));
            }
        }
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn outgoing_panics_on_consumer_only_tables() {
        let (layers, deps) = workload();
        let lean = CostedDeps::build_consumer_only(&layers, &deps, &EdgeCost::Free).unwrap();
        let _ = lean.outgoing(0);
    }

    #[test]
    fn matches_detects_same_shaped_but_different_edges() {
        let (layers, deps) = workload();
        let costed = CostedDeps::free(&layers, &deps).unwrap();
        assert!(costed.matches(&deps));
        // Same per-layer set counts, different edge set: must not match —
        // a zip over mismatched arenas would silently skip or mis-weight
        // dependency checks downstream.
        let other = Dependencies::from_edges(
            &[2, 2],
            &[(SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 1 })],
        )
        .unwrap();
        assert!(!costed.matches(&other));
        // Same edge count, different producer: still a mismatch.
        let swapped = Dependencies::from_edges(
            &[2, 2],
            &[
                (SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 1 }),
                (SetRef { layer: 1, set: 1 }, SetRef { layer: 0, set: 0 }),
                (SetRef { layer: 1, set: 1 }, SetRef { layer: 0, set: 1 }),
            ],
        )
        .unwrap();
        assert_eq!(swapped.num_edges(), deps.num_edges());
        assert!(!costed.matches(&swapped));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (layers, deps) = workload();
        assert!(matches!(
            CostedDeps::free(&layers[..1], &deps),
            Err(CoreError::StageMismatch { .. })
        ));
    }
}
