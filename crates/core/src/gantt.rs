//! Gantt-chart export of schedules, in the spirit of the paper's Fig. 6a/6b
//! PE-activity visualizations.
//!
//! Two renderers are provided: a fixed-width text chart for terminals and a
//! serde-friendly record list for external plotting.

use serde::{Deserialize, Serialize};

use crate::schedule::Schedule;
use crate::sets::LayerSets;

/// One bar of the Gantt chart: a layer's contiguous activity on its group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GanttRow {
    /// Layer name.
    pub name: String,
    /// Logical layer id.
    pub logical: u32,
    /// PEs in the group.
    pub pes: usize,
    /// Per set: (start, finish) in cycles.
    pub windows: Vec<(u64, u64)>,
}

/// Extracts plot-ready rows from a schedule.
pub fn gantt_rows(layers: &[LayerSets], schedule: &Schedule) -> Vec<GanttRow> {
    layers
        .iter()
        .zip(schedule.iter_layers())
        .map(|(l, times)| GanttRow {
            name: l.name.clone(),
            logical: l.logical,
            pes: l.pes,
            windows: times.iter().map(|t| (t.start, t.finish)).collect(),
        })
        .collect()
}

/// Renders the schedule as CSV (`layer,logical,pes,set,start,finish`) for
/// external plotting — every set becomes one record.
///
/// # Examples
///
/// ```
/// # use clsa_core::{gantt_csv, Schedule, SetTime, LayerSets, OfmSet};
/// # use cim_ir::{FeatureShape, NodeId, Rect};
/// let layers = vec![LayerSets {
///     node: NodeId(1), name: "conv".into(), logical: 1,
///     ofm: FeatureShape::new(1, 4, 8), pes: 2, quantum: 1,
///     sets: vec![OfmSet { rect: Rect::new(0, 0, 0, 3), duration: 4 }],
/// }];
/// let s = Schedule::from_nested(vec![vec![SetTime { start: 0, finish: 4 }]], 4);
/// let csv = gantt_csv(&layers, &s);
/// assert!(csv.lines().nth(1).unwrap().starts_with("conv,1,2,0,0,4"));
/// ```
pub fn gantt_csv(layers: &[LayerSets], schedule: &Schedule) -> String {
    let mut out = String::from("layer,logical,pes,set,start,finish\n");
    for (l, times) in layers.iter().zip(schedule.iter_layers()) {
        for (si, t) in times.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{si},{},{}\n",
                l.name, l.logical, l.pes, t.start, t.finish
            ));
        }
    }
    out
}

/// Renders a text Gantt chart, one row per layer, `width` characters of
/// timeline. Active spans are drawn with `█`, idle time with `·`.
///
/// # Examples
///
/// ```
/// # use cim_arch::CrossbarSpec;
/// # use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
/// # use cim_mapping::{layer_costs, MappingOptions};
/// # use clsa_core::{cross_layer_schedule, determine_dependencies, determine_sets,
/// #                 gantt_text, EdgeCost, SetPolicy};
/// # fn main() -> Result<(), clsa_core::CoreError> {
/// # let mut g = Graph::new("t");
/// # let x = g.add("input", Op::Input { shape: FeatureShape::new(10, 10, 3) }, &[])?;
/// # g.add("c1", Op::Conv2d(Conv2dAttrs { out_channels: 8, kernel: (3, 3), stride: (1, 1),
/// #     padding: Padding::Valid, use_bias: false }), &[x])?;
/// # let costs = layer_costs(&g, &CrossbarSpec::wan_nature_2022(), &MappingOptions::default())?;
/// # let layers = determine_sets(&g, &costs, &SetPolicy::finest())?;
/// # let deps = determine_dependencies(&g, &layers)?;
/// # let s = cross_layer_schedule(&layers, &deps, &EdgeCost::Free)?;
/// let chart = gantt_text(&layers, &s, 40);
/// assert!(chart.contains("c1"));
/// # Ok(())
/// # }
/// ```
pub fn gantt_text(layers: &[LayerSets], schedule: &Schedule, width: usize) -> String {
    let width = width.max(8);
    let name_w = layers
        .iter()
        .map(|l| l.name.len())
        .max()
        .unwrap_or(4)
        .max(5);
    let span = schedule.makespan.max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "{:name_w$} | {:>6} | timeline 0..{} cycles\n",
        "layer", "#PE", schedule.makespan
    ));
    for (l, times) in layers.iter().zip(schedule.iter_layers()) {
        let mut cells = vec!['·'; width];
        for t in times {
            let a = (t.start as u128 * width as u128 / span as u128) as usize;
            let b = ((t.finish as u128 * width as u128).div_ceil(span as u128) as usize).min(width);
            for c in cells.iter_mut().take(b).skip(a) {
                *c = '█';
            }
        }
        let bar: String = cells.into_iter().collect();
        out.push_str(&format!("{:name_w$} | {:>6} | {bar}\n", l.name, l.pes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SetTime;
    use crate::sets::OfmSet;
    use cim_ir::{FeatureShape, NodeId, Rect};

    fn fixture() -> (Vec<LayerSets>, Schedule) {
        let layers = vec![
            LayerSets {
                node: NodeId(1),
                name: "conv_a".into(),
                logical: 1,
                ofm: FeatureShape::new(2, 4, 8),
                pes: 3,
                quantum: 1,
                sets: vec![
                    OfmSet {
                        rect: Rect::new(0, 0, 0, 3),
                        duration: 4,
                    },
                    OfmSet {
                        rect: Rect::new(1, 0, 1, 3),
                        duration: 4,
                    },
                ],
            },
            LayerSets {
                node: NodeId(2),
                name: "conv_b".into(),
                logical: 2,
                ofm: FeatureShape::new(1, 4, 8),
                pes: 1,
                quantum: 1,
                sets: vec![OfmSet {
                    rect: Rect::new(0, 0, 0, 3),
                    duration: 4,
                }],
            },
        ];
        let schedule = Schedule::from_nested(
            vec![
                vec![
                    SetTime {
                        start: 0,
                        finish: 4,
                    },
                    SetTime {
                        start: 4,
                        finish: 8,
                    },
                ],
                vec![SetTime {
                    start: 8,
                    finish: 12,
                }],
            ],
            12,
        );
        (layers, schedule)
    }

    #[test]
    fn rows_mirror_schedule() {
        let (layers, s) = fixture();
        let rows = gantt_rows(&layers, &s);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].windows, vec![(0, 4), (4, 8)]);
        assert_eq!(rows[1].windows, vec![(8, 12)]);
        assert_eq!(rows[0].pes, 3);
        let json = serde_json::to_string(&rows).unwrap();
        assert!(json.contains("conv_a"));
    }

    #[test]
    fn text_chart_shows_activity_position() {
        let (layers, s) = fixture();
        let chart = gantt_text(&layers, &s, 12);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        // conv_a occupies the first 2/3 of its bar, conv_b the last 1/3.
        let bar_a = lines[1].rsplit('|').next().unwrap().trim();
        let bar_b = lines[2].rsplit('|').next().unwrap().trim();
        assert!(bar_a.starts_with('█'));
        assert!(bar_a.ends_with('·'));
        assert!(bar_b.starts_with('·'));
        assert!(bar_b.ends_with('█'));
    }

    #[test]
    fn text_chart_handles_zero_makespan() {
        let layers: Vec<LayerSets> = Vec::new();
        let s = Schedule::from_nested(vec![], 0);
        let chart = gantt_text(&layers, &s, 20);
        assert!(chart.contains("timeline"));
    }

    #[test]
    fn csv_lists_every_set() {
        let (layers, s) = fixture();
        let csv = gantt_csv(&layers, &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "layer,logical,pes,set,start,finish");
        assert_eq!(lines.len(), 1 + 3, "header + three sets");
        assert_eq!(lines[1], "conv_a,1,3,0,0,4");
        assert_eq!(lines[3], "conv_b,2,1,0,8,12");
    }
}
