//! A minimal dense `f32` tensor used by the reference executor.
//!
//! This is deliberately small: row-major storage, shape checks at the API
//! boundary, and just the accessors the executor needs. Scheduling never
//! touches tensor *values* — only the numeric-equivalence tests do.

use serde::{Deserialize, Serialize};

use crate::error::{IrError, Result};
use crate::shape::FeatureShape;

/// Dense row-major `f32` tensor of arbitrary rank.
///
/// # Examples
///
/// ```
/// use cim_ir::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.dims(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let len = dims.iter().product();
        Self {
            dims: dims.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TensorShape`] if `data.len()` does not equal the
    /// product of `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self> {
        let len: usize = dims.iter().product();
        if data.len() != len {
            return Err(IrError::TensorShape {
                detail: format!("dims {:?} imply {} elements, got {}", dims, len, data.len()),
            });
        }
        Ok(Self {
            dims: dims.to_vec(),
            data,
        })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let len: usize = dims.iter().product();
        Self {
            dims: dims.to_vec(),
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Creates an HWC feature-map tensor.
    pub fn feature(shape: FeatureShape) -> Self {
        Self::zeros(&[shape.h, shape.w, shape.c])
    }

    /// Tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Interprets this tensor as an HWC feature map.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TensorShape`] if the rank is not 3.
    pub fn feature_shape(&self) -> Result<FeatureShape> {
        match self.dims[..] {
            [h, w, c] => Ok(FeatureShape::new(h, w, c)),
            _ => Err(IrError::TensorShape {
                detail: format!("expected rank-3 HWC tensor, got dims {:?}", self.dims),
            }),
        }
    }

    /// Reads element `(y, x, c)` of a rank-3 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or the index is out of bounds
    /// (debug-style internal accessor; the executor validates shapes first).
    #[inline]
    pub fn at3(&self, y: usize, x: usize, c: usize) -> f32 {
        debug_assert_eq!(self.dims.len(), 3);
        self.data[(y * self.dims[1] + x) * self.dims[2] + c]
    }

    /// Writes element `(y, x, c)` of a rank-3 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or the index is out of bounds.
    #[inline]
    pub fn set3(&mut self, y: usize, x: usize, c: usize, v: f32) {
        debug_assert_eq!(self.dims.len(), 3);
        self.data[(y * self.dims[1] + x) * self.dims[2] + c] = v;
    }

    /// Reads element `(a, b, c, d)` of a rank-4 tensor (kernels: KH,KW,CI,CO).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    #[inline]
    pub fn at4(&self, a: usize, b: usize, c: usize, d: usize) -> f32 {
        debug_assert_eq!(self.dims.len(), 4);
        let (d1, d2, d3) = (self.dims[1], self.dims[2], self.dims[3]);
        self.data[((a * d1 + b) * d2 + c) * d3 + d]
    }

    /// Reads element `(i, j)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.dims.len(), 2);
        self.data[i * self.dims[1] + j]
    }

    /// Reads element `i` of a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 1 or the index is out of bounds.
    #[inline]
    pub fn at1(&self, i: usize) -> f32 {
        debug_assert_eq!(self.dims.len(), 1);
        self.data[i]
    }

    /// Largest absolute element difference to another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TensorShape`] if the dimensions differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.dims != other.dims {
            return Err(IrError::TensorShape {
                detail: format!("dims {:?} vs {:?}", self.dims, other.dims),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect()).unwrap();
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 0, 1), 1.0);
        assert_eq!(t.at3(0, 1, 0), 2.0);
        assert_eq!(t.at3(1, 1, 1), 7.0);
        assert_eq!(t.feature_shape().unwrap(), FeatureShape::new(2, 2, 2));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Tensor::from_vec(&[2, 3], vec![0.0; 5]).is_err());
    }

    #[test]
    fn rank4_indexing_is_row_major() {
        let t = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 0, 4), 4.0);
        assert_eq!(t.at4(0, 0, 1, 0), 5.0);
        assert_eq!(t.at4(1, 2, 3, 4), 119.0);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Tensor::zeros(&[4]);
        let mut b = Tensor::zeros(&[4]);
        b.as_mut_slice()[2] = -0.5;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        let c = Tensor::zeros(&[5]);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn set3_then_read_back() {
        let mut t = Tensor::feature(FeatureShape::new(3, 3, 1));
        t.set3(2, 1, 0, 9.5);
        assert_eq!(t.at3(2, 1, 0), 9.5);
        assert_eq!(t.at3(1, 2, 0), 0.0);
    }

    #[test]
    fn feature_shape_requires_rank3() {
        assert!(Tensor::zeros(&[2, 2]).feature_shape().is_err());
    }
}
