//! The NN graph: an append-only DAG of single-output operations.
//!
//! Node ids are assigned in insertion order and — because every node's
//! inputs must already exist when it is added — node ids always form a
//! topological order. Graph rewrites (frontend passes, weight duplication)
//! build new graphs rather than mutating edges, which keeps this invariant
//! trivially true.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{IrError, Result};
use crate::ops::Op;
use crate::shape::FeatureShape;
use crate::tensor::Tensor;

/// Identifier of a node inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the graph's node arena.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Batch-norm parameter set (per-channel vectors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BnParams {
    /// Scale γ.
    pub gamma: Tensor,
    /// Shift β.
    pub beta: Tensor,
    /// Moving mean μ.
    pub mean: Tensor,
    /// Moving variance σ².
    pub var: Tensor,
}

/// Learnable parameters attached to a node.
///
/// Parameters are optional: scheduling experiments work purely on shapes and
/// leave `params` unset to keep multi-hundred-layer graphs lightweight; the
/// numeric-equivalence tests attach real tensors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Convolution kernel `[kh, kw, ci, co]` or dense matrix `[ci, co]`.
    pub kernel: Option<Tensor>,
    /// Bias vector `[co]`.
    pub bias: Option<Tensor>,
    /// Batch-norm parameters.
    pub bn: Option<BnParams>,
}

impl Params {
    /// Parameters holding only a kernel.
    pub fn with_kernel(kernel: Tensor) -> Self {
        Self {
            kernel: Some(kernel),
            ..Self::default()
        }
    }
}

/// A single graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Unique human-readable name (e.g. `conv2d_16`).
    pub name: String,
    /// The operation.
    pub op: Op,
    /// Producer nodes feeding this operation, in positional order.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub out_shape: FeatureShape,
    /// Optional learnable parameters.
    pub params: Option<Params>,
    /// Logical layer index: duplicates created by the weight-duplication
    /// rewrite share the logical id of the original layer, which the
    /// layer-by-layer baseline uses to run duplicates concurrently.
    pub logical_layer: Option<u32>,
}

/// An append-only NN graph (DAG).
///
/// # Examples
///
/// ```
/// use cim_ir::{Graph, Op, FeatureShape, Conv2dAttrs, Padding};
///
/// # fn main() -> Result<(), cim_ir::IrError> {
/// let mut g = Graph::new("toy");
/// let x = g.add("input", Op::Input { shape: FeatureShape::new(8, 8, 3) }, &[])?;
/// let c = g.add(
///     "conv",
///     Op::Conv2d(Conv2dAttrs {
///         out_channels: 4,
///         kernel: (3, 3),
///         stride: (1, 1),
///         padding: Padding::Valid,
///         use_bias: false,
///     }),
///     &[x],
/// )?;
/// assert_eq!(g.node(c)?.out_shape, FeatureShape::new(6, 6, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends a node, inferring and recording its output shape.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] if an input id does not exist, or a
    /// shape-inference error if the operation rejects the input shapes.
    pub fn add(&mut self, name: impl Into<String>, op: Op, inputs: &[NodeId]) -> Result<NodeId> {
        self.add_node(name, op, inputs, None, None)
    }

    /// Appends a node with parameters attached.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add`].
    pub fn add_with_params(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: &[NodeId],
        params: Params,
    ) -> Result<NodeId> {
        self.add_node(name, op, inputs, Some(params), None)
    }

    /// Appends a node carrying an explicit logical-layer id (used by graph
    /// rewrites to mark duplicates of the same original layer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add`].
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: &[NodeId],
        params: Option<Params>,
        logical_layer: Option<u32>,
    ) -> Result<NodeId> {
        let mut in_shapes = Vec::with_capacity(inputs.len());
        for &i in inputs {
            let n = self.node(i)?;
            in_shapes.push(n.out_shape);
        }
        let out_shape = op.infer_shape(&in_shapes)?;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs: inputs.to_vec(),
            out_shape,
            params,
            logical_layer,
        });
        Ok(id)
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or(IrError::UnknownNode(id.0))
    }

    /// Mutable node lookup (attributes and params only — edges are fixed).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] for out-of-range ids.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        self.nodes
            .get_mut(id.index())
            .ok_or(IrError::UnknownNode(id.0))
    }

    /// Iterates over all nodes in topological (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node ids in topological order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|n| n.id)
    }

    /// Ids of all base-layer nodes (Conv2D / Dense) in topological order.
    pub fn base_layers(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.op.is_base())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all graph inputs.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Input { .. }))
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all nodes without consumers.
    pub fn outputs(&self) -> Vec<NodeId> {
        let mut consumed = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                consumed[i.index()] = true;
            }
        }
        self.nodes
            .iter()
            .filter(|n| !consumed[n.id.index()])
            .map(|n| n.id)
            .collect()
    }

    /// Consumer map: for every node, the nodes that read its output.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut map = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                map[i.index()].push(n.id);
            }
        }
        map
    }

    /// Finds a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Re-validates the whole graph: edge sanity, topological ids, unique
    /// names, and shape inference consistency.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] (or the underlying inference error)
    /// describing the first inconsistency found.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(IrError::EmptyGraph);
        }
        let mut names: BTreeMap<&str, NodeId> = BTreeMap::new();
        for (idx, n) in self.nodes.iter().enumerate() {
            if n.id.index() != idx {
                return Err(IrError::Invalid {
                    detail: format!("node at position {idx} has id {}", n.id),
                });
            }
            if let Some(prev) = names.insert(n.name.as_str(), n.id) {
                return Err(IrError::Invalid {
                    detail: format!("duplicate node name `{}` ({prev} and {})", n.name, n.id),
                });
            }
            let mut in_shapes = Vec::with_capacity(n.inputs.len());
            for &i in &n.inputs {
                if i.index() >= idx {
                    return Err(IrError::Invalid {
                        detail: format!("node {} consumes later/self node {i}", n.id),
                    });
                }
                in_shapes.push(self.nodes[i.index()].out_shape);
            }
            let inferred = n.op.infer_shape(&in_shapes)?;
            if inferred != n.out_shape {
                return Err(IrError::Invalid {
                    detail: format!(
                        "node {} `{}` records shape {} but inference gives {}",
                        n.id, n.name, n.out_shape, inferred
                    ),
                });
            }
        }
        Ok(())
    }

    /// Counts nodes per operation mnemonic, sorted alphabetically — a
    /// quick structural fingerprint for logs and tests.
    ///
    /// # Examples
    ///
    /// ```
    /// use cim_ir::{FeatureShape, Graph, Op};
    /// # fn main() -> Result<(), cim_ir::IrError> {
    /// let mut g = Graph::new("t");
    /// let x = g.add("input", Op::Input { shape: FeatureShape::new(2, 2, 1) }, &[])?;
    /// g.add("a", Op::Add, &[x, x])?;
    /// let hist = g.op_histogram();
    /// assert_eq!(hist, vec![("add".to_string(), 1), ("input".to_string(), 1)]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn op_histogram(&self) -> Vec<(String, usize)> {
        let mut map: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for n in &self.nodes {
            *map.entry(n.op.mnemonic()).or_default() += 1;
        }
        map.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    /// Total number of scalar parameters attached to the graph.
    pub fn param_count(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| n.params.as_ref())
            .map(|p| {
                p.kernel.as_ref().map_or(0, Tensor::len)
                    + p.bias.as_ref().map_or(0, Tensor::len)
                    + p.bn.as_ref().map_or(0, |b| {
                        b.gamma.len() + b.beta.len() + b.mean.len() + b.var.len()
                    })
            })
            .sum()
    }
}

impl std::fmt::Display for Graph {
    /// One-line summary: name, node count, base layers, outputs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} nodes ({} base layers, {} outputs)",
            self.name,
            self.nodes.len(),
            self.base_layers().len(),
            self.outputs().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Conv2dAttrs, PoolAttrs};
    use crate::shape::Padding;

    fn input(g: &mut Graph, h: usize, w: usize, c: usize) -> NodeId {
        g.add(
            "input",
            Op::Input {
                shape: FeatureShape::new(h, w, c),
            },
            &[],
        )
        .unwrap()
    }

    fn conv_op(oc: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            use_bias: false,
        })
    }

    #[test]
    fn build_and_query_small_graph() {
        let mut g = Graph::new("t");
        let x = input(&mut g, 8, 8, 3);
        let c1 = g.add("c1", conv_op(4), &[x]).unwrap();
        let p = g
            .add(
                "pool",
                Op::MaxPool2d(PoolAttrs {
                    window: (2, 2),
                    stride: (2, 2),
                    padding: Padding::Valid,
                }),
                &[c1],
            )
            .unwrap();
        let c2 = g.add("c2", conv_op(8), &[p]).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.base_layers(), vec![c1, c2]);
        assert_eq!(g.inputs(), vec![x]);
        assert_eq!(g.outputs(), vec![c2]);
        assert_eq!(g.consumers()[c1.index()], vec![p]);
        assert_eq!(g.find("pool"), Some(p));
        assert_eq!(g.find("nope"), None);
        g.validate().unwrap();
    }

    #[test]
    fn add_rejects_unknown_input() {
        let mut g = Graph::new("t");
        let err = g.add("c", conv_op(4), &[NodeId(7)]).unwrap_err();
        assert_eq!(err, IrError::UnknownNode(7));
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let mut g = Graph::new("t");
        let x = input(&mut g, 8, 8, 3);
        g.add("c", conv_op(4), &[x]).unwrap();
        let c2 = g.add("c", conv_op(4), &[x]).unwrap();
        assert!(c2.index() == 2);
        let err = g.validate().unwrap_err();
        assert!(matches!(err, IrError::Invalid { .. }));
    }

    #[test]
    fn validate_rejects_empty_graph() {
        assert_eq!(Graph::new("e").validate().unwrap_err(), IrError::EmptyGraph);
    }

    #[test]
    fn validate_detects_tampered_shape() {
        let mut g = Graph::new("t");
        let x = input(&mut g, 8, 8, 3);
        let c = g.add("c", conv_op(4), &[x]).unwrap();
        g.node_mut(c).unwrap().out_shape = FeatureShape::new(1, 1, 1);
        assert!(g.validate().is_err());
    }

    #[test]
    fn fan_out_and_concat() {
        let mut g = Graph::new("t");
        let x = input(&mut g, 8, 8, 4);
        let a = g.add("a", conv_op(4), &[x]).unwrap();
        let b = g.add("b", conv_op(4), &[x]).unwrap();
        let cat = g
            .add("cat", Op::Concat(crate::ops::Axis::C), &[a, b])
            .unwrap();
        assert_eq!(g.node(cat).unwrap().out_shape, FeatureShape::new(8, 8, 8));
        assert_eq!(g.consumers()[x.index()].len(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn param_count_sums_attached_tensors() {
        let mut g = Graph::new("t");
        let x = input(&mut g, 4, 4, 1);
        g.add_with_params(
            "c",
            conv_op(2),
            &[x],
            Params::with_kernel(Tensor::zeros(&[3, 3, 1, 2])),
        )
        .unwrap();
        assert_eq!(g.param_count(), 18);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = Graph::new("t");
        let x = input(&mut g, 8, 8, 3);
        g.add("c", conv_op(4), &[x]).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        back.validate().unwrap();
    }

    #[test]
    fn histogram_and_display() {
        let mut g = Graph::new("net");
        let x = input(&mut g, 8, 8, 3);
        let c1 = g.add("c1", conv_op(4), &[x]).unwrap();
        g.add("c2", conv_op(4), &[c1]).unwrap();
        assert_eq!(
            g.op_histogram(),
            vec![("conv2d".to_string(), 2), ("input".to_string(), 1)]
        );
        assert_eq!(g.to_string(), "net: 3 nodes (2 base layers, 1 outputs)");
    }
}
