//! Graphviz DOT export of NN graphs.
//!
//! Base layers (Conv2D / Dense, green in the paper's Fig. 2) and non-base
//! layers (blue) are coloured accordingly, matching the paper's canonical
//! representation figures.

use std::fmt::Write as _;

use crate::graph::Graph;

/// Renders `graph` as a Graphviz `digraph`.
///
/// Node labels show name, operation mnemonic and output shape; base layers
/// are filled green, non-base layers blue, inputs grey.
///
/// # Examples
///
/// ```
/// use cim_ir::{to_dot, FeatureShape, Graph, Op};
///
/// # fn main() -> Result<(), cim_ir::IrError> {
/// let mut g = Graph::new("toy");
/// g.add("input", Op::Input { shape: FeatureShape::new(8, 8, 3) }, &[])?;
/// let dot = to_dot(&g);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("input"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(graph: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(graph.name()));
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(
        s,
        "  node [shape=box, style=filled, fontname=\"monospace\"];"
    );
    for n in graph.iter() {
        let color = if matches!(n.op, crate::ops::Op::Input { .. }) {
            "lightgrey"
        } else if n.op.is_base() {
            "palegreen" // base layers: executed on crossbar PEs
        } else {
            "lightblue" // non-base layers: executed on the GPEU
        };
        let extra = n
            .logical_layer
            .map(|l| format!("\\nlogical {l}"))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "  n{} [label=\"{}\\n{} {}{}\", fillcolor={}];",
            n.id.0,
            escape(&n.name),
            n.op.mnemonic(),
            n.out_shape,
            extra,
            color
        );
    }
    for n in graph.iter() {
        for &i in &n.inputs {
            let _ = writeln!(s, "  n{} -> n{};", i.0, n.id.0);
        }
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ops::{Conv2dAttrs, Op};
    use crate::shape::{FeatureShape, Padding};

    #[test]
    fn dot_contains_nodes_edges_and_colors() {
        let mut g = Graph::new("toy \"net\"");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        let c = g
            .add(
                "conv",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Valid,
                    use_bias: false,
                }),
                &[x],
            )
            .unwrap();
        g.add("act", Op::Activation(crate::ops::ActFn::Relu), &[c])
            .unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph \"toy \\\"net\\\"\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(
            dot.contains("palegreen"),
            "conv must be coloured as base layer"
        );
        assert!(
            dot.contains("lightblue"),
            "activation must be coloured as non-base"
        );
        assert!(dot.contains("lightgrey"), "input must be grey");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_shows_logical_layer_of_duplicates() {
        let mut g = Graph::new("dup");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        g.add_node(
            "conv_dup0",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 4,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[x],
            None,
            Some(7),
        )
        .unwrap();
        assert!(to_dot(&g).contains("logical 7"));
    }
}
