//! Error types for graph construction, shape inference, and execution.

use std::fmt;

/// Errors produced by [`crate::Graph`] construction and the reference
/// executor.
///
/// All public fallible operations in this crate return `Result<_, IrError>`.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// An operation referenced a node id that does not exist in the graph.
    UnknownNode(u32),
    /// An operation received the wrong number of inputs.
    BadArity {
        /// Name of the offending operation.
        op: &'static str,
        /// Number of inputs the operation requires (textual, e.g. "2" or ">=1").
        expected: &'static str,
        /// Number of inputs it received.
        got: usize,
    },
    /// Input shapes are incompatible with the operation.
    ShapeMismatch {
        /// Name of the offending operation.
        op: &'static str,
        /// Human-readable description of the violated constraint.
        detail: String,
    },
    /// An attribute value is invalid (e.g. zero stride, zero kernel).
    InvalidAttr {
        /// Name of the offending operation.
        op: &'static str,
        /// Human-readable description of the invalid attribute.
        detail: String,
    },
    /// Numeric execution required parameters (weights) that are absent.
    MissingParams {
        /// Name of the node whose parameters are missing.
        node: String,
    },
    /// A tensor with unexpected dimensions was supplied.
    TensorShape {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The graph has no nodes where at least one was required.
    EmptyGraph,
    /// A named input required by execution was not provided.
    MissingInput {
        /// Name of the missing graph input node.
        node: String,
    },
    /// Graph validation failed (dangling edges, non-topological ids, ...).
    Invalid {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            IrError::BadArity { op, expected, got } => {
                write!(f, "{op} expects {expected} input(s), got {got}")
            }
            IrError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            IrError::InvalidAttr { op, detail } => {
                write!(f, "invalid attribute in {op}: {detail}")
            }
            IrError::MissingParams { node } => {
                write!(f, "node `{node}` has no parameters attached")
            }
            IrError::TensorShape { detail } => write!(f, "tensor shape error: {detail}"),
            IrError::EmptyGraph => write!(f, "graph contains no nodes"),
            IrError::MissingInput { node } => {
                write!(f, "no tensor provided for graph input `{node}`")
            }
            IrError::Invalid { detail } => write!(f, "invalid graph: {detail}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs: Vec<IrError> = vec![
            IrError::UnknownNode(3),
            IrError::BadArity {
                op: "conv2d",
                expected: "1",
                got: 2,
            },
            IrError::ShapeMismatch {
                op: "add",
                detail: "lhs != rhs".into(),
            },
            IrError::InvalidAttr {
                op: "conv2d",
                detail: "stride 0".into(),
            },
            IrError::MissingParams {
                node: "conv0".into(),
            },
            IrError::TensorShape {
                detail: "want 3 dims".into(),
            },
            IrError::EmptyGraph,
            IrError::MissingInput {
                node: "input".into(),
            },
            IrError::Invalid {
                detail: "dangling edge".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
