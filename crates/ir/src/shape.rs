//! Feature-map shapes and padding arithmetic.
//!
//! The whole stack works on single-batch feature maps in **HWC** layout
//! (height, width, channels), matching the shapes printed in the paper's
//! Table I (e.g. `(417, 417, 3)`).

use serde::{Deserialize, Serialize};

use crate::error::{IrError, Result};

/// Shape of a feature map in HWC layout.
///
/// # Examples
///
/// ```
/// use cim_ir::FeatureShape;
/// let s = FeatureShape::new(208, 208, 32);
/// assert_eq!(s.len(), 208 * 208 * 32);
/// assert_eq!(s.hw(), 208 * 208);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureShape {
    /// Height (rows).
    pub h: usize,
    /// Width (columns).
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl FeatureShape {
    /// Creates a new shape. All dimensions must be non-zero for the shape to
    /// be usable by graph operations; zero dimensions are permitted here so
    /// intermediate arithmetic can detect them via [`FeatureShape::is_valid`].
    pub const fn new(h: usize, w: usize, c: usize) -> Self {
        Self { h, w, c }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Returns `true` if any dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spatial positions (`h * w`) — the number of MVM operations
    /// needed to produce this feature map on a CIM core (Sec. III-B).
    pub const fn hw(&self) -> usize {
        self.h * self.w
    }

    /// Returns `true` if all dimensions are non-zero.
    pub const fn is_valid(&self) -> bool {
        self.h > 0 && self.w > 0 && self.c > 0
    }
}

impl std::fmt::Display for FeatureShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.h, self.w, self.c)
    }
}

impl From<(usize, usize, usize)> for FeatureShape {
    fn from((h, w, c): (usize, usize, usize)) -> Self {
        Self::new(h, w, c)
    }
}

/// Explicit zero-padding amounts on the four spatial borders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PadSpec {
    /// Rows added above.
    pub top: usize,
    /// Rows added below.
    pub bottom: usize,
    /// Columns added on the left.
    pub left: usize,
    /// Columns added on the right.
    pub right: usize,
}

impl PadSpec {
    /// Creates an explicit padding specification.
    pub const fn new(top: usize, bottom: usize, left: usize, right: usize) -> Self {
        Self {
            top,
            bottom,
            left,
            right,
        }
    }

    /// Symmetric padding of `p` on every border.
    pub const fn uniform(p: usize) -> Self {
        Self {
            top: p,
            bottom: p,
            left: p,
            right: p,
        }
    }

    /// Returns `true` if no padding is applied at all.
    pub const fn is_zero(&self) -> bool {
        self.top == 0 && self.bottom == 0 && self.left == 0 && self.right == 0
    }

    /// Total vertical padding.
    pub const fn total_h(&self) -> usize {
        self.top + self.bottom
    }

    /// Total horizontal padding.
    pub const fn total_w(&self) -> usize {
        self.left + self.right
    }
}

/// Padding policy of a windowed operation (convolution or pooling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// No padding; output shrinks by the window extent.
    Valid,
    /// TensorFlow-style `same` padding: output is `ceil(in / stride)`, with
    /// the extra row/column (if the total padding is odd) added at the
    /// bottom/right — this reproduces the asymmetric `(417, 417, 3)` input of
    /// the paper's Table I for a 416×416 image and a 3×3/2 convolution.
    Same,
    /// Explicit per-border padding.
    Explicit(PadSpec),
}

impl Padding {
    /// Resolves the policy to explicit border amounts for the given input
    /// extent, window and stride (applied per spatial dimension).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidAttr`] if `stride` or `window` is zero.
    pub fn resolve(
        &self,
        (ih, iw): (usize, usize),
        (kh, kw): (usize, usize),
        (sh, sw): (usize, usize),
    ) -> Result<PadSpec> {
        if sh == 0 || sw == 0 {
            return Err(IrError::InvalidAttr {
                op: "padding",
                detail: "stride must be non-zero".into(),
            });
        }
        if kh == 0 || kw == 0 {
            return Err(IrError::InvalidAttr {
                op: "padding",
                detail: "window must be non-zero".into(),
            });
        }
        match self {
            Padding::Valid => Ok(PadSpec::default()),
            Padding::Explicit(p) => Ok(*p),
            Padding::Same => {
                let (top, bottom) = same_axis(ih, kh, sh);
                let (left, right) = same_axis(iw, kw, sw);
                Ok(PadSpec {
                    top,
                    bottom,
                    left,
                    right,
                })
            }
        }
    }
}

/// TF `same` padding along one axis: `(before, after)` with the larger part
/// after.
fn same_axis(i: usize, k: usize, s: usize) -> (usize, usize) {
    let o = i.div_ceil(s);
    let needed = ((o - 1) * s + k).saturating_sub(i);
    let before = needed / 2;
    (before, needed - before)
}

/// Output extent of a windowed op along one axis on an already-padded input.
///
/// Returns `None` when the window does not fit.
pub fn window_out_extent(padded: usize, k: usize, s: usize) -> Option<usize> {
    if s == 0 || k == 0 || padded < k {
        None
    } else {
        Some((padded - k) / s + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_shape_basics() {
        let s = FeatureShape::new(13, 13, 512);
        assert_eq!(s.len(), 13 * 13 * 512);
        assert_eq!(s.hw(), 169);
        assert!(s.is_valid());
        assert!(!FeatureShape::new(0, 4, 4).is_valid());
        assert_eq!(s.to_string(), "(13, 13, 512)");
        assert_eq!(FeatureShape::from((1, 2, 3)), FeatureShape::new(1, 2, 3));
    }

    #[test]
    fn same_padding_matches_table1_first_layer() {
        // 416×416 input, 3×3 conv stride 2 → padded input 417×417 (Table I).
        let p = Padding::Same.resolve((416, 416), (3, 3), (2, 2)).unwrap();
        assert_eq!(p.total_h(), 1);
        assert_eq!(p.total_w(), 1);
        assert_eq!(p.top, 0, "TF puts the odd row at the bottom");
        assert_eq!(p.bottom, 1);
        assert_eq!(416 + p.total_h(), 417);
    }

    #[test]
    fn same_padding_stride1_is_symmetric() {
        // 104×104, 3×3/1 → padded 106×106 (Table I row conv2d_2).
        let p = Padding::Same.resolve((104, 104), (3, 3), (1, 1)).unwrap();
        assert_eq!(p, PadSpec::uniform(1));
        assert_eq!(104 + p.total_h(), 106);
    }

    #[test]
    fn same_padding_resnet_stem() {
        // 224×224, 7×7/2 → out 112, total pad 5, split 2/3.
        let p = Padding::Same.resolve((224, 224), (7, 7), (2, 2)).unwrap();
        assert_eq!((p.top, p.bottom), (2, 3));
        assert_eq!(window_out_extent(224 + 5, 7, 2), Some(112));
    }

    #[test]
    fn valid_and_explicit_padding() {
        assert_eq!(
            Padding::Valid.resolve((10, 10), (3, 3), (1, 1)).unwrap(),
            PadSpec::default()
        );
        let e = PadSpec::new(1, 2, 3, 4);
        assert_eq!(
            Padding::Explicit(e)
                .resolve((10, 10), (3, 3), (1, 1))
                .unwrap(),
            e
        );
        assert!(!e.is_zero());
        assert!(PadSpec::default().is_zero());
    }

    #[test]
    fn zero_stride_rejected() {
        assert!(Padding::Same.resolve((4, 4), (2, 2), (0, 1)).is_err());
        assert!(Padding::Same.resolve((4, 4), (0, 2), (1, 1)).is_err());
    }

    #[test]
    fn window_extent_edge_cases() {
        assert_eq!(window_out_extent(5, 3, 1), Some(3));
        assert_eq!(window_out_extent(5, 3, 2), Some(2));
        assert_eq!(window_out_extent(2, 3, 1), None, "window larger than input");
        assert_eq!(window_out_extent(5, 0, 1), None);
        assert_eq!(window_out_extent(5, 3, 0), None);
        assert_eq!(window_out_extent(3, 3, 7), Some(1));
    }
}
