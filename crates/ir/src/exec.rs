//! Reference CPU executor.
//!
//! Executes a [`Graph`] numerically on dense `f32` tensors. Scheduling never
//! needs values, but the graph *rewrites* do: batch-norm folding
//! (`cim-frontend`) and the weight-duplication slice/concat expansion
//! (`cim-mapping`, Sec. III-C of the paper) must not change what the network
//! computes. The equivalence tests run original and rewritten graphs through
//! this executor and compare outputs.
//!
//! The implementation favours obviousness over speed: direct convolution
//! loops, no im2col, no blocking. It is plenty fast for the toy models used
//! in numeric tests.


// cim-lint: allow-file(hash-collection) the public shape-map API is keyed lookup only; nothing iterates it into output
use std::collections::HashMap;

use crate::error::{IrError, Result};
use crate::graph::{Graph, Node, NodeId, Params};
use crate::ops::{Axis, Op};
use crate::shape::FeatureShape;
use crate::tensor::Tensor;

/// Reference executor over a borrowed graph.
///
/// # Examples
///
/// See the [crate-level example](crate) for an end-to-end run.
#[derive(Debug)]
pub struct Executor<'g> {
    graph: &'g Graph,
}

// Graphs, tensors, and the borrowing executor are shared read-only across
// sweep worker threads; none of them may grow interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Graph>();
    assert_send_sync::<Tensor>();
    assert_send_sync::<Executor<'_>>();
};

impl<'g> Executor<'g> {
    /// Creates an executor for `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph }
    }

    /// Runs the graph with one tensor per graph input, keyed by input name.
    ///
    /// Returns the output tensor of every node (useful for debugging and for
    /// comparing intermediate maps across rewrites).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingInput`] if an input tensor is absent,
    /// [`IrError::TensorShape`] if a supplied tensor does not match the
    /// declared input shape, and [`IrError::MissingParams`] if a node that
    /// needs weights has none attached.
    pub fn run(&self, inputs: &HashMap<String, Tensor>) -> Result<HashMap<NodeId, Tensor>> {
        if self.graph.is_empty() {
            return Err(IrError::EmptyGraph);
        }
        let mut values: HashMap<NodeId, Tensor> = HashMap::with_capacity(self.graph.len());
        for node in self.graph.iter() {
            let out = match &node.op {
                Op::Input { shape } => {
                    let t = inputs
                        .get(&node.name)
                        .ok_or_else(|| IrError::MissingInput {
                            node: node.name.clone(),
                        })?;
                    let got = t.feature_shape()?;
                    if got != *shape {
                        return Err(IrError::TensorShape {
                            detail: format!("input `{}` expects {shape}, got {got}", node.name),
                        });
                    }
                    t.clone()
                }
                _ => self.eval(node, &values)?,
            };
            values.insert(node.id, out);
        }
        Ok(values)
    }

    /// Convenience wrapper for single-input graphs.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] when the graph does not have exactly one
    /// input, plus all error conditions of [`Executor::run`].
    pub fn run_single(&self, input: Tensor) -> Result<HashMap<NodeId, Tensor>> {
        let ins = self.graph.inputs();
        match ins.as_slice() {
            [only] => {
                let name = self.graph.node(*only)?.name.clone();
                let mut map = HashMap::new();
                map.insert(name, input);
                self.run(&map)
            }
            _ => Err(IrError::Invalid {
                detail: format!(
                    "run_single requires exactly 1 graph input, found {}",
                    ins.len()
                ),
            }),
        }
    }

    fn eval(&self, node: &Node, values: &HashMap<NodeId, Tensor>) -> Result<Tensor> {
        let ins: Vec<&Tensor> = node
            .inputs
            .iter()
            .map(|i| values.get(i).expect("topological order guarantees inputs")) // cim-lint: allow(panic-unwrap) topological order guarantees inputs resolved
            .collect();
        let out_shape = node.out_shape;
        match &node.op {
            Op::Input { .. } => unreachable!("inputs handled by run()"),
            Op::Conv2d(a) => {
                let params = node_params(node)?;
                let kernel = params
                    .kernel
                    .as_ref()
                    .ok_or_else(|| IrError::MissingParams {
                        node: node.name.clone(),
                    })?;
                let x = ins[0];
                let ishape = x.feature_shape()?;
                expect_kernel_dims(
                    kernel,
                    &[a.kernel.0, a.kernel.1, ishape.c, a.out_channels],
                    node,
                )?;
                let pad = a
                    .padding
                    .resolve((ishape.h, ishape.w), a.kernel, a.stride)?;
                let mut out = Tensor::feature(out_shape);
                for oy in 0..out_shape.h {
                    for ox in 0..out_shape.w {
                        for oc in 0..out_shape.c {
                            let mut acc = 0.0f32;
                            for ky in 0..a.kernel.0 {
                                let iy = oy * a.stride.0 + ky;
                                if iy < pad.top || iy - pad.top >= ishape.h {
                                    continue; // zero padding
                                }
                                for kx in 0..a.kernel.1 {
                                    let ix = ox * a.stride.1 + kx;
                                    if ix < pad.left || ix - pad.left >= ishape.w {
                                        continue;
                                    }
                                    for ic in 0..ishape.c {
                                        acc += x.at3(iy - pad.top, ix - pad.left, ic)
                                            * kernel.at4(ky, kx, ic, oc);
                                    }
                                }
                            }
                            if a.use_bias {
                                if let Some(b) = params.bias.as_ref() {
                                    acc += b.at1(oc);
                                }
                            }
                            out.set3(oy, ox, oc, acc);
                        }
                    }
                }
                Ok(out)
            }
            Op::Dense(a) => {
                let params = node_params(node)?;
                let kernel = params
                    .kernel
                    .as_ref()
                    .ok_or_else(|| IrError::MissingParams {
                        node: node.name.clone(),
                    })?;
                let x = ins[0];
                let ishape = x.feature_shape()?;
                if kernel.dims() != [ishape.c, a.units] {
                    return Err(IrError::TensorShape {
                        detail: format!(
                            "dense `{}` kernel dims {:?}, expected [{}, {}]",
                            node.name,
                            kernel.dims(),
                            ishape.c,
                            a.units
                        ),
                    });
                }
                let mut out = Tensor::feature(out_shape);
                for u in 0..a.units {
                    let mut acc = 0.0f32;
                    for k in 0..ishape.c {
                        acc += x.at3(0, 0, k) * kernel.at2(k, u);
                    }
                    if a.use_bias {
                        if let Some(b) = params.bias.as_ref() {
                            acc += b.at1(u);
                        }
                    }
                    out.set3(0, 0, u, acc);
                }
                Ok(out)
            }
            Op::Bias => {
                let params = node_params(node)?;
                let bias = params.bias.as_ref().ok_or_else(|| IrError::MissingParams {
                    node: node.name.clone(),
                })?;
                let x = ins[0];
                if bias.dims() != [out_shape.c] {
                    return Err(IrError::TensorShape {
                        detail: format!(
                            "bias `{}` dims {:?}, expected [{}]",
                            node.name,
                            bias.dims(),
                            out_shape.c
                        ),
                    });
                }
                Ok(map_hwc(x, out_shape, |_, _, c, v| v + bias.at1(c)))
            }
            Op::BatchNorm(a) => {
                let params = node_params(node)?;
                let bn = params.bn.as_ref().ok_or_else(|| IrError::MissingParams {
                    node: node.name.clone(),
                })?;
                for (t, what) in [
                    (&bn.gamma, "gamma"),
                    (&bn.beta, "beta"),
                    (&bn.mean, "mean"),
                    (&bn.var, "var"),
                ] {
                    if t.dims() != [out_shape.c] {
                        return Err(IrError::TensorShape {
                            detail: format!(
                                "batch_norm `{}` {what} dims {:?}, expected [{}]",
                                node.name,
                                t.dims(),
                                out_shape.c
                            ),
                        });
                    }
                }
                let x = ins[0];
                Ok(map_hwc(x, out_shape, |_, _, c, v| {
                    let inv = 1.0 / (bn.var.at1(c) + a.eps).sqrt();
                    (v - bn.mean.at1(c)) * inv * bn.gamma.at1(c) + bn.beta.at1(c)
                }))
            }
            Op::Activation(f) => Ok(map_hwc(ins[0], out_shape, |_, _, _, v| f.apply(v))),
            Op::MaxPool2d(a) => pool(ins[0], node, a, out_shape, PoolKind::Max),
            Op::AvgPool2d(a) => pool(ins[0], node, a, out_shape, PoolKind::Avg),
            Op::GlobalAvgPool => {
                let x = ins[0];
                let ishape = x.feature_shape()?;
                let mut out = Tensor::feature(out_shape);
                let n = ishape.hw() as f32;
                for c in 0..ishape.c {
                    let mut acc = 0.0f32;
                    for y in 0..ishape.h {
                        for x_ in 0..ishape.w {
                            acc += x.at3(y, x_, c);
                        }
                    }
                    out.set3(0, 0, c, acc / n);
                }
                Ok(out)
            }
            Op::ZeroPad2d(p) => {
                let x = ins[0];
                let ishape = x.feature_shape()?;
                let mut out = Tensor::feature(out_shape);
                for y in 0..ishape.h {
                    for x_ in 0..ishape.w {
                        for c in 0..ishape.c {
                            out.set3(y + p.top, x_ + p.left, c, x.at3(y, x_, c));
                        }
                    }
                }
                Ok(out)
            }
            Op::Concat(axis) => {
                let mut out = Tensor::feature(out_shape);
                let mut off = 0usize;
                for t in &ins {
                    let s = t.feature_shape()?;
                    for y in 0..s.h {
                        for x_ in 0..s.w {
                            for c in 0..s.c {
                                match axis {
                                    Axis::H => out.set3(y + off, x_, c, t.at3(y, x_, c)),
                                    Axis::W => out.set3(y, x_ + off, c, t.at3(y, x_, c)),
                                    Axis::C => out.set3(y, x_, c + off, t.at3(y, x_, c)),
                                }
                            }
                        }
                    }
                    off += match axis {
                        Axis::H => s.h,
                        Axis::W => s.w,
                        Axis::C => s.c,
                    };
                }
                Ok(out)
            }
            Op::Add => {
                let (a, b) = (ins[0], ins[1]);
                Ok(map_hwc(a, out_shape, |y, x, c, v| v + b.at3(y, x, c)))
            }
            Op::Upsample2d { factor } => {
                let x = ins[0];
                Ok(Tensor::from_fn(
                    &[out_shape.h, out_shape.w, out_shape.c],
                    |i| {
                        let c = i % out_shape.c;
                        let x_ = (i / out_shape.c) % out_shape.w;
                        let y = i / (out_shape.c * out_shape.w);
                        x.at3(y / factor.0, x_ / factor.1, c)
                    },
                ))
            }
            Op::Slice(a) => {
                let x = ins[0];
                let mut out = Tensor::feature(out_shape);
                for y in 0..out_shape.h {
                    for x_ in 0..out_shape.w {
                        for c in 0..out_shape.c {
                            out.set3(
                                y,
                                x_,
                                c,
                                x.at3(y + a.offset.0, x_ + a.offset.1, c + a.offset.2),
                            );
                        }
                    }
                }
                Ok(out)
            }
            Op::Flatten => {
                let x = ins[0];
                Tensor::from_vec(&[1, 1, out_shape.c], x.as_slice().to_vec())
            }
            Op::Softmax => {
                let x = ins[0];
                let ishape = x.feature_shape()?;
                let mut out = Tensor::feature(out_shape);
                for y in 0..ishape.h {
                    for x_ in 0..ishape.w {
                        let max = (0..ishape.c)
                            .map(|c| x.at3(y, x_, c))
                            .fold(f32::NEG_INFINITY, f32::max);
                        let mut denom = 0.0f32;
                        for c in 0..ishape.c {
                            denom += (x.at3(y, x_, c) - max).exp();
                        }
                        for c in 0..ishape.c {
                            out.set3(y, x_, c, (x.at3(y, x_, c) - max).exp() / denom);
                        }
                    }
                }
                Ok(out)
            }
            Op::Quantize(q) => {
                let lo = -(1i64 << (q.bits - 1)) as f32;
                let hi = ((1i64 << (q.bits - 1)) - 1) as f32;
                Ok(map_hwc(ins[0], out_shape, |_, _, _, v| {
                    let t = (v / q.scale).round() + q.zero_point as f32;
                    (t.clamp(lo, hi) - q.zero_point as f32) * q.scale
                }))
            }
        }
    }
}

fn node_params(node: &Node) -> Result<&Params> {
    node.params.as_ref().ok_or_else(|| IrError::MissingParams {
        node: node.name.clone(),
    })
}

fn expect_kernel_dims(kernel: &Tensor, want: &[usize], node: &Node) -> Result<()> {
    if kernel.dims() != want {
        return Err(IrError::TensorShape {
            detail: format!(
                "conv `{}` kernel dims {:?}, expected {:?}",
                node.name,
                kernel.dims(),
                want
            ),
        });
    }
    Ok(())
}

/// Applies `f(y, x, c, value)` to every element of `x`, producing a tensor of
/// `shape` (which must equal `x`'s shape for elementwise ops).
fn map_hwc(x: &Tensor, shape: FeatureShape, f: impl Fn(usize, usize, usize, f32) -> f32) -> Tensor {
    let mut out = Tensor::feature(shape);
    for y in 0..shape.h {
        for x_ in 0..shape.w {
            for c in 0..shape.c {
                out.set3(y, x_, c, f(y, x_, c, x.at3(y, x_, c)));
            }
        }
    }
    out
}

enum PoolKind {
    Max,
    Avg,
}

fn pool(
    x: &Tensor,
    node: &Node,
    a: &crate::ops::PoolAttrs,
    out_shape: FeatureShape,
    kind: PoolKind,
) -> Result<Tensor> {
    let ishape = x.feature_shape()?;
    let pad = a
        .padding
        .resolve((ishape.h, ishape.w), a.window, a.stride)?;
    let _ = node;
    let mut out = Tensor::feature(out_shape);
    for oy in 0..out_shape.h {
        for ox in 0..out_shape.w {
            for c in 0..out_shape.c {
                let mut best = f32::NEG_INFINITY;
                let mut acc = 0.0f32;
                let mut count = 0usize;
                for ky in 0..a.window.0 {
                    let iy = oy * a.stride.0 + ky;
                    if iy < pad.top || iy - pad.top >= ishape.h {
                        continue;
                    }
                    for kx in 0..a.window.1 {
                        let ix = ox * a.stride.1 + kx;
                        if ix < pad.left || ix - pad.left >= ishape.w {
                            continue;
                        }
                        let v = x.at3(iy - pad.top, ix - pad.left, c);
                        best = best.max(v);
                        acc += v;
                        count += 1;
                    }
                }
                let v = match kind {
                    PoolKind::Max => {
                        // A window fully inside padding sees only zeros.
                        if count == 0 {
                            0.0
                        } else {
                            best
                        }
                    }
                    // TF semantics: average over the valid (non-padding)
                    // elements only.
                    PoolKind::Avg => {
                        if count == 0 {
                            0.0
                        } else {
                            acc / count as f32
                        }
                    }
                };
                out.set3(oy, ox, c, v);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BnParams;
    use crate::ops::{Conv2dAttrs, DenseAttrs, PoolAttrs, QuantAttrs, SliceAttrs};
    use crate::shape::{PadSpec, Padding};

    fn conv_attrs(oc: usize, k: usize, st: usize, padding: Padding, use_bias: bool) -> Conv2dAttrs {
        Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding,
            use_bias,
        }
    }

    /// 4×4 single-channel ramp input 0..16.
    fn ramp4() -> Tensor {
        Tensor::from_fn(&[4, 4, 1], |i| i as f32)
    }

    #[test]
    fn conv_valid_known_values() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 1),
                },
                &[],
            )
            .unwrap();
        // All-ones 3×3 kernel: output = sum of the 3×3 patch.
        let kernel = Tensor::from_fn(&[3, 3, 1, 1], |_| 1.0);
        let c = g
            .add_with_params(
                "c",
                Op::Conv2d(conv_attrs(1, 3, 1, Padding::Valid, false)),
                &[x],
                Params::with_kernel(kernel),
            )
            .unwrap();
        let out = Executor::new(&g).run_single(ramp4()).unwrap();
        let t = &out[&c];
        // Patch at (0,0): 0+1+2+4+5+6+8+9+10 = 45.
        assert_eq!(t.at3(0, 0, 0), 45.0);
        // Patch at (1,1): 5+6+7+9+10+11+13+14+15 = 90.
        assert_eq!(t.at3(1, 1, 0), 90.0);
    }

    #[test]
    fn conv_same_equals_explicit_pad_plus_valid() {
        let shape = FeatureShape::new(5, 5, 2);
        let input = Tensor::from_fn(&[5, 5, 2], |i| (i as f32 * 0.37).sin());
        let kernel = Tensor::from_fn(&[3, 3, 2, 3], |i| (i as f32 * 0.11).cos());

        let mut g1 = Graph::new("same");
        let x1 = g1.add("input", Op::Input { shape }, &[]).unwrap();
        let c1 = g1
            .add_with_params(
                "c",
                Op::Conv2d(conv_attrs(3, 3, 2, Padding::Same, false)),
                &[x1],
                Params::with_kernel(kernel.clone()),
            )
            .unwrap();

        let mut g2 = Graph::new("padded");
        let x2 = g2.add("input", Op::Input { shape }, &[]).unwrap();
        let pad = Padding::Same.resolve((5, 5), (3, 3), (2, 2)).unwrap();
        let p = g2.add("pad", Op::ZeroPad2d(pad), &[x2]).unwrap();
        let c2 = g2
            .add_with_params(
                "c",
                Op::Conv2d(conv_attrs(3, 3, 2, Padding::Valid, false)),
                &[p],
                Params::with_kernel(kernel),
            )
            .unwrap();

        let o1 = Executor::new(&g1).run_single(input.clone()).unwrap();
        let o2 = Executor::new(&g2).run_single(input).unwrap();
        assert!(o1[&c1].max_abs_diff(&o2[&c2]).unwrap() < 1e-6);
    }

    #[test]
    fn conv_bias_inline_equals_decoupled() {
        let shape = FeatureShape::new(4, 4, 1);
        let input = ramp4();
        let kernel = Tensor::from_fn(&[3, 3, 1, 2], |i| i as f32 * 0.01);
        let bias = Tensor::from_vec(&[2], vec![0.5, -1.5]).unwrap();

        let mut g1 = Graph::new("inline");
        let x1 = g1.add("input", Op::Input { shape }, &[]).unwrap();
        let c1 = g1
            .add_with_params(
                "c",
                Op::Conv2d(conv_attrs(2, 3, 1, Padding::Valid, true)),
                &[x1],
                Params {
                    kernel: Some(kernel.clone()),
                    bias: Some(bias.clone()),
                    bn: None,
                },
            )
            .unwrap();

        let mut g2 = Graph::new("split");
        let x2 = g2.add("input", Op::Input { shape }, &[]).unwrap();
        let c2 = g2
            .add_with_params(
                "c",
                Op::Conv2d(conv_attrs(2, 3, 1, Padding::Valid, false)),
                &[x2],
                Params::with_kernel(kernel),
            )
            .unwrap();
        let b2 = g2
            .add_with_params(
                "b",
                Op::Bias,
                &[c2],
                Params {
                    kernel: None,
                    bias: Some(bias),
                    bn: None,
                },
            )
            .unwrap();

        let o1 = Executor::new(&g1).run_single(input.clone()).unwrap();
        let o2 = Executor::new(&g2).run_single(input).unwrap();
        assert!(o1[&c1].max_abs_diff(&o2[&b2]).unwrap() < 1e-6);
    }

    #[test]
    fn dense_known_values() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(1, 1, 3),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let bias = Tensor::from_vec(&[2], vec![10.0, 20.0]).unwrap();
        let d = g
            .add_with_params(
                "d",
                Op::Dense(DenseAttrs {
                    units: 2,
                    use_bias: true,
                }),
                &[x],
                Params {
                    kernel: Some(kernel),
                    bias: Some(bias),
                    bn: None,
                },
            )
            .unwrap();
        let input = Tensor::from_vec(&[1, 1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let out = Executor::new(&g).run_single(input).unwrap();
        // u0 = 1*1 + 2*0 + 3*1 + 10 = 14; u1 = 0 + 2 + 3 + 20 = 25.
        assert_eq!(out[&d].at3(0, 0, 0), 14.0);
        assert_eq!(out[&d].at3(0, 0, 1), 25.0);
    }

    #[test]
    fn batch_norm_known_values() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(1, 1, 2),
                },
                &[],
            )
            .unwrap();
        let bn = BnParams {
            gamma: Tensor::from_vec(&[2], vec![2.0, 1.0]).unwrap(),
            beta: Tensor::from_vec(&[2], vec![0.0, 5.0]).unwrap(),
            mean: Tensor::from_vec(&[2], vec![1.0, 0.0]).unwrap(),
            var: Tensor::from_vec(&[2], vec![4.0, 1.0]).unwrap(),
        };
        let n = g
            .add_with_params(
                "bn",
                Op::BatchNorm(crate::ops::BatchNormAttrs { eps: 0.0 }),
                &[x],
                Params {
                    kernel: None,
                    bias: None,
                    bn: Some(bn),
                },
            )
            .unwrap();
        let input = Tensor::from_vec(&[1, 1, 2], vec![3.0, 2.0]).unwrap();
        let out = Executor::new(&g).run_single(input).unwrap();
        // c0: (3-1)/2 * 2 + 0 = 2; c1: (2-0)/1 * 1 + 5 = 7.
        assert!((out[&n].at3(0, 0, 0) - 2.0).abs() < 1e-6);
        assert!((out[&n].at3(0, 0, 1) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn max_and_avg_pool() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 1),
                },
                &[],
            )
            .unwrap();
        let attrs = PoolAttrs {
            window: (2, 2),
            stride: (2, 2),
            padding: Padding::Valid,
        };
        let mx = g.add("max", Op::MaxPool2d(attrs), &[x]).unwrap();
        let av = g.add("avg", Op::AvgPool2d(attrs), &[x]).unwrap();
        let out = Executor::new(&g).run_single(ramp4()).unwrap();
        // Top-left window {0,1,4,5}: max 5, avg 2.5.
        assert_eq!(out[&mx].at3(0, 0, 0), 5.0);
        assert_eq!(out[&av].at3(0, 0, 0), 2.5);
        assert_eq!(out[&mx].at3(1, 1, 0), 15.0);
    }

    #[test]
    fn concat_slice_roundtrip() {
        // Slicing an input into two H-halves and concatenating reproduces it.
        let shape = FeatureShape::new(6, 3, 2);
        let mut g = Graph::new("t");
        let x = g.add("input", Op::Input { shape }, &[]).unwrap();
        let top = g
            .add(
                "top",
                Op::Slice(SliceAttrs {
                    offset: (0, 0, 0),
                    size: (3, 3, 2),
                }),
                &[x],
            )
            .unwrap();
        let bot = g
            .add(
                "bot",
                Op::Slice(SliceAttrs {
                    offset: (3, 0, 0),
                    size: (3, 3, 2),
                }),
                &[x],
            )
            .unwrap();
        let cat = g.add("cat", Op::Concat(Axis::H), &[top, bot]).unwrap();
        let input = Tensor::from_fn(&[6, 3, 2], |i| i as f32);
        let out = Executor::new(&g).run_single(input.clone()).unwrap();
        assert_eq!(out[&cat], input);
    }

    #[test]
    fn add_upsample_flatten() {
        let shape = FeatureShape::new(2, 2, 1);
        let mut g = Graph::new("t");
        let x = g.add("input", Op::Input { shape }, &[]).unwrap();
        let a = g.add("a", Op::Add, &[x, x]).unwrap();
        let u = g.add("u", Op::Upsample2d { factor: (2, 2) }, &[a]).unwrap();
        let f = g.add("f", Op::Flatten, &[u]).unwrap();
        let input = Tensor::from_vec(&[2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = Executor::new(&g).run_single(input).unwrap();
        assert_eq!(out[&a].at3(1, 1, 0), 8.0);
        assert_eq!(
            out[&u].at3(0, 1, 0),
            2.0,
            "nearest-neighbour copies the source pixel"
        );
        assert_eq!(out[&u].at3(3, 3, 0), 8.0);
        assert_eq!(out[&f].dims(), &[1, 1, 16]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(1, 1, 4),
                },
                &[],
            )
            .unwrap();
        let s = g.add("s", Op::Softmax, &[x]).unwrap();
        let input = Tensor::from_vec(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = Executor::new(&g).run_single(input).unwrap();
        let sum: f32 = (0..4).map(|c| out[&s].at3(0, 0, c)).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(out[&s].at3(0, 0, 3) > out[&s].at3(0, 0, 0));
    }

    #[test]
    fn quantize_rounds_and_clamps() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(1, 1, 3),
                },
                &[],
            )
            .unwrap();
        let q = g
            .add(
                "q",
                Op::Quantize(QuantAttrs {
                    scale: 0.5,
                    zero_point: 0,
                    bits: 4,
                }),
                &[x],
            )
            .unwrap();
        // 4-bit signed grid: -8..7, scale 0.5 → representable -4.0..3.5.
        let input = Tensor::from_vec(&[1, 1, 3], vec![0.26, 100.0, -100.0]).unwrap();
        let out = Executor::new(&g).run_single(input).unwrap();
        assert_eq!(out[&q].at3(0, 0, 0), 0.5);
        assert_eq!(out[&q].at3(0, 0, 1), 3.5);
        assert_eq!(out[&q].at3(0, 0, 2), -4.0);
    }

    #[test]
    fn zeropad_places_data() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(2, 2, 1),
                },
                &[],
            )
            .unwrap();
        let p = g
            .add("p", Op::ZeroPad2d(PadSpec::new(1, 0, 0, 1)), &[x])
            .unwrap();
        let input = Tensor::from_vec(&[2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = Executor::new(&g).run_single(input).unwrap();
        let t = &out[&p];
        assert_eq!(t.feature_shape().unwrap(), FeatureShape::new(3, 3, 1));
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(1, 0, 0), 1.0);
        assert_eq!(t.at3(2, 1, 0), 4.0);
        assert_eq!(t.at3(2, 2, 0), 0.0);
    }

    #[test]
    fn global_avg_pool_value() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 1),
                },
                &[],
            )
            .unwrap();
        let p = g.add("gap", Op::GlobalAvgPool, &[x]).unwrap();
        let out = Executor::new(&g).run_single(ramp4()).unwrap();
        assert_eq!(out[&p].at3(0, 0, 0), 7.5); // mean of 0..15
    }

    #[test]
    fn missing_input_and_params_errors() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 1),
                },
                &[],
            )
            .unwrap();
        g.add(
            "c",
            Op::Conv2d(conv_attrs(1, 3, 1, Padding::Valid, false)),
            &[x],
        )
        .unwrap();
        let exec = Executor::new(&g);
        let err = exec.run(&HashMap::new()).unwrap_err();
        assert!(matches!(err, IrError::MissingInput { .. }));
        let err = exec.run_single(ramp4()).unwrap_err();
        assert!(matches!(err, IrError::MissingParams { .. }));
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let mut g = Graph::new("t");
        g.add(
            "input",
            Op::Input {
                shape: FeatureShape::new(4, 4, 1),
            },
            &[],
        )
        .unwrap();
        let err = Executor::new(&g)
            .run_single(Tensor::zeros(&[3, 3, 1]))
            .unwrap_err();
        assert!(matches!(err, IrError::TensorShape { .. }));
    }

    #[test]
    fn run_single_rejects_multi_input_graphs() {
        let mut g = Graph::new("t");
        g.add(
            "a",
            Op::Input {
                shape: FeatureShape::new(2, 2, 1),
            },
            &[],
        )
        .unwrap();
        g.add(
            "b",
            Op::Input {
                shape: FeatureShape::new(2, 2, 1),
            },
            &[],
        )
        .unwrap();
        assert!(matches!(
            Executor::new(&g).run_single(Tensor::zeros(&[2, 2, 1])),
            Err(IrError::Invalid { .. })
        ));
    }
}
