//! Operation set of the NN graph IR.
//!
//! Following the paper's terminology (Sec. III-A), operations are split into
//! *base layers* — those lowered to matrix-vector multiplications on the
//! crossbar PEs ([`Op::Conv2d`], [`Op::Dense`]) — and *non-base layers* —
//! everything else, executed on the per-tile general-purpose execution units
//! (GPEUs).

use serde::{Deserialize, Serialize};

use crate::error::{IrError, Result};
use crate::shape::{window_out_extent, FeatureShape, PadSpec, Padding};

/// Activation function applied element-wise by [`Op::Activation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActFn {
    /// Identity.
    Linear,
    /// `max(0, x)`.
    Relu,
    /// `x if x > 0 else alpha * x`.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActFn {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActFn::Linear => x,
            ActFn::Relu => x.max(0.0),
            ActFn::LeakyRelu(a) => {
                if x > 0.0 {
                    x
                } else {
                    a * x
                }
            }
            ActFn::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActFn::Tanh => x.tanh(),
        }
    }
}

/// Attributes of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dAttrs {
    /// Number of output channels (KO in the paper).
    pub out_channels: usize,
    /// Kernel extent `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Padding policy. The frontend partitioning pass canonicalizes this to
    /// [`Padding::Valid`] by extracting an explicit [`Op::ZeroPad2d`].
    pub padding: Padding,
    /// Whether a bias is added by the layer itself. Canonicalized to `false`
    /// (explicit [`Op::Bias`]) by the partitioning pass.
    pub use_bias: bool,
}

/// Attributes of a fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseAttrs {
    /// Number of output units.
    pub units: usize,
    /// Whether a bias is added by the layer itself.
    pub use_bias: bool,
}

/// Attributes of a pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolAttrs {
    /// Pooling window `(ph, pw)`.
    pub window: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Padding policy.
    pub padding: Padding,
}

/// Attributes of batch normalization (inference form).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchNormAttrs {
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Default for BatchNormAttrs {
    fn default() -> Self {
        Self { eps: 1e-3 }
    }
}

/// Attributes of a spatial/channel slice (`tf.slice` equivalent; used by the
/// weight-duplication rewrite of Sec. III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SliceAttrs {
    /// Start offset `(h, w, c)`.
    pub offset: (usize, usize, usize),
    /// Extent `(h, w, c)`.
    pub size: (usize, usize, usize),
}

/// Axis of an HWC feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Height (rows).
    H,
    /// Width (columns).
    W,
    /// Channels.
    C,
}

/// Fake-quantization attributes recorded by the frontend quantization pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantAttrs {
    /// Quantization scale (step size).
    pub scale: f32,
    /// Zero point in the integer grid.
    pub zero_point: i32,
    /// Bit width of the integer grid.
    pub bits: u8,
}

/// A graph operation.
///
/// Every operation has exactly one output feature map; fan-out is expressed
/// by multiple consumers referencing the same producer node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Graph input placeholder.
    Input {
        /// Shape of the supplied feature map.
        shape: FeatureShape,
    },
    /// 2-D convolution — **base layer**.
    Conv2d(Conv2dAttrs),
    /// Fully-connected layer — **base layer**. Input must be `(1, 1, K)`.
    Dense(DenseAttrs),
    /// Adds a per-channel bias vector.
    Bias,
    /// Batch normalization (inference).
    BatchNorm(BatchNormAttrs),
    /// Element-wise activation.
    Activation(ActFn),
    /// Max pooling.
    MaxPool2d(PoolAttrs),
    /// Average pooling.
    AvgPool2d(PoolAttrs),
    /// Global average pooling to `(1, 1, C)`.
    GlobalAvgPool,
    /// Explicit zero padding.
    ZeroPad2d(PadSpec),
    /// Concatenation along an axis; all other dimensions must match.
    Concat(Axis),
    /// Element-wise addition of two identically-shaped maps.
    Add,
    /// Nearest-neighbour upsampling by integer factors.
    Upsample2d {
        /// Scale factors `(fh, fw)`.
        factor: (usize, usize),
    },
    /// Spatial/channel slice.
    Slice(SliceAttrs),
    /// Flattens to `(1, 1, H*W*C)`.
    Flatten,
    /// Softmax over channels.
    Softmax,
    /// Fake quantization marker (rounds values to the integer grid).
    Quantize(QuantAttrs),
}

impl Op {
    /// Short lowercase mnemonic used in names, DOT output and errors.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Conv2d(_) => "conv2d",
            Op::Dense(_) => "dense",
            Op::Bias => "bias",
            Op::BatchNorm(_) => "batch_norm",
            Op::Activation(_) => "activation",
            Op::MaxPool2d(_) => "max_pool2d",
            Op::AvgPool2d(_) => "avg_pool2d",
            Op::GlobalAvgPool => "global_avg_pool",
            Op::ZeroPad2d(_) => "zero_pad2d",
            Op::Concat(_) => "concat",
            Op::Add => "add",
            Op::Upsample2d { .. } => "upsample2d",
            Op::Slice(_) => "slice",
            Op::Flatten => "flatten",
            Op::Softmax => "softmax",
            Op::Quantize(_) => "quantize",
        }
    }

    /// Returns `true` for *base layers*: operations executed as MVMs on the
    /// crossbar PEs (Sec. III-A).
    pub fn is_base(&self) -> bool {
        matches!(self, Op::Conv2d(_) | Op::Dense(_))
    }

    /// Number of inputs this operation requires; `None` means "one or more"
    /// (variadic, e.g. [`Op::Concat`]).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Input { .. } => Some(0),
            Op::Add => Some(2),
            Op::Concat(_) => None,
            _ => Some(1),
        }
    }

    /// Infers the output shape from the input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BadArity`], [`IrError::ShapeMismatch`] or
    /// [`IrError::InvalidAttr`] when the inputs are incompatible with the
    /// operation.
    pub fn infer_shape(&self, inputs: &[FeatureShape]) -> Result<FeatureShape> {
        let op = self.mnemonic();
        match self.arity() {
            Some(n) if inputs.len() != n => {
                return Err(IrError::BadArity {
                    op,
                    expected: match n {
                        0 => "0",
                        1 => "1",
                        2 => "2",
                        _ => "n",
                    },
                    got: inputs.len(),
                });
            }
            None if inputs.is_empty() => {
                return Err(IrError::BadArity {
                    op,
                    expected: ">=1",
                    got: 0,
                });
            }
            _ => {}
        }
        for s in inputs {
            if !s.is_valid() {
                return Err(IrError::ShapeMismatch {
                    op,
                    detail: format!("degenerate input shape {s}"),
                });
            }
        }
        match self {
            Op::Input { shape } => {
                if !shape.is_valid() {
                    return Err(IrError::InvalidAttr {
                        op,
                        detail: format!("degenerate shape {shape}"),
                    });
                }
                Ok(*shape)
            }
            Op::Conv2d(a) => {
                if a.out_channels == 0 {
                    return Err(IrError::InvalidAttr {
                        op,
                        detail: "out_channels must be > 0".into(),
                    });
                }
                let i = inputs[0];
                let pad = a.padding.resolve((i.h, i.w), a.kernel, a.stride)?;
                let (ph, pw) = (i.h + pad.total_h(), i.w + pad.total_w());
                let oh = window_out_extent(ph, a.kernel.0, a.stride.0);
                let ow = window_out_extent(pw, a.kernel.1, a.stride.1);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok(FeatureShape::new(oh, ow, a.out_channels)),
                    _ => Err(IrError::ShapeMismatch {
                        op,
                        detail: format!(
                            "kernel {:?} stride {:?} does not fit input {i}",
                            a.kernel, a.stride
                        ),
                    }),
                }
            }
            Op::Dense(a) => {
                if a.units == 0 {
                    return Err(IrError::InvalidAttr {
                        op,
                        detail: "units must be > 0".into(),
                    });
                }
                let i = inputs[0];
                if i.h != 1 || i.w != 1 {
                    return Err(IrError::ShapeMismatch {
                        op,
                        detail: format!("dense input must be (1, 1, k), got {i}; insert flatten"),
                    });
                }
                Ok(FeatureShape::new(1, 1, a.units))
            }
            Op::Bias | Op::BatchNorm(_) | Op::Activation(_) | Op::Softmax | Op::Quantize(_) => {
                Ok(inputs[0])
            }
            Op::MaxPool2d(a) | Op::AvgPool2d(a) => {
                let i = inputs[0];
                let pad = a.padding.resolve((i.h, i.w), a.window, a.stride)?;
                let (ph, pw) = (i.h + pad.total_h(), i.w + pad.total_w());
                let oh = window_out_extent(ph, a.window.0, a.stride.0);
                let ow = window_out_extent(pw, a.window.1, a.stride.1);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok(FeatureShape::new(oh, ow, i.c)),
                    _ => Err(IrError::ShapeMismatch {
                        op,
                        detail: format!(
                            "window {:?} stride {:?} does not fit input {i}",
                            a.window, a.stride
                        ),
                    }),
                }
            }
            Op::GlobalAvgPool => Ok(FeatureShape::new(1, 1, inputs[0].c)),
            Op::ZeroPad2d(p) => {
                let i = inputs[0];
                Ok(FeatureShape::new(i.h + p.total_h(), i.w + p.total_w(), i.c))
            }
            Op::Concat(axis) => {
                let first = inputs[0];
                let mut out = first;
                for s in &inputs[1..] {
                    match axis {
                        Axis::H => {
                            if s.w != first.w || s.c != first.c {
                                return Err(concat_mismatch(op, first, *s));
                            }
                            out.h += s.h;
                        }
                        Axis::W => {
                            if s.h != first.h || s.c != first.c {
                                return Err(concat_mismatch(op, first, *s));
                            }
                            out.w += s.w;
                        }
                        Axis::C => {
                            if s.h != first.h || s.w != first.w {
                                return Err(concat_mismatch(op, first, *s));
                            }
                            out.c += s.c;
                        }
                    }
                }
                Ok(out)
            }
            Op::Add => {
                if inputs[0] != inputs[1] {
                    return Err(IrError::ShapeMismatch {
                        op,
                        detail: format!("{} vs {}", inputs[0], inputs[1]),
                    });
                }
                Ok(inputs[0])
            }
            Op::Upsample2d { factor } => {
                if factor.0 == 0 || factor.1 == 0 {
                    return Err(IrError::InvalidAttr {
                        op,
                        detail: "factor must be > 0".into(),
                    });
                }
                let i = inputs[0];
                Ok(FeatureShape::new(i.h * factor.0, i.w * factor.1, i.c))
            }
            Op::Slice(a) => {
                let i = inputs[0];
                let (oh, ow, oc) = a.offset;
                let (sh, sw, sc) = a.size;
                if sh == 0 || sw == 0 || sc == 0 {
                    return Err(IrError::InvalidAttr {
                        op,
                        detail: "slice size must be > 0".into(),
                    });
                }
                if oh + sh > i.h || ow + sw > i.w || oc + sc > i.c {
                    return Err(IrError::ShapeMismatch {
                        op,
                        detail: format!(
                            "slice offset {:?} size {:?} exceeds input {i}",
                            a.offset, a.size
                        ),
                    });
                }
                Ok(FeatureShape::new(sh, sw, sc))
            }
            Op::Flatten => {
                let i = inputs[0];
                Ok(FeatureShape::new(1, 1, i.len()))
            }
        }
    }
}

fn concat_mismatch(op: &'static str, a: FeatureShape, b: FeatureShape) -> IrError {
    IrError::ShapeMismatch {
        op,
        detail: format!("incompatible concat inputs {a} and {b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(h: usize, w: usize, c: usize) -> FeatureShape {
        FeatureShape::new(h, w, c)
    }

    fn conv(oc: usize, k: usize, st: usize, padding: Padding) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding,
            use_bias: false,
        })
    }

    #[test]
    fn conv_same_stride2_matches_table1() {
        // conv2d: (416,416,3) -> (208,208,32) with 3×3/2 same.
        let out = conv(32, 3, 2, Padding::Same)
            .infer_shape(&[s(416, 416, 3)])
            .unwrap();
        assert_eq!(out, s(208, 208, 32));
    }

    #[test]
    fn conv_valid_after_explicit_pad_matches_table1() {
        // Partitioned form: pad (417,417,3) then valid conv -> (208,208,32).
        let padded = Op::ZeroPad2d(PadSpec::new(0, 1, 0, 1))
            .infer_shape(&[s(416, 416, 3)])
            .unwrap();
        assert_eq!(padded, s(417, 417, 3));
        let out = conv(32, 3, 2, Padding::Valid)
            .infer_shape(&[padded])
            .unwrap();
        assert_eq!(out, s(208, 208, 32));
    }

    #[test]
    fn conv_rejects_oversized_kernel() {
        assert!(conv(8, 5, 1, Padding::Valid)
            .infer_shape(&[s(3, 3, 1)])
            .is_err());
    }

    #[test]
    fn conv_rejects_zero_channels_and_stride() {
        assert!(conv(0, 3, 1, Padding::Valid)
            .infer_shape(&[s(8, 8, 1)])
            .is_err());
        assert!(conv(4, 3, 0, Padding::Valid)
            .infer_shape(&[s(8, 8, 1)])
            .is_err());
    }

    #[test]
    fn dense_requires_flat_input() {
        let d = Op::Dense(DenseAttrs {
            units: 10,
            use_bias: true,
        });
        assert!(d.infer_shape(&[s(2, 2, 4)]).is_err());
        assert_eq!(d.infer_shape(&[s(1, 1, 16)]).unwrap(), s(1, 1, 10));
    }

    #[test]
    fn pool_same_keeps_ceil_extent() {
        let p = Op::MaxPool2d(PoolAttrs {
            window: (2, 2),
            stride: (2, 2),
            padding: Padding::Same,
        });
        assert_eq!(p.infer_shape(&[s(13, 13, 256)]).unwrap(), s(7, 7, 256));
        // TinyYOLOv3's stride-1 pool keeps the extent.
        let p1 = Op::MaxPool2d(PoolAttrs {
            window: (2, 2),
            stride: (1, 1),
            padding: Padding::Same,
        });
        assert_eq!(p1.infer_shape(&[s(13, 13, 512)]).unwrap(), s(13, 13, 512));
    }

    #[test]
    fn concat_axes() {
        assert_eq!(
            Op::Concat(Axis::C)
                .infer_shape(&[s(26, 26, 128), s(26, 26, 256)])
                .unwrap(),
            s(26, 26, 384)
        );
        assert_eq!(
            Op::Concat(Axis::H)
                .infer_shape(&[s(10, 26, 8), s(16, 26, 8)])
                .unwrap(),
            s(26, 26, 8)
        );
        assert_eq!(
            Op::Concat(Axis::W)
                .infer_shape(&[s(26, 10, 8), s(26, 16, 8)])
                .unwrap(),
            s(26, 26, 8)
        );
        assert!(Op::Concat(Axis::C)
            .infer_shape(&[s(26, 26, 128), s(13, 26, 256)])
            .is_err());
        assert!(Op::Concat(Axis::C).infer_shape(&[]).is_err());
    }

    #[test]
    fn add_requires_equal_shapes() {
        assert_eq!(
            Op::Add.infer_shape(&[s(4, 4, 8), s(4, 4, 8)]).unwrap(),
            s(4, 4, 8)
        );
        assert!(Op::Add.infer_shape(&[s(4, 4, 8), s(4, 4, 9)]).is_err());
        assert!(Op::Add.infer_shape(&[s(4, 4, 8)]).is_err());
    }

    #[test]
    fn slice_bounds_checked() {
        let sl = Op::Slice(SliceAttrs {
            offset: (0, 0, 64),
            size: (26, 26, 64),
        });
        assert_eq!(sl.infer_shape(&[s(26, 26, 128)]).unwrap(), s(26, 26, 64));
        let bad = Op::Slice(SliceAttrs {
            offset: (0, 0, 65),
            size: (26, 26, 64),
        });
        assert!(bad.infer_shape(&[s(26, 26, 128)]).is_err());
    }

    #[test]
    fn upsample_flatten_gap_softmax() {
        assert_eq!(
            Op::Upsample2d { factor: (2, 2) }
                .infer_shape(&[s(13, 13, 128)])
                .unwrap(),
            s(26, 26, 128)
        );
        assert_eq!(
            Op::Flatten.infer_shape(&[s(7, 7, 512)]).unwrap(),
            s(1, 1, 7 * 7 * 512)
        );
        assert_eq!(
            Op::GlobalAvgPool.infer_shape(&[s(7, 7, 2048)]).unwrap(),
            s(1, 1, 2048)
        );
        assert_eq!(
            Op::Softmax.infer_shape(&[s(1, 1, 10)]).unwrap(),
            s(1, 1, 10)
        );
    }

    #[test]
    fn base_layer_classification() {
        assert!(conv(8, 3, 1, Padding::Valid).is_base());
        assert!(Op::Dense(DenseAttrs {
            units: 4,
            use_bias: false
        })
        .is_base());
        assert!(!Op::Add.is_base());
        assert!(!Op::MaxPool2d(PoolAttrs {
            window: (2, 2),
            stride: (2, 2),
            padding: Padding::Valid
        })
        .is_base());
    }

    #[test]
    fn activation_functions() {
        assert_eq!(ActFn::Relu.apply(-1.0), 0.0);
        assert_eq!(ActFn::Relu.apply(2.0), 2.0);
        assert_eq!(ActFn::LeakyRelu(0.1).apply(-2.0), -0.2);
        assert_eq!(ActFn::Linear.apply(-3.5), -3.5);
        assert!((ActFn::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((ActFn::Tanh.apply(0.0)).abs() < 1e-6);
    }
}
