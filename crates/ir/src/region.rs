//! Spatial region (rectangle) arithmetic and per-operation region
//! propagation.
//!
//! This module is the machinery behind CLSA-CIM's Stage II ("determine
//! dependencies", Sec. IV): an OFM set is a hyperrectangle, and the two
//! corner points describing it are propagated along the non-base-layer path
//! between consecutive base layers to find which producer sets influence
//! which consumer sets.
//!
//! Two directions are provided for every op:
//!
//! * [`input_region`] — *backward*: the input region required to compute a
//!   given output region (receptive-field arithmetic). This is exact.
//! * [`output_region`] — *forward*: the output region that a given input
//!   region can influence. Used for soundness checks and buffer-lifetime
//!   analysis.
//!
//! For globally-coupled ops (dense, flatten, global pooling, softmax) both
//! directions conservatively return the full feature map.

use serde::{Deserialize, Serialize};

use crate::ops::{Axis, Op};
use crate::shape::FeatureShape;

/// An inclusive spatial rectangle `[y0..=y1] × [x0..=x1]` in H/W
/// coordinates of a feature map (channels always span the full depth — the
/// minimum MVM unit produces a complete `(1, 1, OC)` vector, Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// First row.
    pub y0: usize,
    /// First column.
    pub x0: usize,
    /// Last row (inclusive).
    pub y1: usize,
    /// Last column (inclusive).
    pub x1: usize,
}

impl Rect {
    /// Creates a rectangle from inclusive corners.
    ///
    /// # Panics
    ///
    /// Panics if `y0 > y1` or `x0 > x1`.
    pub fn new(y0: usize, x0: usize, y1: usize, x1: usize) -> Self {
        assert!(
            y0 <= y1 && x0 <= x1,
            "degenerate rect ({y0},{x0})..({y1},{x1})"
        );
        Self { y0, x0, y1, x1 }
    }

    /// The full spatial extent of a feature map.
    pub fn full(shape: FeatureShape) -> Self {
        Self::new(0, 0, shape.h - 1, shape.w - 1)
    }

    /// A single pixel.
    pub fn pixel(y: usize, x: usize) -> Self {
        Self::new(y, x, y, x)
    }

    /// Number of rows.
    pub const fn height(&self) -> usize {
        self.y1 - self.y0 + 1
    }

    /// Number of columns.
    pub const fn width(&self) -> usize {
        self.x1 - self.x0 + 1
    }

    /// Number of spatial positions covered.
    pub const fn area(&self) -> usize {
        self.height() * self.width()
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let y0 = self.y0.max(other.y0);
        let x0 = self.x0.max(other.x0);
        let y1 = self.y1.min(other.y1);
        let x1 = self.x1.min(other.x1);
        (y0 <= y1 && x0 <= x1).then(|| Rect::new(y0, x0, y1, x1))
    }

    /// Returns `true` if the rectangles share at least one position.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Returns `true` if `other` lies fully inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.y0 <= other.y0 && self.x0 <= other.x0 && self.y1 >= other.y1 && self.x1 >= other.x1
    }

    /// Returns `true` if the pixel `(y, x)` lies inside.
    pub fn contains_pixel(&self, y: usize, x: usize) -> bool {
        self.y0 <= y && y <= self.y1 && self.x0 <= x && x <= self.x1
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.y0.min(other.y0),
            self.x0.min(other.x0),
            self.y1.max(other.y1),
            self.x1.max(other.x1),
        )
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}..={}, {}..={}]", self.y0, self.y1, self.x0, self.x1)
    }
}

/// Backward window mapping along one axis: output range `[o0, o1]` of a
/// windowed op (window `k`, stride `s`, leading padding `p`) requires input
/// range `[o0*s - p, o1*s - p + k - 1]`, clamped to `[0, extent)`.
/// Returns `None` if the required range lies entirely in the padding.
fn window_back(
    o0: usize,
    o1: usize,
    k: usize,
    s: usize,
    p: usize,
    extent: usize,
) -> Option<(usize, usize)> {
    let lo = (o0 * s).saturating_sub(p);
    let hi_unclamped = o1 * s + k - 1;
    if hi_unclamped < p {
        return None; // entirely above/left of the real data
    }
    let hi = (hi_unclamped - p).min(extent - 1);
    (lo < extent).then_some((lo, hi))
}

/// Forward window mapping along one axis: input range `[i0, i1]` influences
/// output positions `o` with `o*s - p <= i1` and `o*s - p + k - 1 >= i0`,
/// clamped to `[0, out_extent)`.
fn window_fwd(
    i0: usize,
    i1: usize,
    k: usize,
    s: usize,
    p: usize,
    out_extent: usize,
) -> Option<(usize, usize)> {
    // o >= ceil((i0 + p - k + 1) / s), o <= floor((i1 + p) / s)
    let lo_num = (i0 + p).saturating_sub(k - 1);
    let lo = lo_num.div_ceil(s);
    let hi = (i1 + p) / s;
    if lo >= out_extent || hi < lo {
        return None;
    }
    Some((lo, hi.min(out_extent - 1)))
}

/// Computes the input region of input `input_idx` required to produce
/// `out` for operation `op`.
///
/// `in_shapes` are the producer shapes and `out_shape` the node's output
/// shape (used to resolve `same` padding and concat offsets).
///
/// Returns `None` when this input does not contribute to the requested
/// output region (e.g. a disjoint branch of an H-axis concat, or a region
/// that lies entirely inside explicit zero padding).
///
/// # Panics
///
/// Panics if `input_idx` is out of range for the operation or `out` exceeds
/// `out_shape` (internal invariants; callers pass validated graphs).
pub fn input_region(
    op: &Op,
    out: Rect,
    in_shapes: &[FeatureShape],
    input_idx: usize,
    out_shape: FeatureShape,
) -> Option<Rect> {
    debug_assert!(
        out.y1 < out_shape.h && out.x1 < out_shape.w,
        "rect {out} outside {out_shape}"
    );
    let ishape = in_shapes[input_idx];
    match op {
        Op::Input { .. } => None,
        Op::Bias
        | Op::BatchNorm(_)
        | Op::Activation(_)
        | Op::Softmax
        | Op::Quantize(_)
        | Op::Add => Some(out),
        Op::Conv2d(a) => {
            let pad = a
                .padding
                .resolve((ishape.h, ishape.w), a.kernel, a.stride)
                .expect("validated conv attrs"); // cim-lint: allow(panic-unwrap) attrs validated at graph construction
            let (y0, y1) = window_back(out.y0, out.y1, a.kernel.0, a.stride.0, pad.top, ishape.h)?;
            let (x0, x1) = window_back(out.x0, out.x1, a.kernel.1, a.stride.1, pad.left, ishape.w)?;
            Some(Rect::new(y0, x0, y1, x1))
        }
        Op::MaxPool2d(a) | Op::AvgPool2d(a) => {
            let pad = a
                .padding
                .resolve((ishape.h, ishape.w), a.window, a.stride)
                .expect("validated pool attrs"); // cim-lint: allow(panic-unwrap) attrs validated at graph construction
            let (y0, y1) = window_back(out.y0, out.y1, a.window.0, a.stride.0, pad.top, ishape.h)?;
            let (x0, x1) = window_back(out.x0, out.x1, a.window.1, a.stride.1, pad.left, ishape.w)?;
            Some(Rect::new(y0, x0, y1, x1))
        }
        Op::ZeroPad2d(p) => {
            // Input occupies rows [p.top, p.top + ih) of the output.
            let data = Rect::new(p.top, p.left, p.top + ishape.h - 1, p.left + ishape.w - 1);
            let hit = out.intersect(&data)?;
            Some(Rect::new(
                hit.y0 - p.top,
                hit.x0 - p.left,
                hit.y1 - p.top,
                hit.x1 - p.left,
            ))
        }
        Op::Concat(axis) => {
            // Branch `input_idx` owns a contiguous span along `axis`.
            let mut off = 0usize;
            for s in &in_shapes[..input_idx] {
                off += match axis {
                    Axis::H => s.h,
                    Axis::W => s.w,
                    Axis::C => s.c,
                };
            }
            match axis {
                Axis::C => Some(out), // channels always fully consumed
                Axis::H => {
                    let span = Rect::new(off, 0, off + ishape.h - 1, out_shape.w - 1);
                    let hit = out.intersect(&span)?;
                    Some(Rect::new(hit.y0 - off, hit.x0, hit.y1 - off, hit.x1))
                }
                Axis::W => {
                    let span = Rect::new(0, off, out_shape.h - 1, off + ishape.w - 1);
                    let hit = out.intersect(&span)?;
                    Some(Rect::new(hit.y0, hit.x0 - off, hit.y1, hit.x1 - off))
                }
            }
        }
        Op::Upsample2d { factor } => Some(Rect::new(
            out.y0 / factor.0,
            out.x0 / factor.1,
            out.y1 / factor.0,
            out.x1 / factor.1,
        )),
        Op::Slice(a) => Some(Rect::new(
            out.y0 + a.offset.0,
            out.x0 + a.offset.1,
            out.y1 + a.offset.0,
            out.x1 + a.offset.1,
        )),
        Op::Dense(_) | Op::Flatten | Op::GlobalAvgPool => Some(Rect::full(ishape)),
    }
}

/// Computes the output region that input region `inp` of input `input_idx`
/// can influence for operation `op` (forward direction).
///
/// Returns `None` when the input region cannot influence any output (e.g.
/// sliced away).
pub fn output_region(
    op: &Op,
    inp: Rect,
    in_shapes: &[FeatureShape],
    input_idx: usize,
    out_shape: FeatureShape,
) -> Option<Rect> {
    let ishape = in_shapes[input_idx];
    match op {
        Op::Input { .. } => None,
        Op::Bias
        | Op::BatchNorm(_)
        | Op::Activation(_)
        | Op::Softmax
        | Op::Quantize(_)
        | Op::Add => Some(inp),
        Op::Conv2d(a) => {
            let pad = a
                .padding
                .resolve((ishape.h, ishape.w), a.kernel, a.stride)
                .expect("validated conv attrs"); // cim-lint: allow(panic-unwrap) attrs validated at graph construction
            let (y0, y1) =
                window_fwd(inp.y0, inp.y1, a.kernel.0, a.stride.0, pad.top, out_shape.h)?;
            let (x0, x1) = window_fwd(
                inp.x0,
                inp.x1,
                a.kernel.1,
                a.stride.1,
                pad.left,
                out_shape.w,
            )?;
            Some(Rect::new(y0, x0, y1, x1))
        }
        Op::MaxPool2d(a) | Op::AvgPool2d(a) => {
            let pad = a
                .padding
                .resolve((ishape.h, ishape.w), a.window, a.stride)
                .expect("validated pool attrs"); // cim-lint: allow(panic-unwrap) attrs validated at graph construction
            let (y0, y1) =
                window_fwd(inp.y0, inp.y1, a.window.0, a.stride.0, pad.top, out_shape.h)?;
            let (x0, x1) = window_fwd(
                inp.x0,
                inp.x1,
                a.window.1,
                a.stride.1,
                pad.left,
                out_shape.w,
            )?;
            Some(Rect::new(y0, x0, y1, x1))
        }
        Op::ZeroPad2d(p) => Some(Rect::new(
            inp.y0 + p.top,
            inp.x0 + p.left,
            inp.y1 + p.top,
            inp.x1 + p.left,
        )),
        Op::Concat(axis) => {
            let mut off = 0usize;
            for s in &in_shapes[..input_idx] {
                off += match axis {
                    Axis::H => s.h,
                    Axis::W => s.w,
                    Axis::C => s.c,
                };
            }
            match axis {
                Axis::C => Some(inp),
                Axis::H => Some(Rect::new(inp.y0 + off, inp.x0, inp.y1 + off, inp.x1)),
                Axis::W => Some(Rect::new(inp.y0, inp.x0 + off, inp.y1, inp.x1 + off)),
            }
        }
        Op::Upsample2d { factor } => Some(Rect::new(
            inp.y0 * factor.0,
            inp.x0 * factor.1,
            (inp.y1 + 1) * factor.0 - 1,
            (inp.x1 + 1) * factor.1 - 1,
        )),
        Op::Slice(a) => {
            let keep = Rect::new(
                a.offset.0,
                a.offset.1,
                a.offset.0 + a.size.0 - 1,
                a.offset.1 + a.size.1 - 1,
            );
            let hit = inp.intersect(&keep)?;
            Some(Rect::new(
                hit.y0 - a.offset.0,
                hit.x0 - a.offset.1,
                hit.y1 - a.offset.0,
                hit.x1 - a.offset.1,
            ))
        }
        Op::Dense(_) | Op::Flatten | Op::GlobalAvgPool => Some(Rect::full(out_shape)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Conv2dAttrs, PoolAttrs, SliceAttrs};
    use crate::shape::{PadSpec, Padding};

    fn s(h: usize, w: usize, c: usize) -> FeatureShape {
        FeatureShape::new(h, w, c)
    }

    fn conv(k: usize, st: usize, padding: Padding) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: 8,
            kernel: (k, k),
            stride: (st, st),
            padding,
            use_bias: false,
        })
    }

    #[test]
    fn rect_basics() {
        let a = Rect::new(0, 0, 3, 3);
        let b = Rect::new(2, 2, 5, 5);
        assert_eq!(a.area(), 16);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 3, 3)));
        assert_eq!(a.union(&b), Rect::new(0, 0, 5, 5));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&Rect::new(4, 4, 5, 5)));
        assert!(a.contains(&Rect::new(1, 1, 2, 2)));
        assert!(!a.contains(&b));
        assert!(a.contains_pixel(3, 0));
        assert!(!a.contains_pixel(4, 0));
        assert_eq!(Rect::pixel(2, 3), Rect::new(2, 3, 2, 3));
        assert_eq!(Rect::full(s(4, 6, 1)), Rect::new(0, 0, 3, 5));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(3, 0, 1, 3);
    }

    #[test]
    fn conv_valid_receptive_field() {
        // 3×3/1 valid conv on 8×8: output pixel (0,0) needs input rows 0..=2.
        let op = conv(3, 1, Padding::Valid);
        let r = input_region(&op, Rect::pixel(0, 0), &[s(8, 8, 3)], 0, s(6, 6, 8)).unwrap();
        assert_eq!(r, Rect::new(0, 0, 2, 2));
        let r = input_region(&op, Rect::new(2, 1, 5, 4), &[s(8, 8, 3)], 0, s(6, 6, 8)).unwrap();
        assert_eq!(r, Rect::new(2, 1, 7, 6));
    }

    #[test]
    fn conv_stride2_receptive_field() {
        let op = conv(3, 2, Padding::Valid);
        // input 9×9 -> output 4×4; output row 1 needs input rows 2..=4.
        let r = input_region(&op, Rect::pixel(1, 1), &[s(9, 9, 3)], 0, s(4, 4, 8)).unwrap();
        assert_eq!(r, Rect::new(2, 2, 4, 4));
    }

    #[test]
    fn conv_same_padding_clamps() {
        let op = conv(3, 1, Padding::Same);
        // First output pixel needs only rows 0..=1 (row -1 is padding).
        let r = input_region(&op, Rect::pixel(0, 0), &[s(8, 8, 3)], 0, s(8, 8, 8)).unwrap();
        assert_eq!(r, Rect::new(0, 0, 1, 1));
        // Last pixel clamps at the bottom-right.
        let r = input_region(&op, Rect::pixel(7, 7), &[s(8, 8, 3)], 0, s(8, 8, 8)).unwrap();
        assert_eq!(r, Rect::new(6, 6, 7, 7));
    }

    #[test]
    fn zeropad_pure_padding_region_is_none() {
        let op = Op::ZeroPad2d(PadSpec::uniform(2));
        // Output rows 0..=1 are entirely padding.
        assert_eq!(
            input_region(&op, Rect::new(0, 0, 1, 11), &[s(8, 8, 3)], 0, s(12, 12, 3)),
            None
        );
        // Mixed region clamps to the data part.
        let r = input_region(&op, Rect::new(0, 0, 4, 4), &[s(8, 8, 3)], 0, s(12, 12, 3)).unwrap();
        assert_eq!(r, Rect::new(0, 0, 2, 2));
    }

    #[test]
    fn concat_h_routes_to_owning_branch() {
        let op = Op::Concat(Axis::H);
        let shapes = [s(10, 26, 8), s(16, 26, 8)];
        let out_shape = s(26, 26, 8);
        // Rows 0..=9 belong to branch 0.
        let r = input_region(&op, Rect::new(0, 0, 9, 25), &shapes, 0, out_shape).unwrap();
        assert_eq!(r, Rect::new(0, 0, 9, 25));
        assert_eq!(
            input_region(&op, Rect::new(0, 0, 9, 25), &shapes, 1, out_shape),
            None
        );
        // Rows 10..=25 belong to branch 1 (shifted).
        let r = input_region(&op, Rect::new(10, 0, 25, 25), &shapes, 1, out_shape).unwrap();
        assert_eq!(r, Rect::new(0, 0, 15, 25));
        // A straddling region hits both.
        assert!(input_region(&op, Rect::new(8, 0, 12, 25), &shapes, 0, out_shape).is_some());
        assert!(input_region(&op, Rect::new(8, 0, 12, 25), &shapes, 1, out_shape).is_some());
    }

    #[test]
    fn concat_c_passes_region_to_all_branches() {
        let op = Op::Concat(Axis::C);
        let shapes = [s(26, 26, 128), s(26, 26, 256)];
        let out_shape = s(26, 26, 384);
        let rect = Rect::new(3, 4, 7, 9);
        assert_eq!(input_region(&op, rect, &shapes, 0, out_shape), Some(rect));
        assert_eq!(input_region(&op, rect, &shapes, 1, out_shape), Some(rect));
    }

    #[test]
    fn upsample_and_slice() {
        let up = Op::Upsample2d { factor: (2, 2) };
        let r = input_region(
            &up,
            Rect::new(0, 0, 25, 25),
            &[s(13, 13, 8)],
            0,
            s(26, 26, 8),
        )
        .unwrap();
        assert_eq!(r, Rect::new(0, 0, 12, 12));
        let r = input_region(&up, Rect::new(3, 3, 4, 4), &[s(13, 13, 8)], 0, s(26, 26, 8)).unwrap();
        assert_eq!(r, Rect::new(1, 1, 2, 2));

        let sl = Op::Slice(SliceAttrs {
            offset: (4, 0, 0),
            size: (4, 8, 3),
        });
        let r = input_region(&sl, Rect::new(0, 0, 3, 7), &[s(8, 8, 3)], 0, s(4, 8, 3)).unwrap();
        assert_eq!(r, Rect::new(4, 0, 7, 7));
    }

    #[test]
    fn global_ops_need_everything() {
        let gap = Op::GlobalAvgPool;
        let r = input_region(&gap, Rect::pixel(0, 0), &[s(7, 7, 512)], 0, s(1, 1, 512)).unwrap();
        assert_eq!(r, Rect::full(s(7, 7, 512)));
    }

    #[test]
    fn forward_conv_matches_backward() {
        // For each output pixel, forward(backward(pixel)) must contain it.
        let op = conv(3, 2, Padding::Same);
        let ishape = s(11, 11, 3);
        let oshape = op.infer_shape(&[ishape]).unwrap();
        for y in 0..oshape.h {
            for x in 0..oshape.w {
                let back = input_region(&op, Rect::pixel(y, x), &[ishape], 0, oshape).unwrap();
                let fwd = output_region(&op, back, &[ishape], 0, oshape).unwrap();
                assert!(
                    fwd.contains_pixel(y, x),
                    "pixel ({y},{x}) back {back} fwd {fwd}"
                );
            }
        }
    }

    #[test]
    fn forward_window_edges() {
        // Input pixel 0 with 3×3/2 same (pad 0 top for 8->4): influences outputs 0..=0.
        let op = conv(3, 2, Padding::Valid);
        let ishape = s(9, 9, 1);
        let oshape = op.infer_shape(&[ishape]).unwrap();
        let f = output_region(&op, Rect::pixel(0, 0), &[ishape], 0, oshape).unwrap();
        assert_eq!(f, Rect::pixel(0, 0));
        let f = output_region(&op, Rect::pixel(8, 8), &[ishape], 0, oshape).unwrap();
        assert_eq!(f, Rect::pixel(3, 3));
        // Middle pixel influences two windows per axis.
        let f = output_region(&op, Rect::pixel(4, 4), &[ishape], 0, oshape).unwrap();
        assert_eq!(f, Rect::new(1, 1, 2, 2));
    }

    #[test]
    fn forward_slice_disjoint_is_none() {
        let sl = Op::Slice(SliceAttrs {
            offset: (4, 0, 0),
            size: (4, 8, 3),
        });
        assert_eq!(
            output_region(&sl, Rect::new(0, 0, 3, 7), &[s(8, 8, 3)], 0, s(4, 8, 3)),
            None
        );
        let r = output_region(&sl, Rect::new(3, 0, 5, 7), &[s(8, 8, 3)], 0, s(4, 8, 3)).unwrap();
        assert_eq!(r, Rect::new(0, 0, 1, 7));
    }

    /// Soundness of Stage-II region propagation, checked per operation:
    /// for every output pixel `o` and every input pixel `i` inside
    /// `input_region(op, {o})`, the forward image `output_region(op, {i})`
    /// must contain `o`. This adjointness makes backward propagation a safe
    /// overapproximation of true data flow.
    mod adjointness {
        use super::*;
        use proptest::prelude::*;

        /// Strategy over (op, input shape) pairs covering every op kind
        /// with spatially interesting behaviour.
        fn arb_case() -> impl Strategy<Value = (Op, FeatureShape)> {
            let shape = (4usize..12, 4usize..12, 1usize..4)
                .prop_map(|(h, w, c)| FeatureShape::new(h, w, c));
            let conv =
                (shape, 1usize..4, 1usize..3, proptest::bool::ANY).prop_map(|(sh, k, st, same)| {
                    let padding = if same { Padding::Same } else { Padding::Valid };
                    (
                        Op::Conv2d(Conv2dAttrs {
                            out_channels: 2,
                            kernel: (k, k),
                            stride: (st, st),
                            padding,
                            use_bias: false,
                        }),
                        sh,
                    )
                });
            let shape2 = (4usize..12, 4usize..12, 1usize..4)
                .prop_map(|(h, w, c)| FeatureShape::new(h, w, c));
            let pool = (shape2, 2usize..4, 1usize..3, proptest::bool::ANY).prop_map(
                |(sh, k, st, same)| {
                    let padding = if same { Padding::Same } else { Padding::Valid };
                    (
                        Op::MaxPool2d(PoolAttrs {
                            window: (k, k),
                            stride: (st, st),
                            padding,
                        }),
                        sh,
                    )
                },
            );
            let shape3 = (4usize..12, 4usize..12, 1usize..4)
                .prop_map(|(h, w, c)| FeatureShape::new(h, w, c));
            let pad = (shape3, 0usize..3, 0usize..3, 0usize..3, 0usize..3)
                .prop_map(|(sh, t, b, l, r)| (Op::ZeroPad2d(PadSpec::new(t, b, l, r)), sh));
            let shape4 = (4usize..12, 4usize..12, 1usize..4)
                .prop_map(|(h, w, c)| FeatureShape::new(h, w, c));
            let up = (shape4, 1usize..3, 1usize..3)
                .prop_map(|(sh, fh, fw)| (Op::Upsample2d { factor: (fh, fw) }, sh));
            let shape5 = (4usize..12, 4usize..12, 1usize..4)
                .prop_map(|(h, w, c)| FeatureShape::new(h, w, c));
            let slice = shape5.prop_flat_map(|sh| {
                (0..sh.h, 0..sh.w).prop_flat_map(move |(oy, ox)| {
                    (1..=sh.h - oy, 1..=sh.w - ox).prop_map(move |(szh, szw)| {
                        (
                            Op::Slice(SliceAttrs {
                                offset: (oy, ox, 0),
                                size: (szh, szw, sh.c),
                            }),
                            sh,
                        )
                    })
                })
            });
            let shape6 = (4usize..12, 4usize..12, 1usize..4)
                .prop_map(|(h, w, c)| FeatureShape::new(h, w, c));
            let elementwise = shape6.prop_map(|sh| (Op::Activation(crate::ops::ActFn::Relu), sh));
            prop_oneof![conv, pool, pad, up, slice, elementwise]
        }

        proptest! {
            #[test]
            fn prop_backward_forward_adjoint((op, ishape) in arb_case()) {
                let Ok(oshape) = op.infer_shape(&[ishape]) else {
                    // Window larger than input etc. — nothing to check.
                    return Ok(());
                };
                for oy in 0..oshape.h {
                    for ox in 0..oshape.w {
                        let o = Rect::pixel(oy, ox);
                        let Some(back) = input_region(&op, o, &[ishape], 0, oshape) else {
                            continue; // output comes entirely from padding
                        };
                        prop_assert!(back.y1 < ishape.h && back.x1 < ishape.w);
                        for iy in back.y0..=back.y1 {
                            for ix in back.x0..=back.x1 {
                                let fwd = output_region(
                                    &op,
                                    Rect::pixel(iy, ix),
                                    &[ishape],
                                    0,
                                    oshape,
                                );
                                let covered = fwd.is_some_and(|f| f.contains_pixel(oy, ox));
                                prop_assert!(
                                    covered,
                                    "{}: input ({iy},{ix}) in backward of ({oy},{ox}) \
                                     but forward image misses it",
                                    op.mnemonic()
                                );
                            }
                        }
                    }
                }
            }

            /// The backward region of the full output always covers the
            /// backward region of any sub-rectangle (monotonicity).
            #[test]
            fn prop_backward_monotone((op, ishape) in arb_case()) {
                let Ok(oshape) = op.infer_shape(&[ishape]) else {
                    return Ok(());
                };
                let full_back =
                    input_region(&op, Rect::full(oshape), &[ishape], 0, oshape);
                for oy in 0..oshape.h {
                    let row = Rect::new(oy, 0, oy, oshape.w - 1);
                    if let Some(r) = input_region(&op, row, &[ishape], 0, oshape) {
                        let full = full_back.expect("full output needs some input");
                        prop_assert!(
                            full.contains(&r),
                            "{}: row {oy} backward {r} escapes full backward {full}",
                            op.mnemonic()
                        );
                    }
                }
            }
        }
    }
}
