//! # cim-ir — NN graph IR for computing-in-memory scheduling
//!
//! This crate is the foundation of the CLSA-CIM reproduction (Pelke et al.,
//! DATE 2024): a small neural-network graph intermediate representation that
//! the preprocessing passes, the weight-duplication mapper, and the
//! cross-layer scheduler all operate on.
//!
//! It provides:
//!
//! * [`FeatureShape`], [`Padding`], [`PadSpec`] — HWC feature-map shapes and
//!   TensorFlow-compatible padding arithmetic ([`shape`]).
//! * [`Op`] and attribute types — the operation set split into *base layers*
//!   (executed as matrix-vector multiplications on crossbar PEs) and
//!   *non-base layers* (executed on per-tile GPEUs) ([`ops`]).
//! * [`Graph`] — an append-only DAG with shape inference and validation
//!   ([`graph`]).
//! * [`Rect`], [`input_region`], [`output_region`] — the rectangle
//!   propagation machinery behind CLSA-CIM's Stage II ([`region`]).
//! * [`Tensor`] and [`Executor`] — a dense `f32` tensor plus a reference CPU
//!   executor used to prove that graph rewrites (batch-norm folding, weight
//!   duplication) preserve numerics ([`tensor`], [`exec`]).
//! * [`to_dot`] — Graphviz export for debugging and figures ([`dot`]).
//!
//! # Examples
//!
//! Build a two-layer CNN and run it through the reference executor:
//!
//! ```
//! use cim_ir::{Conv2dAttrs, Executor, FeatureShape, Graph, Op, Padding, Params, Tensor};
//!
//! # fn main() -> Result<(), cim_ir::IrError> {
//! let mut g = Graph::new("toy");
//! let x = g.add("input", Op::Input { shape: FeatureShape::new(4, 4, 1) }, &[])?;
//! let conv = Op::Conv2d(Conv2dAttrs {
//!     out_channels: 2,
//!     kernel: (3, 3),
//!     stride: (1, 1),
//!     padding: Padding::Valid,
//!     use_bias: false,
//! });
//! let kernel = Tensor::from_fn(&[3, 3, 1, 2], |i| i as f32 * 0.1);
//! let c = g.add_with_params("conv", conv, &[x], Params::with_kernel(kernel))?;
//! let out = Executor::new(&g).run_single(Tensor::from_fn(&[4, 4, 1], |i| i as f32))?;
//! assert_eq!(out[&c].feature_shape()?, FeatureShape::new(2, 2, 2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod error;
pub mod exec;
pub mod graph;
pub mod ops;
pub mod region;
pub mod shape;
pub mod tensor;

pub use dot::to_dot;
pub use error::{IrError, Result};
pub use exec::Executor;
pub use graph::{BnParams, Graph, Node, NodeId, Params};
pub use ops::{
    ActFn, Axis, BatchNormAttrs, Conv2dAttrs, DenseAttrs, Op, PoolAttrs, QuantAttrs, SliceAttrs,
};
pub use region::{input_region, output_region, Rect};
pub use shape::{window_out_extent, FeatureShape, PadSpec, Padding};
pub use tensor::Tensor;
