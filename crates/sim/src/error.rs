//! Error type of the simulator.

use std::fmt;

/// Errors produced by the discrete-event engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The workload inputs are inconsistent.
    BadWorkload {
        /// Human-readable description.
        detail: String,
    },
    /// The simulation stalled with unfinished sets — a dependency cycle or
    /// a dependency on a missing set.
    Deadlock {
        /// Sets completed before the stall.
        completed: usize,
        /// Total sets in the workload.
        total: usize,
    },
    /// An edge-cost evaluation failed.
    EdgeCost(clsa_core::CoreError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadWorkload { detail } => write!(f, "bad workload: {detail}"),
            SimError::Deadlock { completed, total } => {
                write!(f, "simulation deadlocked after {completed} of {total} sets")
            }
            SimError::EdgeCost(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::EdgeCost(e) => Some(e),
            _ => None,
        }
    }
}

impl From<clsa_core::CoreError> for SimError {
    fn from(e: clsa_core::CoreError) -> Self {
        SimError::EdgeCost(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::BadWorkload { detail: "x".into() }
            .to_string()
            .contains("x"));
        let d = SimError::Deadlock {
            completed: 3,
            total: 9,
        };
        assert!(d.to_string().contains("3 of 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
