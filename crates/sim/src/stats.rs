//! Simulation statistics: per-group activity, NoC traffic, buffer pressure,
//! and energy.

use cim_arch::EnergyLog;
use serde::{Deserialize, Serialize};

/// Activity of one PE group (one base layer) during the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GroupStats {
    /// Cycles the group spent executing MVMs.
    pub active_cycles: u64,
    /// Cycles between the group's first start and last finish that were
    /// spent waiting (stall bubbles inside the group's busy window).
    pub stall_cycles: u64,
    /// Sets executed.
    pub sets_executed: usize,
}

/// NoC traffic of one hop-distance class (all messages whose XY route is
/// `hops` links long).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HopClassStats {
    /// Route length in mesh hops.
    pub hops: u64,
    /// Messages delivered over routes of this length.
    pub messages: u64,
    /// Total bytes moved over routes of this length.
    pub bytes: u64,
    /// Peak bytes simultaneously in flight on routes of this length.
    pub peak_inflight_bytes: u64,
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Per layer (Stage-I order).
    pub groups: Vec<GroupStats>,
    /// Data-dependency messages delivered (Stage-II edges fired).
    pub messages: u64,
    /// Total activation bytes moved across those edges (one byte per OFM
    /// element, 8-bit activations).
    pub bytes_moved: u64,
    /// Peak bytes of live (produced, not yet fully consumed) sets — a
    /// lower bound on aggregate buffer requirements.
    pub peak_live_bytes: u64,
    /// Events processed by the engine.
    pub events: u64,
    /// Energy accounting (MVM ops; transfers are added when an
    /// architecture-aware edge cost is used).
    pub energy: EnergyLog,
    /// Per hop-distance traffic totals and peaks, sorted by `hops` with
    /// only non-empty classes present. Empty under [`EdgeCost::Free`]
    /// (nothing moves over the NoC in the paper's peak model).
    ///
    /// [`EdgeCost::Free`]: clsa_core::EdgeCost::Free
    pub hop_profile: Vec<HopClassStats>,
    /// Peak bytes simultaneously in flight across the whole NoC (every
    /// message counts from its send to its arrival). `0` under
    /// [`EdgeCost::Free`].
    ///
    /// [`EdgeCost::Free`]: clsa_core::EdgeCost::Free
    pub peak_inflight_bytes: u64,
}

impl SimStats {
    /// Total active cycles over all groups.
    pub fn total_active_cycles(&self) -> u64 {
        self.groups.iter().map(|g| g.active_cycles).sum()
    }

    /// Returns `true` when the observed peak of live forwarded data fits
    /// the architecture's aggregate tile-buffer capacity. The paper's
    /// hardware requirements include per-tile buffers plus "fast access to
    /// a global DRAM for data exchange" — a `false` here means the
    /// schedule leans on the DRAM path.
    pub fn fits_buffers(&self, arch: &cim_arch::Architecture) -> bool {
        let capacity = arch.num_tiles() as u64 * arch.tile().buffer_bytes as u64;
        self.peak_live_bytes <= capacity
    }

    /// Fraction of the aggregate buffer capacity used at the peak.
    pub fn buffer_pressure(&self, arch: &cim_arch::Architecture) -> f64 {
        let capacity = arch.num_tiles() as u64 * arch.tile().buffer_bytes as u64;
        self.peak_live_bytes as f64 / capacity as f64
    }

    /// Attributes the per-group activity to physical tiles through a
    /// placement: entry `t` is the total active PE-cycles of tile `t`'s
    /// crossbars (a Fig. 6a/6b-style activity heatmap over the floorplan).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadWorkload`] when `placement` does not provide
    /// one group per recorded layer.
    ///
    /// [`SimError::BadWorkload`]: crate::SimError::BadWorkload
    pub fn tile_active_pe_cycles(
        &self,
        arch: &cim_arch::Architecture,
        placement: &cim_arch::Placement,
    ) -> crate::error::Result<Vec<u64>> {
        if placement.len() != self.groups.len() {
            return Err(crate::error::SimError::BadWorkload {
                detail: format!(
                    "placement has {} groups for {} recorded layers",
                    placement.len(),
                    self.groups.len()
                ),
            });
        }
        let mut tiles = vec![0u64; arch.num_tiles()];
        for (g, stats) in self.groups.iter().enumerate() {
            for pe in placement.pes(g) {
                let tile =
                    arch.tile_of(pe.index())
                        .map_err(|e| crate::error::SimError::BadWorkload {
                            detail: e.to_string(),
                        })?;
                tiles[tile.index()] += stats.active_cycles;
            }
        }
        Ok(tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_groups() {
        let stats = SimStats {
            groups: vec![
                GroupStats {
                    active_cycles: 10,
                    stall_cycles: 2,
                    sets_executed: 3,
                },
                GroupStats {
                    active_cycles: 5,
                    stall_cycles: 0,
                    sets_executed: 1,
                },
            ],
            ..SimStats::default()
        };
        assert_eq!(stats.total_active_cycles(), 15);
    }

    #[test]
    fn serde_round_trip() {
        let stats = SimStats::default();
        let s = serde_json::to_string(&stats).unwrap();
        assert_eq!(serde_json::from_str::<SimStats>(&s).unwrap(), stats);
    }

    #[test]
    fn tile_activity_attribution() {
        // 2 groups of 2 and 1 PEs on 2-PE tiles: group 0 fills tile 0,
        // group 1 starts tile 1.
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 2,
                ..cim_arch::TileSpec::isaac_like()
            })
            .pes(4)
            .build()
            .unwrap();
        let placement =
            cim_arch::place_groups(&arch, &[2, 1], cim_arch::PlacementStrategy::Contiguous)
                .unwrap();
        let stats = SimStats {
            groups: vec![
                GroupStats {
                    active_cycles: 10,
                    stall_cycles: 0,
                    sets_executed: 1,
                },
                GroupStats {
                    active_cycles: 7,
                    stall_cycles: 0,
                    sets_executed: 1,
                },
            ],
            ..SimStats::default()
        };
        let tiles = stats.tile_active_pe_cycles(&arch, &placement).unwrap();
        assert_eq!(tiles, vec![20, 7]);
        // Mismatched placement rejected.
        let bad =
            cim_arch::place_groups(&arch, &[1], cim_arch::PlacementStrategy::Contiguous).unwrap();
        assert!(stats.tile_active_pe_cycles(&arch, &bad).is_err());
    }

    #[test]
    fn buffer_fit_thresholds() {
        let arch = cim_arch::Architecture::paper_case_study(8).unwrap();
        let capacity = arch.num_tiles() as u64 * arch.tile().buffer_bytes as u64;
        let mut stats = SimStats {
            peak_live_bytes: capacity,
            ..SimStats::default()
        };
        assert!(stats.fits_buffers(&arch));
        assert!((stats.buffer_pressure(&arch) - 1.0).abs() < 1e-12);
        stats.peak_live_bytes = capacity + 1;
        assert!(!stats.fits_buffers(&arch));
    }
}
