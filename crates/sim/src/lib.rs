//! # cim-sim — discrete-event system-level simulator
//!
//! The paper evaluates CLSA-CIM with "a custom system-level simulator,
//! similar to previous works" (Sec. V). This crate is that substrate: an
//! event-driven engine that executes the Stage-I/II workload on the tiled
//! architecture model, tracking per-group activity, NoC traffic, buffer
//! pressure, and energy.
//!
//! The engine is *independent* of the analytic longest-path scheduler in
//! `clsa-core`: it maintains a ready queue and an event heap and discovers
//! start times operationally. Under the paper's peak-performance assumptions
//! the two must agree exactly — a cross-check exercised by this crate's
//! tests and by workspace-level property tests.
//!
//! # Examples
//!
//! ```
//! use cim_arch::CrossbarSpec;
//! use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
//! use cim_mapping::{layer_costs, MappingOptions};
//! use clsa_core::{determine_dependencies, determine_sets, EdgeCost, SetPolicy};
//! use cim_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("t");
//! let x = g.add("input", Op::Input { shape: FeatureShape::new(10, 10, 3) }, &[])?;
//! let c1 = g.add("c1", Op::Conv2d(Conv2dAttrs {
//!     out_channels: 8, kernel: (3, 3), stride: (1, 1),
//!     padding: Padding::Valid, use_bias: false,
//! }), &[x])?;
//! g.add("c2", Op::Conv2d(Conv2dAttrs {
//!     out_channels: 8, kernel: (3, 3), stride: (1, 1),
//!     padding: Padding::Valid, use_bias: false,
//! }), &[c1])?;
//! let costs = layer_costs(&g, &CrossbarSpec::wan_nature_2022(), &MappingOptions::default())?;
//! let layers = determine_sets(&g, &costs, &SetPolicy::finest())?;
//! let deps = determine_dependencies(&g, &layers)?;
//! let result = Simulator::new(&layers, &deps).run(&EdgeCost::Free)?;
//! // Must agree with the analytic engine.
//! let analytic = clsa_core::cross_layer_schedule(&layers, &deps, &EdgeCost::Free)?;
//! assert_eq!(result.schedule.makespan, analytic.makespan);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod shared;
pub mod stats;

pub use engine::{SimResult, Simulator};
pub use error::{Result, SimError};
pub use shared::{run_shared, FabricContention, SharedOutcome, TenantOutcome, TenantWorkload};
pub use stats::{GroupStats, HopClassStats, SimStats};
