//! The discrete-event engine.
//!
//! State machine: every base layer is a PE group that executes its Stage-I
//! sets strictly in order; a set may start once all its Stage-II producer
//! sets have *arrived* (finish time plus the NoC forwarding delay under the
//! data-movement extension). Completions are the only events; the heap is
//! ordered by time with `(layer, set)` as a deterministic tie-breaker.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cim_arch::EnergyLog;
use clsa_core::{CostedDeps, Dependencies, EdgeCost, LayerSets, Schedule, SetTime};
use serde::{Deserialize, Serialize};

use crate::error::{Result, SimError};
use crate::stats::{GroupStats, SimStats};

/// The simulator: borrows a Stage-I/II workload and executes it.
#[derive(Debug)]
pub struct Simulator<'a> {
    layers: &'a [LayerSets],
    deps: &'a Dependencies,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// The operationally discovered schedule (same shape as the analytic
    /// engine's output).
    pub schedule: Schedule,
    /// Activity, traffic, buffer, and energy statistics.
    pub stats: SimStats,
}

// Simulations run concurrently over shared workloads in the sweep runner;
// the engine borrows its inputs immutably and keeps all run state local.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Simulator<'_>>();
    assert_send_sync::<SimResult>();
};

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given Stage-I/II outputs.
    pub fn new(layers: &'a [LayerSets], deps: &'a Dependencies) -> Self {
        Self { layers, deps }
    }

    /// Runs the workload to completion under the given edge-cost model.
    ///
    /// Edge latencies are precomputed once (see [`CostedDeps`]); callers
    /// that already hold the table of this `(mapping, EdgeCost)` pair
    /// should use [`run_costed`](Self::run_costed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadWorkload`] when the inputs disagree and
    /// [`SimError::Deadlock`] when unfinished sets remain after the event
    /// heap drains (cyclic or forward dependencies).
    pub fn run(&self, edge_cost: &EdgeCost) -> Result<SimResult> {
        let costed = CostedDeps::build(self.layers, self.deps, edge_cost)
            .map_err(|e| SimError::BadWorkload {
                detail: e.to_string(),
            })?;
        self.run_costed(&costed)
    }

    /// [`run`](Self::run) on a prebuilt [`CostedDeps`] table: every edge
    /// delivery reads a precomputed `u64` latency (and hop count, for
    /// energy accounting) from the fan-out CSR instead of re-deriving the
    /// cost model per message.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_costed(&self, costed: &CostedDeps) -> Result<SimResult> {
        let layers = self.layers;
        if self.deps.num_layers() != layers.len() {
            return Err(SimError::BadWorkload {
                detail: format!(
                    "dependencies cover {} layers, sets cover {}",
                    self.deps.num_layers(),
                    layers.len()
                ),
            });
        }
        if !costed.matches(self.deps) {
            return Err(SimError::BadWorkload {
                detail: "cost table was built from different dependencies".into(),
            });
        }
        if !costed.has_fanout() {
            return Err(SimError::BadWorkload {
                detail: "event engine needs a cost table built with the fan-out CSR \
                         (use CostedDeps::build, not a consumer-only table)"
                    .into(),
            });
        }
        let space = costed.space();
        let total = space.total_sets();
        let idx = |l: usize, s: usize| space.index(l, s);

        let mut indegree = vec![0u32; total];
        for (l, layer) in layers.iter().enumerate() {
            for s in 0..layer.sets.len() {
                indegree[idx(l, s)] = self.deps.of(l, s).len() as u32;
            }
        }
        let mut ready_time = vec![0u64; total];
        let mut next = vec![0usize; layers.len()];
        let mut group_free = vec![0u64; layers.len()];
        let mut first_start = vec![u64::MAX; layers.len()];
        let mut started = vec![false; total];
        let mut times = vec![
            SetTime {
                start: 0,
                finish: 0
            };
            total
        ];

        // Buffer-pressure bookkeeping: bytes of a produced set stay live
        // until all consuming edges have fired (8-bit activations) — byte
        // counts come precomputed per set.
        let mut pending_consumers: Vec<u32> = vec![0; total];
        let mut live_bytes = 0u64;
        let mut peak_live_bytes = 0u64;

        let mut stats = SimStats {
            groups: vec![GroupStats::default(); layers.len()],
            ..SimStats::default()
        };
        let mut energy = EnergyLog::new();

        // Event heap: Reverse ordering on (finish, layer, set).
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
        let mut completed = 0usize;

        // Attempts to start layer `l`'s current set; pushes its completion.
        macro_rules! try_start {
            ($l:expr) => {{
                let l = $l;
                let s = next[l];
                if s < layers[l].sets.len() {
                    let i = idx(l, s);
                    if !started[i] && indegree[i] == 0 {
                        let start = group_free[l].max(ready_time[i]);
                        let finish = start + layers[l].sets[s].duration;
                        started[i] = true;
                        times[i] = SetTime { start, finish };
                        group_free[l] = finish;
                        first_start[l] = first_start[l].min(start);
                        heap.push(Reverse((finish, l, s)));
                    }
                }
            }};
        }

        for l in 0..layers.len() {
            try_start!(l);
        }

        let mut makespan = 0u64;
        let mut last_finish = vec![0u64; layers.len()];
        while let Some(Reverse((t, l, s))) = heap.pop() {
            stats.events += 1;
            completed += 1;
            makespan = makespan.max(t);
            last_finish[l] = last_finish[l].max(t);
            let g = &mut stats.groups[l];
            g.active_cycles += layers[l].sets[s].duration;
            g.sets_executed += 1;
            energy.record_mvms(layers[l].sets[s].duration * layers[l].pes as u64);

            // Chain: the group moves on to its next set.
            next[l] = s + 1;
            try_start!(l);

            // Data edges: deliver this set to its consumers — latency,
            // byte count, and hop count all precomputed.
            let produced = idx(l, s);
            let bytes = costed.set_bytes(l, s);
            let (consumers, latencies, hops) = costed.outgoing(produced);
            if !consumers.is_empty() {
                pending_consumers[produced] = consumers.len() as u32;
                live_bytes += bytes;
                peak_live_bytes = peak_live_bytes.max(live_bytes);
            }
            for ((c, &delay), &edge_hops) in consumers.iter().zip(latencies).zip(hops) {
                let ci = idx(c.layer, c.set);
                ready_time[ci] = ready_time[ci].max(t + delay);
                indegree[ci] -= 1;
                stats.messages += 1;
                stats.bytes_moved += bytes;
                if costed.tracks_transfers() {
                    energy.record_transfer(bytes, edge_hops);
                }
                try_start!(c.layer);
            }

            // Release producer buffers whose last consuming edge was this
            // completed set's own dependencies.
            for p in self.deps.of(l, s) {
                let pi = idx(p.layer, p.set);
                pending_consumers[pi] -= 1;
                if pending_consumers[pi] == 0 {
                    live_bytes -= costed.set_bytes(p.layer, p.set);
                }
            }
        }

        if completed != total {
            return Err(SimError::Deadlock { completed, total });
        }
        for l in 0..layers.len() {
            if first_start[l] != u64::MAX {
                let span = last_finish[l] - first_start[l];
                stats.groups[l].stall_cycles = span - stats.groups[l].active_cycles;
            }
        }
        stats.peak_live_bytes = peak_live_bytes;
        stats.energy = energy;
        Ok(SimResult {
            schedule: Schedule::from_arena(space.clone(), times, makespan),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, Graph, Op, PadSpec, Padding, PoolAttrs, Rect};
    use cim_mapping::{layer_costs, MappingOptions};
    use clsa_core::{
        cross_layer_schedule, determine_dependencies, determine_sets, validate_schedule, OfmSet,
        SetPolicy, SetRef,
    };
    use proptest::prelude::*;

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    /// The paper's Fig. 5 style pipeline with a pooling non-base path.
    fn fig5_graph() -> Graph {
        let mut g = Graph::new("fig5");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(18, 18, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("conv1", conv_op(8, 3, 1), &[x]).unwrap();
        let a = g.add("act", Op::Activation(ActFn::Relu), &[c1]).unwrap();
        let p = g
            .add(
                "pool",
                Op::MaxPool2d(PoolAttrs {
                    window: (2, 2),
                    stride: (2, 2),
                    padding: Padding::Valid,
                }),
                &[a],
            )
            .unwrap();
        let pad = g
            .add("pad", Op::ZeroPad2d(PadSpec::uniform(1)), &[p])
            .unwrap();
        let c2 = g.add("conv2", conv_op(8, 3, 1), &[pad]).unwrap();
        g.add("conv3", conv_op(8, 3, 1), &[c2]).unwrap();
        g
    }

    fn stages(g: &Graph, policy: &SetPolicy) -> (Vec<LayerSets>, Dependencies) {
        let costs = layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(g, &costs, policy).unwrap();
        let deps = determine_dependencies(g, &layers).unwrap();
        (layers, deps)
    }

    #[test]
    fn agrees_with_analytic_engine() {
        let g = fig5_graph();
        for policy in [
            SetPolicy::finest(),
            SetPolicy::coarse(4),
            SetPolicy::coarse(1),
        ] {
            let (layers, deps) = stages(&g, &policy);
            let analytic = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
            let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
            assert_eq!(sim.schedule, analytic, "policy {policy:?}");
            validate_schedule(&layers, &deps, &sim.schedule, &EdgeCost::Free).unwrap();
        }
    }

    #[test]
    fn agrees_with_analytic_engine_under_noc_cost() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 1,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(7)
            .pes(layers.len())
            .build()
            .unwrap();
        let sizes: Vec<usize> = layers.iter().map(|l| l.pes).collect();
        let placement =
            cim_arch::place_groups(&arch, &sizes, cim_arch::PlacementStrategy::Contiguous).unwrap();
        let cost = EdgeCost::NocHops { arch, placement };
        let analytic = cross_layer_schedule(&layers, &deps, &cost).unwrap();
        let sim = Simulator::new(&layers, &deps).run(&cost).unwrap();
        assert_eq!(sim.schedule, analytic);
        assert!(
            sim.stats.energy.byte_hops > 0,
            "transfers must be accounted"
        );
    }

    #[test]
    fn agrees_with_analytic_engine_under_gpeu_cost() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 2,
                gpeu_ops_per_cycle: 32,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(3)
            .pes(layers.len())
            .build()
            .unwrap();
        let sizes: Vec<usize> = layers.iter().map(|l| l.pes).collect();
        let placement =
            cim_arch::place_groups(&arch, &sizes, cim_arch::PlacementStrategy::Contiguous).unwrap();
        let cost = EdgeCost::NocAndGpeu { arch, placement };
        let analytic = cross_layer_schedule(&layers, &deps, &cost).unwrap();
        let sim = Simulator::new(&layers, &deps).run(&cost).unwrap();
        assert_eq!(sim.schedule, analytic);
        let free = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        assert!(
            analytic.makespan > free.makespan,
            "GPEU work must cost time"
        );
    }

    #[test]
    fn stats_account_all_work() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
        let expected_active: u64 = layers.iter().map(|l| l.total_cycles()).sum();
        assert_eq!(sim.stats.total_active_cycles(), expected_active);
        assert_eq!(sim.stats.messages, deps.num_edges() as u64);
        assert_eq!(
            sim.stats.events,
            layers.iter().map(|l| l.sets.len() as u64).sum::<u64>()
        );
        assert!(sim.stats.peak_live_bytes > 0);
        // MVM energy: every set-cycle × group PEs.
        let expected_mvms: u64 = layers.iter().map(|l| l.total_cycles() * l.pes as u64).sum();
        assert_eq!(sim.stats.energy.mvm_ops, expected_mvms);
    }

    #[test]
    fn deadlock_detected_on_forward_dependency() {
        let g = fig5_graph();
        let (layers, _) = stages(&g, &SetPolicy::coarse(2));
        let sets_per_layer: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
        // Layer 0 depends on layer 2 and vice versa — a cycle.
        let deps = Dependencies::from_edges(
            &sets_per_layer,
            &[
                (SetRef { layer: 0, set: 0 }, SetRef { layer: 2, set: 0 }),
                (SetRef { layer: 2, set: 0 }, SetRef { layer: 0, set: 0 }),
            ],
        )
        .unwrap();
        let err = Simulator::new(&layers, &deps)
            .run(&EdgeCost::Free)
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let err = Simulator::new(&layers[..1], &deps)
            .run(&EdgeCost::Free)
            .unwrap_err();
        assert!(matches!(err, SimError::BadWorkload { .. }));
    }

    #[test]
    fn stall_cycles_expose_dependency_bubbles() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
        // conv1 streams uninterrupted; downstream layers stall on producers.
        assert_eq!(sim.stats.groups[0].stall_cycles, 0);
        // conv2 row bands arrive every 2 producer rows — it must stall
        // between its pool-quantized inputs.
        assert!(sim.stats.groups[1].stall_cycles > 0);
    }

    /// Random layered workloads: synthetic sets and random backward edges.
    fn arb_workload() -> impl Strategy<Value = (Vec<LayerSets>, Vec<(SetRef, SetRef)>)> {
        let layer = (1usize..6, 1u64..20, 1usize..4);
        proptest::collection::vec(layer, 1..6).prop_flat_map(|spec| {
            let layers: Vec<LayerSets> = spec
                .iter()
                .enumerate()
                .map(|(i, &(nsets, dur, pes))| LayerSets {
                    node: cim_ir::NodeId(i as u32),
                    name: format!("l{i}"),
                    logical: i as u32,
                    ofm: FeatureShape::new(nsets, dur as usize, 1),
                    pes,
                    quantum: 1,
                    sets: (0..nsets)
                        .map(|y| OfmSet {
                            rect: Rect::new(y, 0, y, dur as usize - 1),
                            duration: dur,
                        })
                        .collect(),
                })
                .collect();
            let n_layers = layers.len();
            let sets_per: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
            if n_layers < 2 {
                return Just((layers, Vec::new())).boxed();
            }
            let edge = (0usize..1024, 0usize..1024, 0usize..1024).prop_map(move |(a, cs, ps)| {
                let cl = 1 + a % (n_layers - 1); // strictly later layer
                let pl = ps % cl; // strictly earlier layer
                let consumer = SetRef {
                    layer: cl,
                    set: cs % sets_per[cl],
                };
                let producer = SetRef {
                    layer: pl,
                    set: (cs + ps) % sets_per[pl],
                };
                (consumer, producer)
            });
            proptest::collection::vec(edge, 0..20)
                .prop_map(move |edges| (layers.clone(), edges))
                .boxed()
        })
    }

    proptest! {
        /// The event-driven engine and the longest-path DP agree on every
        /// random workload — the central cross-validation of both engines.
        #[test]
        fn prop_sim_equals_analytic((layers, edges) in arb_workload()) {
            let sets_per: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
            let deps = Dependencies::from_edges(&sets_per, &edges).unwrap();
            let analytic = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
            let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
            prop_assert_eq!(&sim.schedule, &analytic);
            validate_schedule(&layers, &deps, &sim.schedule, &EdgeCost::Free).unwrap();
        }
    }
}
