//! The discrete-event engine.
//!
//! State machine: every base layer is a PE group that executes its Stage-I
//! sets strictly in order; a set may start once all its Stage-II producer
//! sets have *arrived* (finish time plus the NoC forwarding delay under the
//! data-movement extension). Completions are the only events; the heap is
//! ordered by time with `(layer, set)` as a deterministic tie-breaker.
//!
//! Since the multi-tenant fabric extension, the event loop itself lives in
//! [`crate::shared`]: [`Simulator::run_costed`] is the `N == 1` special
//! case of the shared ready-queue/heap core, run on an uncontended fabric.

use clsa_core::{CostedDeps, Dependencies, EdgeCost, LayerSets, Schedule};
use serde::{Deserialize, Serialize};

use crate::error::{Result, SimError};
use crate::shared::{run_shared, FabricContention, TenantWorkload};
use crate::stats::SimStats;

/// The simulator: borrows a Stage-I/II workload and executes it.
#[derive(Debug)]
pub struct Simulator<'a> {
    layers: &'a [LayerSets],
    deps: &'a Dependencies,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// The operationally discovered schedule (same shape as the analytic
    /// engine's output).
    pub schedule: Schedule,
    /// Activity, traffic, buffer, and energy statistics.
    pub stats: SimStats,
}

// Simulations run concurrently over shared workloads in the sweep runner;
// the engine borrows its inputs immutably and keeps all run state local.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Simulator<'_>>();
    assert_send_sync::<SimResult>();
};

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given Stage-I/II outputs.
    pub fn new(layers: &'a [LayerSets], deps: &'a Dependencies) -> Self {
        Self { layers, deps }
    }

    /// Runs the workload to completion under the given edge-cost model.
    ///
    /// Edge latencies are precomputed once (see [`CostedDeps`]); callers
    /// that already hold the table of this `(mapping, EdgeCost)` pair
    /// should use [`run_costed`](Self::run_costed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadWorkload`] when the inputs disagree and
    /// [`SimError::Deadlock`] when unfinished sets remain after the event
    /// heap drains (cyclic or forward dependencies).
    pub fn run(&self, edge_cost: &EdgeCost) -> Result<SimResult> {
        let costed = CostedDeps::build(self.layers, self.deps, edge_cost)
            .map_err(|e| SimError::BadWorkload {
                detail: e.to_string(),
            })?;
        self.run_costed(&costed)
    }

    /// [`run`](Self::run) on a prebuilt [`CostedDeps`] table: every edge
    /// delivery reads a precomputed `u64` latency (and hop count, for
    /// energy accounting) from the fan-out CSR instead of re-deriving the
    /// cost model per message.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_costed(&self, costed: &CostedDeps) -> Result<SimResult> {
        // The single-tenant run is the N = 1 special case of the shared
        // fabric core: arrival 0, no home tiles, no contention.
        let workload = TenantWorkload {
            layers: self.layers,
            deps: self.deps,
            costed,
            arrival: 0,
            home_tiles: None,
        };
        let mut outcome = run_shared(
            std::slice::from_ref(&workload),
            &FabricContention::uncontended(),
        )?;
        match outcome.tenants.pop() {
            Some(tenant) => Ok(tenant.result),
            None => Err(SimError::BadWorkload {
                detail: "shared core returned no tenant outcome".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, Graph, Op, PadSpec, Padding, PoolAttrs, Rect};
    use cim_mapping::{layer_costs, MappingOptions};
    use clsa_core::{
        cross_layer_schedule, determine_dependencies, determine_sets, validate_schedule, OfmSet,
        SetPolicy, SetRef,
    };
    use proptest::prelude::*;

    fn conv_op(oc: usize, k: usize, st: usize) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding: Padding::Valid,
            use_bias: false,
        })
    }

    /// The paper's Fig. 5 style pipeline with a pooling non-base path.
    fn fig5_graph() -> Graph {
        let mut g = Graph::new("fig5");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(18, 18, 3),
                },
                &[],
            )
            .unwrap();
        let c1 = g.add("conv1", conv_op(8, 3, 1), &[x]).unwrap();
        let a = g.add("act", Op::Activation(ActFn::Relu), &[c1]).unwrap();
        let p = g
            .add(
                "pool",
                Op::MaxPool2d(PoolAttrs {
                    window: (2, 2),
                    stride: (2, 2),
                    padding: Padding::Valid,
                }),
                &[a],
            )
            .unwrap();
        let pad = g
            .add("pad", Op::ZeroPad2d(PadSpec::uniform(1)), &[p])
            .unwrap();
        let c2 = g.add("conv2", conv_op(8, 3, 1), &[pad]).unwrap();
        g.add("conv3", conv_op(8, 3, 1), &[c2]).unwrap();
        g
    }

    fn stages(g: &Graph, policy: &SetPolicy) -> (Vec<LayerSets>, Dependencies) {
        let costs = layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let layers = determine_sets(g, &costs, policy).unwrap();
        let deps = determine_dependencies(g, &layers).unwrap();
        (layers, deps)
    }

    #[test]
    fn agrees_with_analytic_engine() {
        let g = fig5_graph();
        for policy in [
            SetPolicy::finest(),
            SetPolicy::coarse(4),
            SetPolicy::coarse(1),
        ] {
            let (layers, deps) = stages(&g, &policy);
            let analytic = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
            let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
            assert_eq!(sim.schedule, analytic, "policy {policy:?}");
            validate_schedule(&layers, &deps, &sim.schedule, &EdgeCost::Free).unwrap();
        }
    }

    #[test]
    fn agrees_with_analytic_engine_under_noc_cost() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 1,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(7)
            .pes(layers.len())
            .build()
            .unwrap();
        let sizes: Vec<usize> = layers.iter().map(|l| l.pes).collect();
        let placement =
            cim_arch::place_groups(&arch, &sizes, cim_arch::PlacementStrategy::Contiguous).unwrap();
        let cost = EdgeCost::NocHops { arch, placement };
        let analytic = cross_layer_schedule(&layers, &deps, &cost).unwrap();
        let sim = Simulator::new(&layers, &deps).run(&cost).unwrap();
        assert_eq!(sim.schedule, analytic);
        assert!(
            sim.stats.energy.byte_hops > 0,
            "transfers must be accounted"
        );
    }

    #[test]
    fn agrees_with_analytic_engine_under_gpeu_cost() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let arch = cim_arch::Architecture::builder()
            .tile(cim_arch::TileSpec {
                pes_per_tile: 2,
                gpeu_ops_per_cycle: 32,
                ..cim_arch::TileSpec::isaac_like()
            })
            .noc_hop_latency(3)
            .pes(layers.len())
            .build()
            .unwrap();
        let sizes: Vec<usize> = layers.iter().map(|l| l.pes).collect();
        let placement =
            cim_arch::place_groups(&arch, &sizes, cim_arch::PlacementStrategy::Contiguous).unwrap();
        let cost = EdgeCost::NocAndGpeu { arch, placement };
        let analytic = cross_layer_schedule(&layers, &deps, &cost).unwrap();
        let sim = Simulator::new(&layers, &deps).run(&cost).unwrap();
        assert_eq!(sim.schedule, analytic);
        let free = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
        assert!(
            analytic.makespan > free.makespan,
            "GPEU work must cost time"
        );
    }

    #[test]
    fn stats_account_all_work() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
        let expected_active: u64 = layers.iter().map(|l| l.total_cycles()).sum();
        assert_eq!(sim.stats.total_active_cycles(), expected_active);
        assert_eq!(sim.stats.messages, deps.num_edges() as u64);
        assert_eq!(
            sim.stats.events,
            layers.iter().map(|l| l.sets.len() as u64).sum::<u64>()
        );
        assert!(sim.stats.peak_live_bytes > 0);
        // MVM energy: every set-cycle × group PEs.
        let expected_mvms: u64 = layers.iter().map(|l| l.total_cycles() * l.pes as u64).sum();
        assert_eq!(sim.stats.energy.mvm_ops, expected_mvms);
    }

    #[test]
    fn deadlock_detected_on_forward_dependency() {
        let g = fig5_graph();
        let (layers, _) = stages(&g, &SetPolicy::coarse(2));
        let sets_per_layer: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
        // Layer 0 depends on layer 2 and vice versa — a cycle.
        let deps = Dependencies::from_edges(
            &sets_per_layer,
            &[
                (SetRef { layer: 0, set: 0 }, SetRef { layer: 2, set: 0 }),
                (SetRef { layer: 2, set: 0 }, SetRef { layer: 0, set: 0 }),
            ],
        )
        .unwrap();
        let err = Simulator::new(&layers, &deps)
            .run(&EdgeCost::Free)
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let err = Simulator::new(&layers[..1], &deps)
            .run(&EdgeCost::Free)
            .unwrap_err();
        assert!(matches!(err, SimError::BadWorkload { .. }));
    }

    #[test]
    fn stall_cycles_expose_dependency_bubbles() {
        let g = fig5_graph();
        let (layers, deps) = stages(&g, &SetPolicy::finest());
        let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
        // conv1 streams uninterrupted; downstream layers stall on producers.
        assert_eq!(sim.stats.groups[0].stall_cycles, 0);
        // conv2 row bands arrive every 2 producer rows — it must stall
        // between its pool-quantized inputs.
        assert!(sim.stats.groups[1].stall_cycles > 0);
    }

    /// Random layered workloads: synthetic sets and random backward edges.
    fn arb_workload() -> impl Strategy<Value = (Vec<LayerSets>, Vec<(SetRef, SetRef)>)> {
        let layer = (1usize..6, 1u64..20, 1usize..4);
        proptest::collection::vec(layer, 1..6).prop_flat_map(|spec| {
            let layers: Vec<LayerSets> = spec
                .iter()
                .enumerate()
                .map(|(i, &(nsets, dur, pes))| LayerSets {
                    node: cim_ir::NodeId(i as u32),
                    name: format!("l{i}"),
                    logical: i as u32,
                    ofm: FeatureShape::new(nsets, dur as usize, 1),
                    pes,
                    quantum: 1,
                    sets: (0..nsets)
                        .map(|y| OfmSet {
                            rect: Rect::new(y, 0, y, dur as usize - 1),
                            duration: dur,
                        })
                        .collect(),
                })
                .collect();
            let n_layers = layers.len();
            let sets_per: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
            if n_layers < 2 {
                return Just((layers, Vec::new())).boxed();
            }
            let edge = (0usize..1024, 0usize..1024, 0usize..1024).prop_map(move |(a, cs, ps)| {
                let cl = 1 + a % (n_layers - 1); // strictly later layer
                let pl = ps % cl; // strictly earlier layer
                let consumer = SetRef {
                    layer: cl,
                    set: cs % sets_per[cl],
                };
                let producer = SetRef {
                    layer: pl,
                    set: (cs + ps) % sets_per[pl],
                };
                (consumer, producer)
            });
            proptest::collection::vec(edge, 0..20)
                .prop_map(move |edges| (layers.clone(), edges))
                .boxed()
        })
    }

    proptest! {
        /// The event-driven engine and the longest-path DP agree on every
        /// random workload — the central cross-validation of both engines.
        #[test]
        fn prop_sim_equals_analytic((layers, edges) in arb_workload()) {
            let sets_per: Vec<usize> = layers.iter().map(|l| l.sets.len()).collect();
            let deps = Dependencies::from_edges(&sets_per, &edges).unwrap();
            let analytic = cross_layer_schedule(&layers, &deps, &EdgeCost::Free).unwrap();
            let sim = Simulator::new(&layers, &deps).run(&EdgeCost::Free).unwrap();
            prop_assert_eq!(&sim.schedule, &analytic);
            validate_schedule(&layers, &deps, &sim.schedule, &EdgeCost::Free).unwrap();
        }
    }
}
