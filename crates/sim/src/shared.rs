//! The shared-fabric event core: N tenant event streams over one chip.
//!
//! This is the engine behind both [`Simulator`](crate::Simulator) and the
//! multi-tenant fabric simulation in `cim-fabric`. One event heap
//! interleaves every tenant's completions, ordered by `(finish, tenant,
//! layer, set)` — the single-tenant path is literally the `N == 1` special
//! case with an uncontended fabric, so the two can never drift apart.
//!
//! Three contention points are modelled, all inactive under
//! [`FabricContention::uncontended`]:
//!
//! * **Tile occupancy** — a tile executes one tenant's sets at a time.
//!   Ownership is tracked as a rolling window per tile: same-tenant
//!   bookings extend the window freely; a cross-tenant booking waits until
//!   the current window ends (arbitration is reservation-order, which is
//!   event-order, which is deterministic).
//! * **Link bandwidth** — a finite per-link byte budget serializes
//!   cross-tile messages: each message reserves every directed link of its
//!   XY route for `ceil(bytes / bandwidth)` cycles, injecting when the
//!   busiest link on the route frees up.
//! * **Weight residency** — each (tenant, layer) weight block occupies
//!   `pes` units of fabric capacity while resident. When a booking would
//!   overflow the capacity, least-recently-used blocks are evicted; an
//!   evicted block charges `pes × reload_cycles_per_pe` cycles on its next
//!   booking (the first-ever load is free — weights are pre-programmed).
//!
//! Determinism law: the outcome is a pure function of the workloads (in
//! slice order) and the fabric spec. No clocks, no entropy, no
//! iteration-order-dependent state (all shared maps are B-trees keyed by
//! plain integers).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, BTreeMap};

use cim_arch::{EnergyLog, FabricSpec, NocSpec, TileId};
use clsa_core::{CostedDeps, Dependencies, LayerSets, Schedule, SetTime};

use crate::engine::SimResult;
use crate::error::{Result, SimError};
use crate::stats::{GroupStats, HopClassStats, SimStats};

/// One tenant's workload: the Stage-I/II artifacts plus its fabric
/// context (arrival time and per-group home tiles).
#[derive(Debug)]
pub struct TenantWorkload<'a> {
    /// Stage-I sets of every base layer.
    pub layers: &'a [LayerSets],
    /// Stage-II dependencies over those sets.
    pub deps: &'a Dependencies,
    /// Precomputed edge-cost tables (must match `deps` and carry the
    /// fan-out CSR).
    pub costed: &'a CostedDeps,
    /// Cycle at which this tenant's first set may start.
    pub arrival: u64,
    /// Home tile per PE group (one per layer). `None` disables tile
    /// occupancy and link contention for this tenant — the single-tenant
    /// compatibility mode.
    pub home_tiles: Option<Vec<TileId>>,
}

/// The fabric's shared-resource model for one run.
#[derive(Debug, Clone, Default)]
pub struct FabricContention {
    /// Mesh geometry for link routing. `None` disables the link model
    /// even if a bandwidth limit is set.
    pub noc: Option<NocSpec>,
    /// Capacity and bandwidth limits (zeros = unbounded).
    pub spec: FabricSpec,
}

impl FabricContention {
    /// The idle-chip model: no geometry, no limits. [`run_shared`] under
    /// this contention is byte-identical to the single-tenant engine.
    pub fn uncontended() -> Self {
        Self::default()
    }
}

/// Per-tenant outcome of a shared run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// The tenant's schedule and statistics, in absolute fabric time
    /// (start times are ≥ the tenant's arrival).
    pub result: SimResult,
    /// Last finish minus arrival — the tenant's observed makespan.
    pub span_cycles: u64,
    /// Cycles of tile-ownership windows attributed to this tenant,
    /// summed over tiles. Windows on one tile never overlap, so
    /// Σ_tenants `busy_cycles` ≤ tiles × makespan (the conservation law).
    pub busy_cycles: u64,
    /// Cycles this tenant's sets were pushed back waiting for a tile
    /// owned by another tenant.
    pub occupancy_stall_cycles: u64,
    /// Cycles this tenant's messages waited for busy NoC links.
    pub link_stall_cycles: u64,
    /// Cycles spent re-programming evicted weight blocks.
    pub reload_cycles: u64,
    /// This tenant's weight blocks evicted by anyone (including itself).
    pub evictions: u64,
    /// Reloads this tenant paid for (bookings that found their block
    /// evicted).
    pub reloads: u64,
}

/// Outcome of one shared-fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedOutcome {
    /// Per-tenant outcomes, in workload order.
    pub tenants: Vec<TenantOutcome>,
    /// Last finish over all tenants.
    pub makespan: u64,
}

/// A directed mesh link between two adjacent coordinates.
type Link = ((usize, usize), (usize, usize));

/// Rolling tile-ownership window (see module docs).
struct Window {
    owner: usize,
    start: u64,
    until: u64,
}

/// One resident weight block.
struct Block {
    pes: usize,
    last_use: u64,
}

/// Shared mutable fabric state, updated in event order.
#[derive(Default)]
struct FabricState {
    /// Tile id → current ownership window.
    windows: BTreeMap<u32, Window>,
    /// Directed link → cycle at which it frees up.
    link_free: BTreeMap<Link, u64>,
    /// (from tile, to tile) → cached XY route as directed links.
    routes: BTreeMap<(u32, u32), Vec<Link>>,
    /// (tenant, layer) → resident weight block.
    resident: BTreeMap<(usize, usize), Block>,
    /// PEs of capacity currently occupied by resident blocks.
    used_pes: usize,
    /// Booking sequence counter driving LRU recency.
    lru_seq: u64,
}

/// In-flight byte tracking for one message class (min-heap on arrival).
#[derive(Default)]
struct InflightTracker {
    inflight: u64,
    peak: u64,
    arrivals: BinaryHeap<Reverse<(u64, u64)>>,
}

impl InflightTracker {
    fn send(&mut self, now: u64, arrival: u64, bytes: u64) {
        while let Some(&Reverse((at, b))) = self.arrivals.peek() {
            if at > now {
                break;
            }
            self.inflight -= b;
            self.arrivals.pop();
        }
        self.arrivals.push(Reverse((arrival, bytes)));
        self.inflight += bytes;
        self.peak = self.peak.max(self.inflight);
    }
}

/// Hop-class accumulator (messages, bytes, in-flight peak).
#[derive(Default)]
struct HopClass {
    messages: u64,
    bytes: u64,
    inflight: InflightTracker,
}

/// Per-tenant mutable run state (the single-tenant engine's locals, one
/// copy per tenant).
struct TenantState {
    indegree: Vec<u32>,
    ready: Vec<u64>,
    next: Vec<usize>,
    group_free: Vec<u64>,
    first_start: Vec<u64>,
    last_finish: Vec<u64>,
    started: Vec<bool>,
    times: Vec<SetTime>,
    pending_consumers: Vec<u32>,
    live_bytes: u64,
    peak_live_bytes: u64,
    stats: SimStats,
    energy: EnergyLog,
    ever_loaded: Vec<bool>,
    completed: usize,
    total: usize,
    makespan: u64,
    hop_classes: BTreeMap<u64, HopClass>,
    noc_inflight: InflightTracker,
    busy_cycles: u64,
    occupancy_stall: u64,
    link_stall: u64,
    reload_cycles: u64,
    evictions: u64,
    reloads: u64,
}

impl TenantState {
    fn new(w: &TenantWorkload<'_>) -> Self {
        let total = w.costed.space().total_sets();
        let n_layers = w.layers.len();
        let mut indegree = vec![0u32; total];
        for (l, layer) in w.layers.iter().enumerate() {
            for s in 0..layer.sets.len() {
                indegree[w.costed.space().index(l, s)] = w.deps.of(l, s).len() as u32;
            }
        }
        TenantState {
            indegree,
            ready: vec![0; total],
            next: vec![0; n_layers],
            group_free: vec![w.arrival; n_layers],
            first_start: vec![u64::MAX; n_layers],
            last_finish: vec![0; n_layers],
            started: vec![false; total],
            times: vec![SetTime { start: 0, finish: 0 }; total],
            pending_consumers: vec![0; total],
            live_bytes: 0,
            peak_live_bytes: 0,
            stats: SimStats {
                groups: vec![GroupStats::default(); n_layers],
                ..SimStats::default()
            },
            energy: EnergyLog::new(),
            ever_loaded: vec![false; n_layers],
            completed: 0,
            total,
            makespan: 0,
            hop_classes: BTreeMap::new(),
            noc_inflight: InflightTracker::default(),
            busy_cycles: 0,
            occupancy_stall: 0,
            link_stall: 0,
            reload_cycles: 0,
            evictions: 0,
            reloads: 0,
        }
    }
}

/// Books `[want, want + dur)` on `tile` for `tenant`, pushing the start
/// past a foreign ownership window if needed. Returns `(start, stall)`.
fn book_tile(
    fs: &mut FabricState,
    states: &mut [TenantState],
    tile: u32,
    tenant: usize,
    want: u64,
    dur: u64,
) -> (u64, u64) {
    match fs.windows.get_mut(&tile) {
        None => {
            fs.windows.insert(
                tile,
                Window {
                    owner: tenant,
                    start: want,
                    until: want + dur,
                },
            );
            (want, 0)
        }
        Some(w) if w.owner == tenant => {
            if want >= w.until {
                // Gap in the tenant's own usage: close the window so idle
                // time is not counted as busy.
                states[tenant].busy_cycles += w.until - w.start;
                w.start = want;
                w.until = want + dur;
            } else {
                w.until = w.until.max(want + dur);
            }
            (want, 0)
        }
        Some(w) => {
            let start = want.max(w.until);
            states[w.owner].busy_cycles += w.until - w.start;
            let stall = start - want;
            *w = Window {
                owner: tenant,
                start,
                until: start + dur,
            };
            (start, stall)
        }
    }
}

/// Touches weight block `(tenant, layer)` of `pes` PEs: evicts LRU blocks
/// until it fits and returns the reload charge in cycles (0 on a hit or a
/// first-ever load).
fn touch_block(
    fs: &mut FabricState,
    states: &mut [TenantState],
    tenant: usize,
    layer: usize,
    pes: usize,
    spec: &FabricSpec,
) -> u64 {
    if spec.capacity_pes == 0 || pes == 0 {
        return 0;
    }
    fs.lru_seq += 1;
    let seq = fs.lru_seq;
    if let Some(b) = fs.resident.get_mut(&(tenant, layer)) {
        b.last_use = seq;
        return 0;
    }
    // Evict least-recently-used blocks until the new block fits. A block
    // larger than the whole capacity over-commits after evicting
    // everything else — it still runs, it just evicts the world.
    while fs.used_pes + pes > spec.capacity_pes {
        let victim = fs
            .resident
            .iter()
            .min_by_key(|(key, b)| (b.last_use, **key))
            .map(|(key, _)| *key);
        let Some(key) = victim else { break };
        if let Some(b) = fs.resident.remove(&key) {
            fs.used_pes -= b.pes;
            states[key.0].evictions += 1;
        }
    }
    fs.used_pes += pes;
    fs.resident.insert((tenant, layer), Block { pes, last_use: seq });
    if states[tenant].ever_loaded[layer] {
        let charge = pes as u64 * spec.reload_cycles_per_pe;
        states[tenant].reloads += 1;
        states[tenant].reload_cycles += charge;
        charge
    } else {
        states[tenant].ever_loaded[layer] = true;
        0
    }
}

/// Reserves the XY route `from → to` for one message of `bytes` bytes
/// sent at `now`. Returns `(wire_clear, stall)`: the cycle the last byte
/// clears the route, and how long injection waited for busy links.
fn inject_message(
    fs: &mut FabricState,
    noc: &NocSpec,
    bandwidth: u64,
    from: TileId,
    to: TileId,
    now: u64,
    bytes: u64,
) -> Result<(u64, u64)> {
    let key = (from.0, to.0);
    if let std::collections::btree_map::Entry::Vacant(e) = fs.routes.entry(key) {
        let bad = |e: cim_arch::ArchError| SimError::BadWorkload {
            detail: format!("fabric route {from} -> {to} failed: {e}"),
        };
        let start = noc.coord(from).map_err(bad)?;
        let mut prev = (start.row, start.col);
        let mut links = Vec::new();
        for c in noc.xy_route(from, to).map_err(bad)? {
            let cur = (c.row, c.col);
            links.push((prev, cur));
            prev = cur;
        }
        e.insert(links);
    }
    let links = &fs.routes[&key];
    if links.is_empty() {
        return Ok((now, 0));
    }
    let ser = bytes.div_ceil(bandwidth).max(1);
    let busiest = links
        .iter()
        .map(|l| fs.link_free.get(l).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let start = busiest.max(now);
    let clear = start + ser;
    let route: Vec<Link> = links.clone();
    for l in route {
        fs.link_free.insert(l, clear);
    }
    Ok((clear, start - now))
}

/// Attempts to start the current set of `workloads[k]`'s layer `l`:
/// charges residency reloads, books the home tile, and pushes the
/// completion event. The single-tenant engine's `try_start!` with the
/// fabric hooks threaded through.
fn try_start(
    workloads: &[TenantWorkload<'_>],
    states: &mut [TenantState],
    fs: &mut FabricState,
    heap: &mut BinaryHeap<Reverse<(u64, usize, usize, usize)>>,
    fabric: &FabricContention,
    k: usize,
    l: usize,
) {
    let w = &workloads[k];
    let s = states[k].next[l];
    if s >= w.layers[l].sets.len() {
        return;
    }
    let i = w.costed.space().index(l, s);
    if states[k].started[i] || states[k].indegree[i] != 0 {
        return;
    }
    let want = states[k].group_free[l].max(states[k].ready[i]);
    let reload = touch_block(fs, states, k, l, w.layers[l].pes, &fabric.spec);
    let dur = w.layers[l].sets[s].duration + reload;
    let (start, stall) = match &w.home_tiles {
        Some(tiles) => book_tile(fs, states, tiles[l].0, k, want, dur),
        None => (want, 0),
    };
    let st = &mut states[k];
    st.occupancy_stall += stall;
    let finish = start + dur;
    st.started[i] = true;
    st.times[i] = SetTime { start, finish };
    st.group_free[l] = finish;
    st.first_start[l] = st.first_start[l].min(start);
    heap.push(Reverse((finish, k, l, s)));
}

/// Runs `workloads` to completion over one shared fabric.
///
/// With a single workload (arrival 0, no home tiles) under
/// [`FabricContention::uncontended`], the outcome's `result` is
/// byte-identical to [`Simulator::run_costed`](crate::Simulator::run_costed)
/// — which is implemented as exactly that call.
///
/// # Errors
///
/// Returns [`SimError::BadWorkload`] when any tenant's inputs disagree
/// (shapes, mismatched cost tables, missing fan-out CSR, wrong home-tile
/// count) and [`SimError::Deadlock`] when unfinished sets remain after the
/// event heap drains.
pub fn run_shared(
    workloads: &[TenantWorkload<'_>],
    fabric: &FabricContention,
) -> Result<SharedOutcome> {
    for (k, w) in workloads.iter().enumerate() {
        if w.deps.num_layers() != w.layers.len() {
            return Err(SimError::BadWorkload {
                detail: format!(
                    "tenant {k}: dependencies cover {} layers, sets cover {}",
                    w.deps.num_layers(),
                    w.layers.len()
                ),
            });
        }
        if !w.costed.matches(w.deps) {
            return Err(SimError::BadWorkload {
                detail: format!("tenant {k}: cost table was built from different dependencies"),
            });
        }
        if !w.costed.has_fanout() {
            return Err(SimError::BadWorkload {
                detail: format!(
                    "tenant {k}: event engine needs a cost table built with the fan-out CSR \
                     (use CostedDeps::build, not a consumer-only table)"
                ),
            });
        }
        if let Some(tiles) = &w.home_tiles {
            if tiles.len() != w.layers.len() {
                return Err(SimError::BadWorkload {
                    detail: format!(
                        "tenant {k}: {} home tiles for {} layers",
                        tiles.len(),
                        w.layers.len()
                    ),
                });
            }
        }
    }

    let mut states: Vec<TenantState> = workloads.iter().map(TenantState::new).collect();
    let mut fs = FabricState::default();
    // Event heap: Reverse ordering on (finish, tenant, layer, set).
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize, usize)>> = BinaryHeap::new();

    for (k, w) in workloads.iter().enumerate() {
        for l in 0..w.layers.len() {
            try_start(workloads, &mut states, &mut fs, &mut heap, fabric, k, l);
        }
    }

    while let Some(Reverse((t, k, l, s))) = heap.pop() {
        let w = &workloads[k];
        {
            let st = &mut states[k];
            st.stats.events += 1;
            st.completed += 1;
            st.makespan = st.makespan.max(t);
            st.last_finish[l] = st.last_finish[l].max(t);
            let dur = w.layers[l].sets[s].duration;
            st.stats.groups[l].active_cycles += dur;
            st.stats.groups[l].sets_executed += 1;
            st.energy.record_mvms(dur * w.layers[l].pes as u64);
            // Chain: the group moves on to its next set.
            st.next[l] = s + 1;
        }
        try_start(workloads, &mut states, &mut fs, &mut heap, fabric, k, l);

        // Data edges: deliver this set to its consumers — latency, byte
        // count, and hop count all precomputed; link serialization is the
        // only run-time addition.
        let produced = w.costed.space().index(l, s);
        let bytes = w.costed.set_bytes(l, s);
        let (consumers, latencies, hops) = w.costed.outgoing(produced);
        if !consumers.is_empty() {
            let st = &mut states[k];
            st.pending_consumers[produced] = consumers.len() as u32;
            st.live_bytes += bytes;
            st.peak_live_bytes = st.peak_live_bytes.max(st.live_bytes);
        }
        for ((c, &delay), &edge_hops) in consumers.iter().zip(latencies).zip(hops) {
            let mut arrival = t + delay;
            if let (Some(noc), Some(tiles)) = (&fabric.noc, &w.home_tiles) {
                let bw = fabric.spec.link_bandwidth_bytes_per_cycle;
                if bw > 0 && tiles[l] != tiles[c.layer] {
                    let (clear, stall) =
                        inject_message(&mut fs, noc, bw, tiles[l], tiles[c.layer], t, bytes)?;
                    arrival = clear + delay;
                    states[k].link_stall += stall;
                }
            }
            let st = &mut states[k];
            let ci = w.costed.space().index(c.layer, c.set);
            st.ready[ci] = st.ready[ci].max(arrival);
            st.indegree[ci] -= 1;
            st.stats.messages += 1;
            st.stats.bytes_moved += bytes;
            if w.costed.tracks_transfers() {
                st.energy.record_transfer(bytes, edge_hops);
                let class = st.hop_classes.entry(edge_hops).or_default();
                class.messages += 1;
                class.bytes += bytes;
                class.inflight.send(t, arrival, bytes);
                st.noc_inflight.send(t, arrival, bytes);
            }
            try_start(workloads, &mut states, &mut fs, &mut heap, fabric, k, c.layer);
        }

        // Release producer buffers whose last consuming edge was this
        // completed set's own dependencies.
        let st = &mut states[k];
        for p in w.deps.of(l, s) {
            let pi = w.costed.space().index(p.layer, p.set);
            st.pending_consumers[pi] -= 1;
            if st.pending_consumers[pi] == 0 {
                st.live_bytes -= w.costed.set_bytes(p.layer, p.set);
            }
        }
    }

    let completed: usize = states.iter().map(|st| st.completed).sum();
    let total: usize = states.iter().map(|st| st.total).sum();
    if completed != total {
        return Err(SimError::Deadlock { completed, total });
    }

    // Flush open ownership windows into the busy accounting.
    for w in fs.windows.values() {
        states[w.owner].busy_cycles += w.until - w.start;
    }

    let mut makespan = 0u64;
    let tenants = workloads
        .iter()
        .zip(states)
        .map(|(w, mut st)| {
            for l in 0..w.layers.len() {
                if st.first_start[l] != u64::MAX {
                    let span = st.last_finish[l] - st.first_start[l];
                    st.stats.groups[l].stall_cycles = span - st.stats.groups[l].active_cycles;
                }
            }
            st.stats.peak_live_bytes = st.peak_live_bytes;
            st.stats.energy = st.energy;
            st.stats.hop_profile = st
                .hop_classes
                .iter()
                .map(|(&h, c)| HopClassStats {
                    hops: h,
                    messages: c.messages,
                    bytes: c.bytes,
                    peak_inflight_bytes: c.inflight.peak,
                })
                .collect();
            st.stats.peak_inflight_bytes = st.noc_inflight.peak;
            makespan = makespan.max(st.makespan);
            TenantOutcome {
                result: SimResult {
                    schedule: Schedule::from_arena(
                        w.costed.space().clone(),
                        st.times,
                        st.makespan,
                    ),
                    stats: st.stats,
                },
                span_cycles: st.makespan.saturating_sub(w.arrival),
                busy_cycles: st.busy_cycles,
                occupancy_stall_cycles: st.occupancy_stall,
                link_stall_cycles: st.link_stall,
                reload_cycles: st.reload_cycles,
                evictions: st.evictions,
                reloads: st.reloads,
            }
        })
        .collect();

    Ok(SharedOutcome { tenants, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::{FeatureShape, NodeId, Rect};
    use clsa_core::{OfmSet, SetRef};

    /// `n` sets of `dur` cycles on a `pes`-PE group.
    fn layer(nsets: usize, dur: u64, pes: usize) -> LayerSets {
        LayerSets {
            node: NodeId(0),
            name: format!("l{nsets}x{dur}"),
            logical: 0,
            ofm: FeatureShape::new(nsets, dur as usize, 1),
            pes,
            quantum: 1,
            sets: (0..nsets)
                .map(|y| OfmSet {
                    rect: Rect::new(y, 0, y, dur as usize - 1),
                    duration: dur,
                })
                .collect(),
        }
    }

    fn chain_workload() -> (Vec<LayerSets>, Dependencies) {
        let layers = vec![layer(2, 10, 2), layer(2, 10, 2)];
        let deps = Dependencies::from_edges(
            &[2, 2],
            &[
                (SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 0 }),
                (SetRef { layer: 1, set: 1 }, SetRef { layer: 0, set: 1 }),
            ],
        )
        .unwrap();
        (layers, deps)
    }

    fn free_costed(layers: &[LayerSets], deps: &Dependencies) -> CostedDeps {
        CostedDeps::free(layers, deps).unwrap()
    }

    #[test]
    fn two_tenants_on_one_tile_serialize() {
        let (layers, deps) = chain_workload();
        let costed = free_costed(&layers, &deps);
        let solo = |arrival| TenantWorkload {
            layers: &layers,
            deps: &deps,
            costed: &costed,
            arrival,
            home_tiles: Some(vec![TileId(0), TileId(0)]),
        };
        // Alone: the two-layer chain finishes at cycle 40 (2 sets × 10
        // per layer, pipelined over one shared tile window).
        let alone = run_shared(&[solo(0)], &FabricContention::uncontended()).unwrap();
        // Together on the same tile: the second tenant's work interleaves
        // with the first's, so at least one tenant sees occupancy stalls
        // and the combined makespan exceeds the solo one.
        let both = run_shared(&[solo(0), solo(0)], &FabricContention::uncontended()).unwrap();
        assert!(both.makespan > alone.makespan);
        let stalls: u64 = both.tenants.iter().map(|t| t.occupancy_stall_cycles).sum();
        assert!(stalls > 0, "same-tile tenants must contend");
        // Conservation: ownership windows on one tile never overlap.
        let busy: u64 = both.tenants.iter().map(|t| t.busy_cycles).sum();
        assert!(busy <= both.makespan);
    }

    #[test]
    fn disjoint_tiles_do_not_contend() {
        let (layers, deps) = chain_workload();
        let costed = free_costed(&layers, &deps);
        let on = |tile| TenantWorkload {
            layers: &layers,
            deps: &deps,
            costed: &costed,
            arrival: 0,
            home_tiles: Some(vec![TileId(tile), TileId(tile)]),
        };
        let out = run_shared(&[on(0), on(1)], &FabricContention::uncontended()).unwrap();
        for t in &out.tenants {
            assert_eq!(t.occupancy_stall_cycles, 0);
        }
        let solo = run_shared(&[on(0)], &FabricContention::uncontended()).unwrap();
        assert_eq!(out.makespan, solo.makespan);
    }

    #[test]
    fn arrival_offsets_shift_schedules() {
        let (layers, deps) = chain_workload();
        let costed = free_costed(&layers, &deps);
        let w = TenantWorkload {
            layers: &layers,
            deps: &deps,
            costed: &costed,
            arrival: 100,
            home_tiles: None,
        };
        let out = run_shared(
            std::slice::from_ref(&w),
            &FabricContention::uncontended(),
        )
        .unwrap();
        let t = &out.tenants[0];
        assert_eq!(t.result.schedule.makespan, 100 + t.span_cycles);
        assert!(t.result.schedule.time(0, 0).start >= 100);
    }

    #[test]
    fn capacity_pressure_evicts_and_reloads() {
        let (layers, deps) = chain_workload();
        let costed = free_costed(&layers, &deps);
        let w = |_| TenantWorkload {
            layers: &layers,
            deps: &deps,
            costed: &costed,
            arrival: 0,
            home_tiles: Some(vec![TileId(0), TileId(0)]),
        };
        // Each tenant's working set is 4 PEs; capacity 4 forces the two
        // tenants (8 PEs combined) to thrash.
        let fabric = FabricContention {
            noc: None,
            spec: FabricSpec {
                capacity_pes: 4,
                reload_cycles_per_pe: 50,
                ..FabricSpec::uncontended()
            },
        };
        let out = run_shared(&[w(0), w(1)], &fabric).unwrap();
        let evictions: u64 = out.tenants.iter().map(|t| t.evictions).sum();
        let reloads: u64 = out.tenants.iter().map(|t| t.reloads).sum();
        assert!(evictions > 0, "combined working set must not fit");
        assert!(reloads > 0);
        let reload_cycles: u64 = out.tenants.iter().map(|t| t.reload_cycles).sum();
        assert_eq!(reload_cycles, reloads * 2 * 50, "2 PEs per reloaded block");
        // Unbounded capacity: same mix, zero evictions.
        let idle = run_shared(&[w(0), w(1)], &FabricContention::uncontended()).unwrap();
        assert_eq!(idle.tenants.iter().map(|t| t.evictions).sum::<u64>(), 0);
    }

    #[test]
    fn link_bandwidth_serializes_cross_tile_traffic() {
        let (layers, deps) = chain_workload();
        let costed = free_costed(&layers, &deps);
        // Disjoint compute tiles so both tenants' producers finish
        // simultaneously, but the XY routes 0→3 and 1→3 on the 2×2 mesh
        // share the link (0,1)→(1,1): the second sender must wait.
        let w = |producer_tile| TenantWorkload {
            layers: &layers,
            deps: &deps,
            costed: &costed,
            arrival: 0,
            home_tiles: Some(vec![TileId(producer_tile), TileId(3)]),
        };
        let fabric = FabricContention {
            noc: Some(NocSpec::square_for(4)),
            spec: FabricSpec {
                link_bandwidth_bytes_per_cycle: 1,
                ..FabricSpec::uncontended()
            },
        };
        let contended = run_shared(&[w(0), w(1)], &fabric).unwrap();
        let stalls: u64 = contended.tenants.iter().map(|t| t.link_stall_cycles).sum();
        assert!(stalls > 0, "simultaneous sends over a shared link must queue");
        let idle = run_shared(&[w(0), w(1)], &FabricContention::uncontended()).unwrap();
        assert!(contended.makespan > idle.makespan);
    }

    #[test]
    fn insertion_of_home_tiles_is_validated() {
        let (layers, deps) = chain_workload();
        let costed = free_costed(&layers, &deps);
        let w = TenantWorkload {
            layers: &layers,
            deps: &deps,
            costed: &costed,
            arrival: 0,
            home_tiles: Some(vec![TileId(0)]), // 1 tile for 2 layers
        };
        let err = run_shared(
            std::slice::from_ref(&w),
            &FabricContention::uncontended(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BadWorkload { .. }));
    }

    #[test]
    fn deadlock_spans_tenants() {
        let (layers, _) = chain_workload();
        let cyclic = Dependencies::from_edges(
            &[2, 2],
            &[
                (SetRef { layer: 0, set: 0 }, SetRef { layer: 1, set: 0 }),
                (SetRef { layer: 1, set: 0 }, SetRef { layer: 0, set: 0 }),
            ],
        )
        .unwrap();
        let costed = free_costed(&layers, &cyclic);
        let w = TenantWorkload {
            layers: &layers,
            deps: &cyclic,
            costed: &costed,
            arrival: 0,
            home_tiles: None,
        };
        let err = run_shared(
            std::slice::from_ref(&w),
            &FabricContention::uncontended(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }
}
