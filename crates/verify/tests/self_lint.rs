//! The workspace must lint clean under its own rules — the CI `verify`
//! job runs the binary; this test keeps `cargo test` sufficient locally.

use std::path::Path;

use cim_verify::workspace::{lint_workspace, workspace_rs_files};

fn repo_root() -> &'static Path {
    // crates/verify → crates → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the repo root")
}

#[test]
fn the_workspace_lints_clean() {
    let diags = lint_workspace(repo_root()).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "cim-lint found {} diagnostic(s) in the workspace:\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walk_actually_covers_the_workspace() {
    // A clean result must not be an empty walk: all ten workspace crates
    // (and the root facade) contribute files.
    let files = workspace_rs_files(repo_root()).expect("workspace walk succeeds");
    assert!(
        files.len() > 50,
        "expected a full workspace walk, saw {} files",
        files.len()
    );
    let rels: Vec<String> = files
        .iter()
        .map(|(p, _)| p.to_string_lossy().replace('\\', "/"))
        .collect();
    for needle in [
        "src/lib.rs",
        "crates/core/src/schedule.rs",
        "crates/bench/src/runner/cache.rs",
        "crates/verify/src/rules.rs",
    ] {
        assert!(
            rels.iter().any(|r| r == needle),
            "walk missed {needle}; saw {} files",
            rels.len()
        );
    }
    // Vendored stand-ins mirror external crates and are out of scope.
    assert!(
        !rels.iter().any(|r| r.starts_with("vendor/")),
        "vendor/ must be excluded from the lint walk"
    );
}
