//! Property tests: the lexer (and the whole lint pipeline above it) is
//! total — arbitrary input produces diagnostics or nothing, never a
//! panic, and every reported position stays within the source.

use cim_verify::lexer::lex;
use cim_verify::rules::{lint_source, FileKind};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes (via lossy UTF-8) never panic the lexer, and every
    /// token's position is a real (line, column) of the source.
    #[test]
    fn lexing_is_total_on_arbitrary_bytes(bytes in vec(0u8..255, 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        let nlines = src.split('\n').count() as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= nlines);
            prop_assert!(t.col >= 1);
            prop_assert!(!t.text.is_empty());
        }
        for p in &lexed.pragmas {
            prop_assert!(p.line >= 1 && p.line <= nlines);
        }
    }

    /// The full lint pipeline is total too, for every file kind.
    #[test]
    fn linting_is_total_on_arbitrary_bytes(bytes in vec(0u8..255, 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        for kind in [
            FileKind::LibRoot,
            FileKind::Lib,
            FileKind::Bin,
            FileKind::TestOrBench,
            FileKind::Example,
        ] {
            for d in lint_source("fuzz.rs", kind, &src) {
                prop_assert!(d.line >= 1);
                prop_assert!(d.col >= 1);
            }
        }
    }

    /// Unterminated quote-ish constructs — the classic lexer hangs/panics
    /// — terminate cleanly. Built from fragments that stress the
    /// string/char/lifetime/comment disambiguation paths.
    #[test]
    fn tricky_fragments_terminate(parts in vec(0usize..12, 0..24)) {
        const FRAGMENTS: [&str; 12] = [
            "\"", "'", "r#\"", "b\"", "'a", "'x'", "/*", "*/", "//",
            "r#fn", "0.unwrap", "\\",
        ];
        let src: String = parts
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = lex(&src);
        let _ = lint_source("fuzz.rs", FileKind::Lib, &src);
    }
}

#[test]
fn empty_and_whitespace_sources_are_clean() {
    for src in ["", " ", "\n\n\n", "\t \r\n"] {
        assert!(lex(src).tokens.is_empty());
        assert!(lint_source("x.rs", FileKind::Lib, src).is_empty());
    }
}
