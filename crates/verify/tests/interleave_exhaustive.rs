//! The exhaustive interleaving suite as tests, with the explored-schedule
//! counts pinned exactly.
//!
//! Pinning matters: these checks are only *proofs* if the explorer really
//! branched on every enabled thread at every step. The counts below are
//! the full interleaving counts of each model — a scheduler regression
//! that silently prunes branches (turning the proof back into a sample)
//! changes the count and fails the test, even if no violation is missed.

use cim_verify::interleave::explore;
use cim_verify::models::{CacheSlotProtocol, LanePoolProtocol, TwoLevelCacheProtocol};

#[test]
fn two_threads_racing_one_cache_key_is_exhaustively_safe() {
    let stats = explore(&CacheSlotProtocol::same_key(2)).expect("no violations");
    // 42 maximal schedules of the two 5-step slot protocols around one
    // mutex + OnceLock (blocked probes prune the naive C(10,5) = 252).
    assert_eq!(stats.schedules, 42);
    assert_eq!(stats.max_depth, 10);
}

#[test]
fn three_threads_racing_one_cache_key_is_exhaustively_safe() {
    let stats = explore(&CacheSlotProtocol::same_key(3)).expect("no violations");
    assert_eq!(stats.schedules, 2016);
    assert_eq!(stats.max_depth, 14);
}

#[test]
fn distinct_keys_never_serialize_through_each_other() {
    let stats = explore(&CacheSlotProtocol::distinct_keys(2)).expect("no violations");
    // Independent keys: only the map mutex is shared, so more schedules
    // survive than in the same-key run (168 > 42) — and each key still
    // computes exactly once.
    assert_eq!(stats.schedules, 168);
}

#[test]
fn mixed_contention_three_threads_two_keys() {
    let stats = explore(&CacheSlotProtocol::with_keys(vec![0, 0, 1])).expect("no violations");
    assert_eq!(stats.schedules, 27_300);
}

#[test]
fn two_level_cache_never_computes_a_shared_stage_twice() {
    // Two schedule-level misses whose schedule computes resolve the SAME
    // stage entry — the `ScheduleCache::run` → `prepared` nesting. The
    // invariant under every interleaving: the stage computes once.
    let stats = explore(&TwoLevelCacheProtocol::shared_stage_pair()).expect("no violations");
    assert_eq!(stats.schedules, 13_442);
    assert_eq!(stats.max_depth, 18);
}

#[test]
fn lane_pool_claims_every_item_exactly_once() {
    let stats = explore(&LanePoolProtocol {
        workers: 2,
        items: 4,
    })
    .expect("no violations");
    assert_eq!(stats.schedules, 96);
    assert_eq!(stats.max_depth, 8);
}

#[test]
fn lane_pool_stealing_is_safe_at_three_workers() {
    let stats = explore(&LanePoolProtocol {
        workers: 3,
        items: 5,
    })
    .expect("no violations");
    assert_eq!(stats.schedules, 403_520);
}

#[test]
fn the_reported_counts_cover_every_interleaving_sanity_check() {
    // Lower bound from first principles: two independent 5-step threads
    // have C(10,5) = 252 interleavings; blocking can only *remove*
    // schedules, and a removed schedule must be one where someone held
    // the lock. 42 of 252 surviving means the mutex serialized 5/6 of
    // the naive interleavings — the protocol is really contended here,
    // not trivially parallel.
    let contended = explore(&CacheSlotProtocol::same_key(2)).expect("ok").schedules;
    let independent = explore(&CacheSlotProtocol::distinct_keys(2)).expect("ok").schedules;
    assert!(contended < independent);
    assert!(independent <= 252);
}
