//! One known-bad fixture per lint rule: every rule must *fire* on its
//! fixture (proving the rule is live, not vacuously green on the clean
//! workspace) and stay quiet once the canonical fix or pragma is applied.

use cim_verify::rules::{lint_source, Diagnostic, FileKind};
use cim_verify::RULES;

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn wall_clock_fires_on_instant_and_system_time() {
    let bad = r#"
        fn f() -> std::time::Instant { std::time::Instant::now() }
        fn g() -> std::time::SystemTime { std::time::SystemTime::now() }
    "#;
    let diags = lint_source("fixture.rs", FileKind::Lib, bad);
    assert_eq!(codes(&diags), ["wall-clock", "wall-clock"], "{diags:?}");
    // Positions point at the offending call, 1-based.
    assert_eq!(diags[0].line, 2);
}

#[test]
fn wall_clock_applies_even_in_test_code() {
    // Timing reads in tests are how flaky assertions are born.
    let bad = "#[test]\nfn t() { let _ = std::time::Instant::now(); }";
    let diags = lint_source("fixture.rs", FileKind::TestOrBench, bad);
    assert_eq!(codes(&diags), ["wall-clock"]);
}

#[test]
fn hash_collection_fires_on_map_and_set() {
    let bad = r#"
        use std::collections::{HashMap, HashSet};
        struct S { m: HashMap<u32, u32>, s: HashSet<u32> }
    "#;
    let diags = lint_source("fixture.rs", FileKind::Lib, bad);
    assert!(
        codes(&diags).iter().all(|c| *c == "hash-collection") && diags.len() == 4,
        "{diags:?}"
    );
}

#[test]
fn hash_collection_is_exempt_in_tests() {
    let ok = "use std::collections::HashMap;\nfn t() { let _: HashMap<u8, u8> = HashMap::new(); }";
    assert!(lint_source("fixture.rs", FileKind::TestOrBench, ok).is_empty());
}

#[test]
fn unseeded_rng_fires_on_entropy_sources() {
    let bad = r#"
        fn f() { let _ = rand::thread_rng(); }
        fn g() { let _ = StdRng::from_entropy(); }
    "#;
    let diags = lint_source("fixture.rs", FileKind::Lib, bad);
    assert_eq!(codes(&diags), ["unseeded-rng", "unseeded-rng"], "{diags:?}");
}

#[test]
fn seeded_rng_is_clean() {
    let ok = "fn f() { let _ = StdRng::seed_from_u64(42); }";
    assert!(lint_source("fixture.rs", FileKind::Lib, ok).is_empty());
}

#[test]
fn panic_unwrap_fires_in_library_code_only() {
    let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.expect(\"present\") }";
    let diags = lint_source("fixture.rs", FileKind::Lib, bad);
    assert_eq!(codes(&diags), ["panic-unwrap", "panic-unwrap"], "{diags:?}");
    // Binaries may abort; the rule is for library surfaces.
    assert!(lint_source("fixture.rs", FileKind::Bin, bad).is_empty());
    assert!(lint_source("fixture.rs", FileKind::TestOrBench, bad).is_empty());
}

#[test]
fn tuple_field_access_does_not_hide_unwrap() {
    // `x.0.unwrap()` once lexed `0.unwrap` as a single float-ish literal;
    // the lexer must keep the method call visible.
    let bad = "fn f(x: (Option<u32>,)) -> u32 { x.0.unwrap() }";
    let diags = lint_source("fixture.rs", FileKind::Lib, bad);
    assert_eq!(codes(&diags), ["panic-unwrap"], "{diags:?}");
}

#[test]
fn debug_macro_fires_on_dbg_todo_unimplemented() {
    let bad = "fn f() { dbg!(1); }\nfn g() { todo!() }\nfn h() { unimplemented!() }";
    let diags = lint_source("fixture.rs", FileKind::Lib, bad);
    assert_eq!(
        codes(&diags),
        ["debug-macro", "debug-macro", "debug-macro"],
        "{diags:?}"
    );
}

#[test]
fn forbid_unsafe_fires_on_library_roots_only() {
    let bare = "//! A crate.\npub fn f() {}";
    let diags = lint_source("src/lib.rs", FileKind::LibRoot, bare);
    assert_eq!(codes(&diags), ["forbid-unsafe"], "{diags:?}");
    assert_eq!((diags[0].line, diags[0].col), (1, 1));
    // Non-root files don't need the attribute.
    assert!(lint_source("src/other.rs", FileKind::Lib, bare).is_empty());

    let good = "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}";
    assert!(lint_source("src/lib.rs", FileKind::LibRoot, good).is_empty());
}

#[test]
fn line_pragma_suppresses_its_own_and_next_line() {
    let src = "#![forbid(unsafe_code)]\n\
               // cim-lint: allow(wall-clock) startup stamp\n\
               fn f() -> std::time::Instant { std::time::Instant::now() }";
    assert!(lint_source("src/lib.rs", FileKind::LibRoot, src).is_empty());
}

#[test]
fn file_pragma_suppresses_everywhere() {
    let src = "// cim-lint: allow-file(hash-collection) lookup-only maps\n\
               use std::collections::HashMap;\n\
               fn f() -> HashMap<u8, u8> { HashMap::new() }";
    assert!(lint_source("fixture.rs", FileKind::Lib, src).is_empty());
}

#[test]
fn unused_pragma_fires_on_stale_suppressions() {
    let src = "// cim-lint: allow(wall-clock) nothing here reads a clock\nfn f() {}";
    let diags = lint_source("fixture.rs", FileKind::Lib, src);
    assert_eq!(codes(&diags), ["unused-pragma"], "{diags:?}");
}

#[test]
fn unused_pragma_fires_on_unknown_rules() {
    let src = "// cim-lint: allow(no-such-rule)\nfn f() {}";
    let diags = lint_source("fixture.rs", FileKind::Lib, src);
    assert_eq!(codes(&diags), ["unused-pragma"], "{diags:?}");
    assert!(diags[0].message.contains("unknown rule"), "{diags:?}");
}

#[test]
fn every_advertised_rule_has_a_firing_fixture() {
    // The rule table and this fixture file must not drift apart: each of
    // the seven advertised rules appears in at least one assertion above.
    // (Names checked here so adding a rule without a fixture fails.)
    let covered = [
        "wall-clock",
        "hash-collection",
        "unseeded-rng",
        "panic-unwrap",
        "debug-macro",
        "forbid-unsafe",
        "unused-pragma",
    ];
    assert_eq!(RULES.len(), covered.len());
    for r in RULES {
        assert!(covered.contains(&r.name), "rule {} has no fixture", r.name);
    }
}

#[test]
fn diagnostics_render_rustc_style() {
    let bad = "fn f() { let _ = std::time::Instant::now(); }";
    let diags = lint_source("crates/x/src/lib.rs", FileKind::Lib, bad);
    let line = diags[0].to_string();
    assert!(
        line.starts_with("crates/x/src/lib.rs:1:"),
        "rustc-style file:line:col prefix, got {line}"
    );
    assert!(line.contains("error[wall-clock]"), "{line}");
}
