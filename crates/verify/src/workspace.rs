//! Workspace discovery: find the root, enumerate `.rs` files, classify
//! them, and run the lint over everything.
//!
//! The walk deliberately excludes `vendor/` — the offline stand-ins mirror
//! *external* crates' public APIs (`rand`, `proptest`, `criterion`, …),
//! which legitimately use wall clocks and hash maps; the determinism
//! contract this linter enforces is about the workspace's own code. It
//! also skips `target/` and dot-directories.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{lint_source, Diagnostic, FileKind};

/// Ascends from `start` to the first directory that looks like the
/// workspace root (has both a `Cargo.toml` and a `crates/` directory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Classifies a workspace-relative path. `None` means the file is out of
/// scope (not Rust, vendored, generated).
pub fn classify(rel: &Path) -> Option<FileKind> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    if parts
        .iter()
        .any(|p| *p == "vendor" || *p == "target" || p.starts_with('.'))
    {
        return None;
    }
    if parts.iter().any(|p| *p == "tests" || *p == "benches") {
        return Some(FileKind::TestOrBench);
    }
    if parts.contains(&"examples") {
        return Some(FileKind::Example);
    }
    if parts.windows(2).any(|w| w == ["src", "bin"]) {
        return Some(FileKind::Bin);
    }
    if parts.windows(2).any(|w| w == ["src", "lib.rs"]) {
        return Some(FileKind::LibRoot);
    }
    if parts.contains(&"src") {
        return Some(FileKind::Lib);
    }
    // Stray root-level .rs files (build scripts would land here).
    Some(FileKind::Bin)
}

/// Enumerates every in-scope `.rs` file under `root`, sorted by relative
/// path so diagnostics (and the binary's exit report) are deterministic.
///
/// # Errors
///
/// Propagates directory-walk I/O failures.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<(PathBuf, FileKind)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with('.') || name == "vendor" || name == "target" {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if let Ok(rel) = path.strip_prefix(root) {
                if let Some(kind) = classify(rel) {
                    out.push((rel.to_path_buf(), kind));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every in-scope file under `root`, returning all diagnostics
/// sorted by `(file, line, col)`.
///
/// # Errors
///
/// Propagates I/O failures reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for (rel, kind) in workspace_rs_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        out.extend(lint_source(&rel_str, kind, &src));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let cases = [
            ("crates/core/src/lib.rs", Some(FileKind::LibRoot)),
            ("crates/core/src/schedule.rs", Some(FileKind::Lib)),
            ("src/lib.rs", Some(FileKind::LibRoot)),
            ("crates/bench/src/bin/fig6.rs", Some(FileKind::Bin)),
            ("crates/bench/benches/schedule_core.rs", Some(FileKind::TestOrBench)),
            ("tests/golden_artifacts.rs", Some(FileKind::TestOrBench)),
            ("examples/quickstart.rs", Some(FileKind::Example)),
            ("vendor/serde/src/lib.rs", None),
            ("target/debug/build/x.rs", None),
            ("README.md", None),
        ];
        for (path, expected) in cases {
            assert_eq!(classify(Path::new(path)), expected, "{path}");
        }
    }

    #[test]
    fn root_discovery_ascends() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root exists");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }
}
