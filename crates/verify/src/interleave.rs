//! A small loom-style exhaustive interleaving explorer.
//!
//! A [`Protocol`] models a concurrent algorithm as `T` threads, each a
//! deterministic state machine over a shared, cloneable state. The
//! explorer performs a depth-first search over **every** scheduling
//! decision: at each step it branches on all enabled threads, so for
//! small scopes (2–3 threads, a handful of steps each) it visits every
//! possible interleaving of the modeled atomic operations — turning the
//! probabilistic "run it 8× and hope" concurrency tests into exhaustive
//! small-scope proofs.
//!
//! Checked at every state and at the end of every schedule:
//!
//! * **safety invariants** via [`Protocol::check`] (e.g. "a fingerprint is
//!   never computed twice");
//! * **deadlock freedom**: if any thread is unfinished, some thread must
//!   be enabled;
//! * **output determinism**: [`Protocol::output`] of every completed
//!   schedule must be identical — the linearized result may not depend on
//!   the interleaving.
//!
//! The state space is walked by cloning, not backtracking-by-undo, which
//! keeps models trivially correct at the cost of allocation — fine for
//! the bounded scopes this crate verifies (thousands to hundreds of
//! thousands of schedules, milliseconds of wall time).

/// What a thread did when asked to step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed one atomic operation.
    Ran,
    /// The thread is blocked (e.g. the lock is held); retry later.
    Blocked,
    /// The thread has no operations left.
    Done,
}

/// A modeled concurrent protocol. See the module docs.
pub trait Protocol {
    /// The shared state (plus per-thread program counters).
    type State: Clone;

    /// Number of modeled threads.
    fn threads(&self) -> usize;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Attempts one atomic step of thread `tid`. Must mutate `state` only
    /// when returning [`Step::Ran`]; a [`Step::Blocked`] probe must leave
    /// the state untouched.
    fn step(&self, state: &mut Self::State, tid: usize) -> Step;

    /// Safety invariant, checked after every step.
    ///
    /// # Errors
    ///
    /// Describes the violated invariant.
    fn check(&self, state: &Self::State) -> Result<(), String>;

    /// Invariants of a completed schedule (all threads done).
    ///
    /// # Errors
    ///
    /// Describes the violated invariant.
    fn check_final(&self, state: &Self::State) -> Result<(), String>;

    /// Observable result of a completed schedule; must be identical for
    /// every interleaving.
    fn output(&self, state: &Self::State) -> Vec<u64>;
}

/// Statistics of one exhaustive exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exploration {
    /// Complete schedules (maximal interleavings) explored.
    pub schedules: u64,
    /// States visited (steps taken across all branches).
    pub states: u64,
    /// Longest schedule, in steps.
    pub max_depth: usize,
}

/// A violated invariant, with the scheduling prefix that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// The thread ids stepped, in order, to reach the violation.
    pub trace: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (schedule: {:?})", self.message, self.trace)
    }
}

/// Exhaustively explores every interleaving of `protocol`.
///
/// # Errors
///
/// Returns the first [`Violation`] found: a failed invariant, a deadlock,
/// or an interleaving whose output differs from the first schedule's.
pub fn explore<P: Protocol>(protocol: &P) -> Result<Exploration, Violation> {
    let mut stats = Exploration::default();
    let mut reference_output: Option<Vec<u64>> = None;
    let mut trace = Vec::new();
    dfs(
        protocol,
        protocol.init(),
        &mut trace,
        &mut stats,
        &mut reference_output,
    )?;
    Ok(stats)
}

fn dfs<P: Protocol>(
    p: &P,
    state: P::State,
    trace: &mut Vec<usize>,
    stats: &mut Exploration,
    reference: &mut Option<Vec<u64>>,
) -> Result<(), Violation> {
    let mut enabled = Vec::new();
    let mut all_done = true;
    for tid in 0..p.threads() {
        // Probe on a clone: a blocked probe must not perturb the state.
        let mut probe = state.clone();
        match p.step(&mut probe, tid) {
            Step::Ran => {
                enabled.push((tid, probe));
                all_done = false;
            }
            Step::Blocked => all_done = false,
            Step::Done => {}
        }
    }

    if all_done {
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(trace.len());
        p.check_final(&state).map_err(|message| Violation {
            message,
            trace: trace.clone(),
        })?;
        let out = p.output(&state);
        match reference {
            None => *reference = Some(out),
            Some(r) => {
                if *r != out {
                    return Err(Violation {
                        message: format!(
                            "output depends on the interleaving: {r:?} vs {out:?}"
                        ),
                        trace: trace.clone(),
                    });
                }
            }
        }
        return Ok(());
    }

    if enabled.is_empty() {
        return Err(Violation {
            message: "deadlock: unfinished threads but none can step".to_string(),
            trace: trace.clone(),
        });
    }

    for (tid, next) in enabled {
        stats.states += 1;
        p.check(&next).map_err(|message| Violation {
            message,
            trace: trace.clone(),
        })?;
        trace.push(tid);
        dfs(p, next, trace, stats, reference)?;
        trace.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a "non-atomic" counter via read + write steps
    /// — the classic lost-update race. The explorer must find it.
    struct RacyCounter;

    #[derive(Clone)]
    struct RacyState {
        value: u64,
        // Per-thread: 0 = not read, 1 = read (staged), 2 = written.
        pc: [u8; 2],
        staged: [u64; 2],
    }

    impl Protocol for RacyCounter {
        type State = RacyState;

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> RacyState {
            RacyState {
                value: 0,
                pc: [0; 2],
                staged: [0; 2],
            }
        }

        fn step(&self, s: &mut RacyState, tid: usize) -> Step {
            match s.pc[tid] {
                0 => {
                    s.staged[tid] = s.value;
                    s.pc[tid] = 1;
                    Step::Ran
                }
                1 => {
                    s.value = s.staged[tid] + 1;
                    s.pc[tid] = 2;
                    Step::Ran
                }
                _ => Step::Done,
            }
        }

        fn check(&self, _: &RacyState) -> Result<(), String> {
            Ok(())
        }

        fn check_final(&self, s: &RacyState) -> Result<(), String> {
            if s.value != 2 {
                return Err(format!("lost update: counter is {} not 2", s.value));
            }
            Ok(())
        }

        fn output(&self, s: &RacyState) -> Vec<u64> {
            vec![s.value]
        }
    }

    #[test]
    fn the_explorer_finds_textbook_lost_updates() {
        let v = explore(&RacyCounter).unwrap_err();
        assert!(v.message.contains("lost update"), "{v}");
        assert!(!v.trace.is_empty());
    }

    /// The same counter with an atomic increment (single step): safe.
    struct AtomicCounter;

    #[derive(Clone)]
    struct AtomicState {
        value: u64,
        done: [bool; 2],
    }

    impl Protocol for AtomicCounter {
        type State = AtomicState;

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> AtomicState {
            AtomicState {
                value: 0,
                done: [false; 2],
            }
        }

        fn step(&self, s: &mut AtomicState, tid: usize) -> Step {
            if s.done[tid] {
                return Step::Done;
            }
            s.value += 1;
            s.done[tid] = true;
            Step::Ran
        }

        fn check(&self, _: &AtomicState) -> Result<(), String> {
            Ok(())
        }

        fn check_final(&self, s: &AtomicState) -> Result<(), String> {
            (s.value == 2).then_some(()).ok_or("lost".to_string())
        }

        fn output(&self, s: &AtomicState) -> Vec<u64> {
            vec![s.value]
        }
    }

    #[test]
    fn atomic_counter_passes_with_both_orders() {
        let stats = explore(&AtomicCounter).unwrap();
        // Two threads, one step each: exactly 2 interleavings.
        assert_eq!(stats.schedules, 2);
        assert_eq!(stats.max_depth, 2);
    }

    /// Two threads that each wait for the other's flag: guaranteed deadlock.
    struct Deadlock;

    #[derive(Clone)]
    struct DeadState {
        flags: [bool; 2],
        done: [bool; 2],
    }

    impl Protocol for Deadlock {
        type State = DeadState;

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> DeadState {
            DeadState {
                flags: [false; 2],
                done: [false; 2],
            }
        }

        fn step(&self, s: &mut DeadState, tid: usize) -> Step {
            if s.done[tid] {
                return Step::Done;
            }
            if !s.flags[1 - tid] {
                return Step::Blocked;
            }
            s.flags[tid] = true;
            s.done[tid] = true;
            Step::Ran
        }

        fn check(&self, _: &DeadState) -> Result<(), String> {
            Ok(())
        }

        fn check_final(&self, _: &DeadState) -> Result<(), String> {
            Ok(())
        }

        fn output(&self, _: &DeadState) -> Vec<u64> {
            vec![]
        }
    }

    #[test]
    fn deadlocks_are_reported() {
        let v = explore(&Deadlock).unwrap_err();
        assert!(v.message.contains("deadlock"), "{v}");
    }
}
