//! The determinism lint rules and the per-file engine.
//!
//! Every rule is **deny by default**: the workspace self-lint
//! (`tests/self_lint.rs`, plus the CI `verify` job) requires `cim-lint`
//! to exit 0, so each violation must either be fixed or carry an explicit
//! `// cim-lint: allow(<rule>)` pragma at the site — and the
//! [`unused-pragma`](RULES) rule guarantees stale allows are themselves
//! errors, so suppressions cannot rot.
//!
//! | Rule | Fires on | Why |
//! |------|----------|-----|
//! | `wall-clock` | `Instant::now` / `SystemTime::now` | wall-clock reads make runs time-dependent; route through `cim_tune::Clock` |
//! | `hash-collection` | `HashMap` / `HashSet` in non-test code | iteration order is randomized-in-spirit; use `BTreeMap`/`BTreeSet` or justify |
//! | `unseeded-rng` | `thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`, `ThreadRng` | RNGs must take an explicit u64 seed |
//! | `panic-unwrap` | `.unwrap()` / `.expect(` in library non-test code | library panics need a pragma-documented invariant |
//! | `debug-macro` | `dbg!` / `todo!` / `unimplemented!` in non-test code | scaffolding must not ship |
//! | `forbid-unsafe` | crate root missing `#![forbid(unsafe_code)]` | the workspace is 100% safe Rust, machine-enforced |
//! | `unused-pragma` | an `allow` that suppressed nothing | keeps the pragma inventory honest |
//!
//! The engine is purely lexical (see [`crate::lexer`]): rules match token
//! patterns, so occurrences inside comments, doc comments, and string
//! literals never fire. Test code is recognized two ways: whole files under
//! `tests/` / `benches/` / `examples/`, and `#[cfg(test)]` / `#[test]`
//! items inside library files (tracked by brace matching).

use serde::Serialize;

use crate::lexer::{lex, Pragma, PragmaScope, Token, TokenKind};

/// How a file participates in the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileKind {
    /// A crate root (`lib.rs` directly under `src/`): all library rules
    /// plus `forbid-unsafe`.
    LibRoot,
    /// Library source (under `src/`, not a binary target).
    Lib,
    /// A binary target (`src/bin/*`) — CLI panics on bad flags are fine,
    /// so `panic-unwrap` does not apply.
    Bin,
    /// Integration tests and benches — determinism rules still apply
    /// (`wall-clock`, `unseeded-rng`), panic/hash rules do not.
    TestOrBench,
    /// Examples — treated like binaries.
    Example,
}

impl FileKind {
    fn panics_allowed(self) -> bool {
        !matches!(self, FileKind::Lib | FileKind::LibRoot)
    }

    fn is_testish(self) -> bool {
        matches!(self, FileKind::TestOrBench)
    }
}

/// Static description of one rule (drives `--list-rules` and the docs).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RuleInfo {
    /// The rule's pragma name.
    pub name: &'static str,
    /// One-line description of what it enforces.
    pub summary: &'static str,
}

/// Every rule the engine knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock",
        summary: "no Instant::now / SystemTime::now outside pragma-approved clock impls",
    },
    RuleInfo {
        name: "hash-collection",
        summary: "no HashMap/HashSet in non-test code (iteration order); use BTreeMap/BTreeSet",
    },
    RuleInfo {
        name: "unseeded-rng",
        summary: "no entropy-seeded RNG construction; every RNG takes an explicit u64 seed",
    },
    RuleInfo {
        name: "panic-unwrap",
        summary: "no .unwrap()/.expect() in library non-test code without a pragma",
    },
    RuleInfo {
        name: "debug-macro",
        summary: "no dbg!/todo!/unimplemented! in non-test code",
    },
    RuleInfo {
        name: "forbid-unsafe",
        summary: "every crate root carries #![forbid(unsafe_code)]",
    },
    RuleInfo {
        name: "unused-pragma",
        summary: "every cim-lint allow must suppress at least one diagnostic",
    },
];

/// Whether `name` is a known rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One lint finding, rustc-style addressable.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation with the offending construct.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
fn test_ranges(toks: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute's bracketed tokens.
            let attr_start = i + 2;
            let mut depth = 1i32;
            let mut j = attr_start;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                }
                j += 1;
            }
            let attr = &toks[attr_start..j.saturating_sub(1).max(attr_start)];
            if is_test_attr(attr) {
                // Skip any further attributes, then find the item body.
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('#') && toks.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                        let mut d = 1i32;
                        k += 2;
                        while k < toks.len() && d > 0 {
                            if toks[k].is_punct('[') {
                                d += 1;
                            } else if toks[k].is_punct(']') {
                                d -= 1;
                            }
                            k += 1;
                        }
                        continue;
                    }
                    if toks[k].is_punct(';') {
                        // `mod foo;` — no inline body to exempt.
                        k = toks.len();
                        break;
                    }
                    if toks[k].is_punct('{') {
                        break;
                    }
                    k += 1;
                }
                if k < toks.len() {
                    // Brace-match the body.
                    let body_start = k;
                    let mut d = 1i32;
                    k += 1;
                    while k < toks.len() && d > 0 {
                        if toks[k].is_punct('{') {
                            d += 1;
                        } else if toks[k].is_punct('}') {
                            d -= 1;
                        }
                        k += 1;
                    }
                    ranges.push((body_start, k.saturating_sub(1)));
                    i = k;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Recognizes `test` and `cfg(test)` attribute bodies (exact forms only —
/// `cfg(not(test))` and friends are deliberately *not* test markers).
fn is_test_attr(attr: &[Token<'_>]) -> bool {
    match attr.len() {
        1 => attr[0].is_ident("test"),
        4 => {
            attr[0].is_ident("cfg")
                && attr[1].is_punct('(')
                && attr[2].is_ident("test")
                && attr[3].is_punct(')')
        }
        _ => false,
    }
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| a <= i && i <= b)
}

/// Lints one source file. `file` is the workspace-relative path used in
/// diagnostics; `kind` selects which rules apply.
pub fn lint_source(file: &str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let tests = test_ranges(toks);
    let mut raw: Vec<Diagnostic> = Vec::new();

    let diag = |t: &Token<'_>, rule: &'static str, message: String| Diagnostic {
        file: file.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    };

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let in_test = kind.is_testish() || in_ranges(&tests, i);
        let path_call = |name: &str| {
            (t.text == "Instant" || t.text == "SystemTime")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
        };

        // wall-clock: applies everywhere, tests included — a test that
        // reads the clock is a flake waiting to happen.
        if path_call("now") {
            raw.push(diag(
                t,
                "wall-clock",
                format!(
                    "wall-clock read `{}::now` is nondeterministic; route it through \
                     `cim_tune::Clock` (or justify with `// cim-lint: allow(wall-clock)`)",
                    t.text
                ),
            ));
        }

        // unseeded-rng: applies everywhere, tests included — unseeded test
        // RNGs make failures unreproducible.
        if matches!(
            t.text,
            "thread_rng" | "from_entropy" | "from_os_rng" | "ThreadRng" | "OsRng"
        ) {
            raw.push(diag(
                t,
                "unseeded-rng",
                format!(
                    "`{}` draws entropy from the environment; construct RNGs with an \
                     explicit u64 seed (`SeedableRng::seed_from_u64`)",
                    t.text
                ),
            ));
        }

        if in_test {
            continue;
        }

        // hash-collection: non-test code only.
        if t.text == "HashMap" || t.text == "HashSet" {
            raw.push(diag(
                t,
                "hash-collection",
                format!(
                    "`{}` has unspecified iteration order; use `BTreeMap`/`BTreeSet` or \
                     sort before anything observable (or justify with \
                     `// cim-lint: allow(hash-collection)`)",
                    t.text
                ),
            ));
        }

        // panic-unwrap: library non-test code only, method-call position.
        if !kind.panics_allowed()
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            raw.push(diag(
                t,
                "panic-unwrap",
                format!(
                    "`.{}()` in library non-test code; return an error or document the \
                     invariant with `// cim-lint: allow(panic-unwrap)`",
                    t.text
                ),
            ));
        }

        // debug-macro: non-test code only.
        if matches!(t.text, "dbg" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            raw.push(diag(
                t,
                "debug-macro",
                format!("`{}!` must not ship in non-test code", t.text),
            ));
        }
    }

    // forbid-unsafe: crate roots must carry the attribute.
    if kind == FileKind::LibRoot && !has_forbid_unsafe(toks) {
        raw.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    apply_pragmas(file, raw, &lexed.pragmas)
}

/// Looks for the token sequence `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(toks: &[Token<'_>]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Applies allow pragmas to `raw`, appending `unused-pragma` diagnostics
/// for allows that suppressed nothing (or name an unknown rule).
fn apply_pragmas(file: &str, raw: Vec<Diagnostic>, pragmas: &[Pragma]) -> Vec<Diagnostic> {
    // (pragma index, rule index) -> suppressed anything?
    let mut used: Vec<Vec<bool>> = pragmas.iter().map(|p| vec![false; p.rules.len()]).collect();
    let mut out: Vec<Diagnostic> = Vec::new();

    'diags: for d in raw {
        for (pi, p) in pragmas.iter().enumerate() {
            let covers = match p.scope {
                PragmaScope::File => true,
                PragmaScope::Line => d.line == p.line || d.line == p.line + 1,
            };
            if !covers {
                continue;
            }
            for (ri, rule) in p.rules.iter().enumerate() {
                if rule == d.rule {
                    used[pi][ri] = true;
                    continue 'diags;
                }
            }
        }
        out.push(d);
    }

    for (pi, p) in pragmas.iter().enumerate() {
        for (ri, rule) in p.rules.iter().enumerate() {
            if !is_known_rule(rule) {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: p.line,
                    col: 1,
                    rule: "unused-pragma",
                    message: format!("pragma names unknown rule `{rule}`"),
                });
            } else if !used[pi][ri] {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: p.line,
                    col: 1,
                    rule: "unused-pragma",
                    message: format!(
                        "`allow({rule})` suppresses nothing here; remove the stale pragma"
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| {
        (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Diagnostic> {
        lint_source("x.rs", FileKind::Lib, src)
    }

    #[test]
    fn clean_source_is_clean() {
        let d = lint_lib("fn add(a: u32, b: u32) -> u32 { a + b }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_modules_are_exempt_from_panic_and_hash_rules() {
        let src = r#"
            pub fn ok() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let m: HashMap<u32, u32> = HashMap::new();
                    assert_eq!(m.get(&1).copied().unwrap_or(0), 0);
                    Some(3).unwrap();
                }
            }
        "#;
        let d = lint_lib(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_marker() {
        let src = "#[cfg(not(test))]\nmod m { pub fn f(x: Option<u8>) -> u8 { x.unwrap() } }\n";
        let d = lint_lib(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "panic-unwrap");
    }

    #[test]
    fn line_pragma_suppresses_and_registers_usage() {
        let src = "use std::collections::HashMap; // cim-lint: allow(hash-collection)\n";
        assert!(lint_lib(src).is_empty());
        let above = "// cim-lint: allow(hash-collection) keyed lookups only\n\
                     use std::collections::HashMap;\n";
        assert!(lint_lib(above).is_empty());
    }

    #[test]
    fn pragma_does_not_leak_past_the_next_line() {
        let src = "// cim-lint: allow(hash-collection)\n\n\
                   use std::collections::HashMap;\n";
        let d = lint_lib(src);
        // The HashMap on line 3 fires, and the pragma on line 1 is unused.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "hash-collection"));
        assert!(d.iter().any(|d| d.rule == "unused-pragma"));
    }

    #[test]
    fn bins_may_unwrap_but_not_hash() {
        let src = "fn main() { let m = std::collections::HashMap::<u8, u8>::new(); \
                   m.get(&0).unwrap(); }\n";
        let d = lint_source("src/bin/x.rs", FileKind::Bin, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "hash-collection");
    }

    #[test]
    fn diagnostics_carry_positions() {
        let d = lint_lib("fn f() {\n    let t = Instant::now();\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].col), (2, 13));
        assert!(d[0].to_string().starts_with("x.rs:2:13: error[wall-clock]"));
    }
}
