//! # cim-verify — static correctness tooling for the CLSA-CIM workspace
//!
//! The repo's headline contract is *bit-for-bit reproducibility under
//! parallelism*: sweeps, Pareto fronts, and cached replays must be
//! byte-identical for every `--jobs N`, cold or warm. The golden /
//! differential / determinism harnesses check that contract dynamically —
//! this crate enforces the *invariants behind it* statically:
//!
//! * [`rules`] + [`workspace`] — a determinism **lint engine** over every
//!   workspace `.rs` file, built on a hand-rolled [`lexer`] (the container
//!   has no `syn`). Deny-by-default rules catch wall-clock reads, ordered
//!   output fed from hash collections, unseeded RNGs, undocumented library
//!   panics, missing `#![forbid(unsafe_code)]`, and stale suppressions.
//!   Run it with `cargo run -p cim-verify --bin cim-lint`.
//! * [`interleave`] + [`models`] — a loom-style **exhaustive interleaving
//!   checker**: bounded models of the `ScheduleCache` slot protocol and
//!   the lane-pool work-stealing handoff are explored over every possible
//!   schedule, proving no lost updates, no double-computes, and no
//!   deadlocks for the modeled scopes (`cim-lint --interleave`).
//!
//! The schedule-IR diagnostics pass lives in `clsa_core::diagnose` (next
//! to the data it audits); its CLI is `cim-bench`'s `lint-schedule`.
//!
//! # Examples
//!
//! Lint a snippet the way the binary lints a workspace file:
//!
//! ```
//! use cim_verify::rules::{lint_source, FileKind};
//!
//! let bad = "fn f() { let t = std::time::Instant::now(); }";
//! let diags = lint_source("demo.rs", FileKind::Lib, bad);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "wall-clock");
//!
//! let good = "fn f() -> u32 { 42 }";
//! assert!(lint_source("demo.rs", FileKind::Lib, good).is_empty());
//! ```
//!
//! Exhaustively verify the cache slot protocol:
//!
//! ```
//! use cim_verify::interleave::explore;
//! use cim_verify::models::CacheSlotProtocol;
//!
//! let stats = explore(&CacheSlotProtocol::same_key(2)).expect("no violations");
//! assert!(stats.schedules > 1); // every interleaving, not a sample
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interleave;
pub mod lexer;
pub mod models;
pub mod rules;
pub mod workspace;

pub use interleave::{explore, Exploration, Protocol, Step, Violation};
pub use lexer::{lex, Lexed, Pragma, PragmaScope, Token, TokenKind};
pub use rules::{is_known_rule, lint_source, Diagnostic, FileKind, RuleInfo, RULES};
pub use workspace::{classify, find_workspace_root, lint_workspace, workspace_rs_files};
