//! Interleaving models of the workspace's two concurrency protocols.
//!
//! These are *models*, not the production code itself: each nontrivial
//! atomic operation of the real implementation becomes one [`Protocol`]
//! step, and the explorer then proves the protocol's invariants over
//! **every** interleaving of those operations — something the runtime
//! tests (`runner_determinism`, the cache unit tests) can only sample.
//!
//! * [`CacheSlotProtocol`] models `cim_bench::runner::ScheduleCache`'s
//!   mutex + `Arc<OnceLock>` slot protocol (`get_or_compute`): the map
//!   lock is held only to fetch-or-insert the slot; `get_or_init` makes
//!   exactly one racing thread compute while the rest block and then read.
//!   Invariants: **no double-compute** (a fingerprint is computed at most
//!   once, ever), **no lost update** (every thread observes the published
//!   value), deadlock freedom, and interleaving-independent results.
//! * [`TwoLevelCacheProtocol`] stacks two such levels the way
//!   `ScheduleCache::run` resolves the stage prefix inside the schedule
//!   compute: distinct schedule keys sharing one stage key must still
//!   compute the stage exactly once, and the two mutexes (never held
//!   simultaneously) must not deadlock.
//! * [`LanePoolProtocol`] models `runner::parallel_map`'s per-lane atomic
//!   claim cursors with cyclic work stealing. Invariants: every job is
//!   executed **exactly once** no matter which worker wins each
//!   `fetch_add`, and the reassembled output is identical for every
//!   interleaving (the determinism contract of `--jobs N`).

use crate::interleave::{Protocol, Step};

/// Published value of key `k` (arbitrary but deterministic).
fn value_of(k: usize) -> u64 {
    100 + k as u64
}

/// State of one `OnceLock` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Nobody has begun initialization.
    Empty,
    /// `get_or_init` admitted this thread's closure; others block.
    Initializing(usize),
    /// The value is published; readers proceed.
    Ready(u64),
}

// ---------------------------------------------------------------------------
// Single-level cache slot protocol.
// ---------------------------------------------------------------------------

/// Model of one `get_or_compute` level. Each thread resolves one key.
#[derive(Debug, Clone)]
pub struct CacheSlotProtocol {
    /// `key_of_thread[tid]` — the key thread `tid` resolves.
    pub key_of_thread: Vec<usize>,
    /// Number of distinct keys.
    pub keys: usize,
}

impl CacheSlotProtocol {
    /// `threads` workers all racing on one key.
    pub fn same_key(threads: usize) -> Self {
        CacheSlotProtocol {
            key_of_thread: vec![0; threads],
            keys: 1,
        }
    }

    /// One worker per key, all distinct.
    pub fn distinct_keys(threads: usize) -> Self {
        CacheSlotProtocol {
            key_of_thread: (0..threads).collect(),
            keys: threads,
        }
    }

    /// Explicit assignment, e.g. `[0, 0, 1]`.
    pub fn with_keys(key_of_thread: Vec<usize>) -> Self {
        let keys = key_of_thread.iter().copied().max().map_or(0, |m| m + 1);
        CacheSlotProtocol {
            key_of_thread,
            keys,
        }
    }
}

/// Program counter of one modeled cache client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachePc {
    /// About to acquire the map mutex.
    Lock,
    /// Holding the mutex; about to fetch-or-insert the slot.
    Fetch,
    /// About to release the mutex.
    Unlock,
    /// At `get_or_init`: become the initializer, block, or read.
    Once,
    /// Admitted as initializer; about to run the compute closure.
    Compute,
    /// About to publish the computed value and read it back.
    Publish,
    /// Finished, with the observed value recorded.
    Done,
}

/// Shared + per-thread state of [`CacheSlotProtocol`].
#[derive(Debug, Clone)]
pub struct CacheState {
    map_locked: bool,
    slots: Vec<Slot>,
    computes: Vec<u32>,
    pc: Vec<CachePc>,
    observed: Vec<Option<u64>>,
}

impl Protocol for CacheSlotProtocol {
    type State = CacheState;

    fn threads(&self) -> usize {
        self.key_of_thread.len()
    }

    fn init(&self) -> CacheState {
        CacheState {
            map_locked: false,
            slots: vec![Slot::Empty; self.keys],
            computes: vec![0; self.keys],
            pc: vec![CachePc::Lock; self.key_of_thread.len()],
            observed: vec![None; self.key_of_thread.len()],
        }
    }

    fn step(&self, s: &mut CacheState, tid: usize) -> Step {
        let k = self.key_of_thread[tid];
        match s.pc[tid] {
            CachePc::Lock => {
                if s.map_locked {
                    return Step::Blocked;
                }
                s.map_locked = true;
                s.pc[tid] = CachePc::Fetch;
                Step::Ran
            }
            CachePc::Fetch => {
                // entry(key).or_default(): the slot exists from here on
                // (already materialized in `slots`), the thread now holds
                // an Arc to it.
                s.pc[tid] = CachePc::Unlock;
                Step::Ran
            }
            CachePc::Unlock => {
                s.map_locked = false;
                s.pc[tid] = CachePc::Once;
                Step::Ran
            }
            CachePc::Once => match s.slots[k] {
                Slot::Empty => {
                    s.slots[k] = Slot::Initializing(tid);
                    s.pc[tid] = CachePc::Compute;
                    Step::Ran
                }
                Slot::Initializing(_) => Step::Blocked,
                Slot::Ready(v) => {
                    s.observed[tid] = Some(v);
                    s.pc[tid] = CachePc::Done;
                    Step::Ran
                }
            },
            CachePc::Compute => {
                s.computes[k] += 1;
                s.pc[tid] = CachePc::Publish;
                Step::Ran
            }
            CachePc::Publish => {
                s.slots[k] = Slot::Ready(value_of(k));
                s.observed[tid] = Some(value_of(k));
                s.pc[tid] = CachePc::Done;
                Step::Ran
            }
            CachePc::Done => Step::Done,
        }
    }

    fn check(&self, s: &CacheState) -> Result<(), String> {
        for (k, &c) in s.computes.iter().enumerate() {
            if c > 1 {
                return Err(format!("double-compute: key {k} computed {c} times"));
            }
        }
        Ok(())
    }

    fn check_final(&self, s: &CacheState) -> Result<(), String> {
        for (tid, &k) in self.key_of_thread.iter().enumerate() {
            match s.observed[tid] {
                Some(v) if v == value_of(k) => {}
                Some(v) => {
                    return Err(format!(
                        "lost update: thread {tid} observed {v}, expected {}",
                        value_of(k)
                    ))
                }
                None => return Err(format!("thread {tid} finished without a value")),
            }
        }
        for k in 0..self.keys {
            let demanded = self.key_of_thread.contains(&k);
            let computed = s.computes[k];
            if demanded && computed != 1 {
                return Err(format!("key {k} computed {computed} times, expected exactly 1"));
            }
        }
        if s.map_locked {
            return Err("map mutex leaked".to_string());
        }
        Ok(())
    }

    fn output(&self, s: &CacheState) -> Vec<u64> {
        s.observed.iter().map(|o| o.unwrap_or(u64::MAX)).collect()
    }
}

// ---------------------------------------------------------------------------
// Two-level (stage + schedule) protocol.
// ---------------------------------------------------------------------------

/// Model of `ScheduleCache::run`: a schedule-level slot whose compute
/// closure resolves a stage-level slot first — two locks, two `OnceLock`
/// families, never held simultaneously.
#[derive(Debug, Clone)]
pub struct TwoLevelCacheProtocol {
    /// `sched_key_of_thread[tid]` — the schedule key each thread resolves.
    pub sched_key_of_thread: Vec<usize>,
    /// `stage_of_sched[k]` — the stage key schedule key `k` depends on.
    pub stage_of_sched: Vec<usize>,
}

impl TwoLevelCacheProtocol {
    /// The canonical PR-2 sharing scenario: two distinct schedule configs
    /// (baseline vs. cross-layer) over one shared stage prefix.
    pub fn shared_stage_pair() -> Self {
        TwoLevelCacheProtocol {
            sched_key_of_thread: vec![0, 1],
            stage_of_sched: vec![0, 0],
        }
    }
}

/// Program counter for the two-level client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TwoPc {
    SchedLock,
    SchedFetchUnlock,
    SchedOnce,
    StageLock,
    StageFetchUnlock,
    StageOnce,
    StageCompute,
    StagePublish,
    SchedCompute,
    SchedPublish,
    Done,
}

/// State of [`TwoLevelCacheProtocol`].
#[derive(Debug, Clone)]
pub struct TwoLevelState {
    sched_locked: bool,
    stage_locked: bool,
    sched_slots: Vec<Slot>,
    stage_slots: Vec<Slot>,
    sched_computes: Vec<u32>,
    stage_computes: Vec<u32>,
    pc: Vec<TwoPc>,
    observed: Vec<Option<u64>>,
}

impl Protocol for TwoLevelCacheProtocol {
    type State = TwoLevelState;

    fn threads(&self) -> usize {
        self.sched_key_of_thread.len()
    }

    fn init(&self) -> TwoLevelState {
        let stages = self.stage_of_sched.iter().copied().max().map_or(0, |m| m + 1);
        TwoLevelState {
            sched_locked: false,
            stage_locked: false,
            sched_slots: vec![Slot::Empty; self.stage_of_sched.len()],
            stage_slots: vec![Slot::Empty; stages],
            sched_computes: vec![0; self.stage_of_sched.len()],
            stage_computes: vec![0; stages],
            pc: vec![TwoPc::SchedLock; self.sched_key_of_thread.len()],
            observed: vec![None; self.sched_key_of_thread.len()],
        }
    }

    fn step(&self, s: &mut TwoLevelState, tid: usize) -> Step {
        let sk = self.sched_key_of_thread[tid];
        let gk = self.stage_of_sched[sk];
        match s.pc[tid] {
            TwoPc::SchedLock => {
                if s.sched_locked {
                    return Step::Blocked;
                }
                s.sched_locked = true;
                s.pc[tid] = TwoPc::SchedFetchUnlock;
                Step::Ran
            }
            TwoPc::SchedFetchUnlock => {
                s.sched_locked = false;
                s.pc[tid] = TwoPc::SchedOnce;
                Step::Ran
            }
            TwoPc::SchedOnce => match s.sched_slots[sk] {
                Slot::Empty => {
                    s.sched_slots[sk] = Slot::Initializing(tid);
                    s.pc[tid] = TwoPc::StageLock;
                    Step::Ran
                }
                Slot::Initializing(_) => Step::Blocked,
                Slot::Ready(v) => {
                    s.observed[tid] = Some(v);
                    s.pc[tid] = TwoPc::Done;
                    Step::Ran
                }
            },
            TwoPc::StageLock => {
                if s.stage_locked {
                    return Step::Blocked;
                }
                s.stage_locked = true;
                s.pc[tid] = TwoPc::StageFetchUnlock;
                Step::Ran
            }
            TwoPc::StageFetchUnlock => {
                s.stage_locked = false;
                s.pc[tid] = TwoPc::StageOnce;
                Step::Ran
            }
            TwoPc::StageOnce => match s.stage_slots[gk] {
                Slot::Empty => {
                    s.stage_slots[gk] = Slot::Initializing(tid);
                    s.pc[tid] = TwoPc::StageCompute;
                    Step::Ran
                }
                Slot::Initializing(_) => Step::Blocked,
                Slot::Ready(_) => {
                    s.pc[tid] = TwoPc::SchedCompute;
                    Step::Ran
                }
            },
            TwoPc::StageCompute => {
                s.stage_computes[gk] += 1;
                s.pc[tid] = TwoPc::StagePublish;
                Step::Ran
            }
            TwoPc::StagePublish => {
                s.stage_slots[gk] = Slot::Ready(value_of(gk));
                s.pc[tid] = TwoPc::SchedCompute;
                Step::Ran
            }
            TwoPc::SchedCompute => {
                s.sched_computes[sk] += 1;
                s.pc[tid] = TwoPc::SchedPublish;
                Step::Ran
            }
            TwoPc::SchedPublish => {
                s.sched_slots[sk] = Slot::Ready(value_of(1000 + sk));
                s.observed[tid] = Some(value_of(1000 + sk));
                s.pc[tid] = TwoPc::Done;
                Step::Ran
            }
            TwoPc::Done => Step::Done,
        }
    }

    fn check(&self, s: &TwoLevelState) -> Result<(), String> {
        if let Some(c) = s.stage_computes.iter().find(|&&c| c > 1) {
            return Err(format!("stage computed {c} times"));
        }
        if let Some(c) = s.sched_computes.iter().find(|&&c| c > 1) {
            return Err(format!("schedule computed {c} times"));
        }
        Ok(())
    }

    fn check_final(&self, s: &TwoLevelState) -> Result<(), String> {
        for (k, &c) in s.sched_computes.iter().enumerate() {
            let demanded = self.sched_key_of_thread.contains(&k);
            if demanded && c != 1 {
                return Err(format!("schedule key {k} computed {c} times"));
            }
        }
        for (g, &c) in s.stage_computes.iter().enumerate() {
            let demanded = self
                .sched_key_of_thread
                .iter()
                .any(|&sk| self.stage_of_sched[sk] == g);
            if demanded && c != 1 {
                return Err(format!(
                    "stage key {g} computed {c} times, expected exactly 1 (shared prefix)"
                ));
            }
        }
        if s.sched_locked || s.stage_locked {
            return Err("a mutex leaked".to_string());
        }
        Ok(())
    }

    fn output(&self, s: &TwoLevelState) -> Vec<u64> {
        s.observed.iter().map(|o| o.unwrap_or(u64::MAX)).collect()
    }
}

// ---------------------------------------------------------------------------
// Lane-pool work stealing.
// ---------------------------------------------------------------------------

/// Model of `parallel_map`'s claim protocol: per-lane atomic cursors,
/// workers drain their own lane then steal cyclically. One step =
/// one `fetch_add` (claim decided atomically, execution recorded with it).
#[derive(Debug, Clone)]
pub struct LanePoolProtocol {
    /// Worker (= lane) count, as in `parallel_map`'s `jobs`.
    pub workers: usize,
    /// Total job count.
    pub items: usize,
}

/// Per-worker progress through the lane cycle.
#[derive(Debug, Clone)]
pub struct LaneState {
    /// Claim cursor per lane (`fetch_add` target).
    cursors: Vec<usize>,
    /// Which lane offset each worker is on (0..=workers means done).
    offset: Vec<usize>,
    /// Execution count per job index — the exactly-once ledger.
    claims: Vec<u32>,
    /// Reassembled results, `f(i) = 10·i + 1`.
    results: Vec<Option<u64>>,
}

impl LanePoolProtocol {
    fn lane_len(&self, lane: usize) -> usize {
        if lane >= self.items {
            0
        } else {
            (self.items - lane).div_ceil(self.workers)
        }
    }
}

impl Protocol for LanePoolProtocol {
    type State = LaneState;

    fn threads(&self) -> usize {
        self.workers
    }

    fn init(&self) -> LaneState {
        LaneState {
            cursors: vec![0; self.workers],
            offset: vec![0; self.workers],
            claims: vec![0; self.items],
            results: vec![None; self.items],
        }
    }

    fn step(&self, s: &mut LaneState, w: usize) -> Step {
        if s.offset[w] >= self.workers {
            return Step::Done;
        }
        let lane = (w + s.offset[w]) % self.workers;
        // fetch_add: atomically claim a position in the lane.
        let pos = s.cursors[lane];
        s.cursors[lane] += 1;
        if pos >= self.lane_len(lane) {
            // Lane exhausted for this worker: move to the next lane.
            s.offset[w] += 1;
        } else {
            let index = lane + pos * self.workers;
            s.claims[index] += 1;
            s.results[index] = Some(10 * index as u64 + 1);
        }
        Step::Ran
    }

    fn check(&self, s: &LaneState) -> Result<(), String> {
        for (i, &c) in s.claims.iter().enumerate() {
            if c > 1 {
                return Err(format!("job {i} executed {c} times (double-compute)"));
            }
        }
        Ok(())
    }

    fn check_final(&self, s: &LaneState) -> Result<(), String> {
        for (i, &c) in s.claims.iter().enumerate() {
            if c != 1 {
                return Err(format!("job {i} executed {c} times, expected exactly once"));
            }
        }
        for (lane, &cur) in s.cursors.iter().enumerate() {
            if cur < self.lane_len(lane) {
                return Err(format!("lane {lane} not drained: cursor {cur}"));
            }
        }
        Ok(())
    }

    fn output(&self, s: &LaneState) -> Vec<u64> {
        s.results.iter().map(|r| r.unwrap_or(u64::MAX)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::explore;

    #[test]
    fn three_workers_one_key_compute_once() {
        let stats = explore(&CacheSlotProtocol::same_key(3)).unwrap();
        assert!(stats.schedules > 1, "must branch: {stats:?}");
    }

    #[test]
    fn distinct_keys_do_not_serialize_compute() {
        let stats = explore(&CacheSlotProtocol::distinct_keys(2)).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn shared_stage_prefix_computes_once() {
        let stats = explore(&TwoLevelCacheProtocol::shared_stage_pair()).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn lane_pool_claims_exactly_once() {
        let stats = explore(&LanePoolProtocol {
            workers: 2,
            items: 4,
        })
        .unwrap();
        assert!(stats.schedules > 1);
    }

    /// A deliberately broken lane pool (non-atomic cursor: read and
    /// increment as separate steps) must be caught as a double-compute.
    #[derive(Debug, Clone)]
    struct BrokenLanePool;

    #[derive(Debug, Clone)]
    struct BrokenState {
        cursor: usize,
        staged: [Option<usize>; 2],
        done: [bool; 2],
        claims: Vec<u32>,
    }

    impl Protocol for BrokenLanePool {
        type State = BrokenState;

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> BrokenState {
            BrokenState {
                cursor: 0,
                staged: [None, None],
                done: [false, false],
                claims: vec![0; 2],
            }
        }

        fn step(&self, s: &mut BrokenState, w: usize) -> Step {
            if s.done[w] {
                return Step::Done;
            }
            match s.staged[w] {
                None => {
                    if s.cursor >= 2 {
                        s.done[w] = true;
                        return Step::Ran;
                    }
                    s.staged[w] = Some(s.cursor); // read …
                    Step::Ran
                }
                Some(pos) => {
                    s.cursor = pos + 1; // … then increment: not atomic!
                    if pos < 2 {
                        s.claims[pos] += 1;
                    }
                    s.staged[w] = None;
                    Step::Ran
                }
            }
        }

        fn check(&self, s: &BrokenState) -> Result<(), String> {
            if s.claims.iter().any(|&c| c > 1) {
                return Err("double-compute".to_string());
            }
            Ok(())
        }

        fn check_final(&self, _: &BrokenState) -> Result<(), String> {
            Ok(())
        }

        fn output(&self, _: &BrokenState) -> Vec<u64> {
            vec![]
        }
    }

    #[test]
    fn a_non_atomic_cursor_is_caught() {
        let v = explore(&BrokenLanePool).unwrap_err();
        assert!(v.message.contains("double-compute"), "{v}");
    }
}
