//! `cim-lint` — the workspace determinism linter and interleaving suite.
//!
//! Usage:
//! ```text
//! cargo run --release -p cim-verify --bin cim-lint [-- options]
//!   --root <path>    workspace root (default: ascend from the cwd)
//!   --interleave     run the exhaustive interleaving suite instead
//!   --list-rules     print the rule table and exit
//!   --json <path>    also export diagnostics (or interleave stats) as JSON
//! ```
//!
//! Exit status: 0 when clean, 1 on any diagnostic (or interleaving
//! violation), 2 on usage/I-O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use cim_verify::interleave::explore;
use cim_verify::models::{CacheSlotProtocol, LanePoolProtocol, TwoLevelCacheProtocol};
use cim_verify::workspace::{find_workspace_root, lint_workspace};
use cim_verify::RULES;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list-rules") {
        for r in RULES {
            println!("{:<16} {}", r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--interleave") {
        return run_interleave_suite(flag_value(&args, "--json"));
    }

    let root = match flag_value(&args, "--root").map(PathBuf::from) {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cim-lint: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("cim-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cim-lint: walking {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &diags {
        println!("{d}");
    }
    if let Some(path) = flag_value(&args, "--json") {
        let json = serde_json::to_string_pretty(&diags).unwrap_or_else(|_| "[]".to_string());
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cim-lint: writing {path} failed: {e}");
            return ExitCode::from(2);
        }
    }
    if diags.is_empty() {
        println!("cim-lint: workspace clean ({} rules)", RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("cim-lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// Runs every bounded interleaving model exhaustively, reporting the
/// explored-schedule counts that make "exhaustive" auditable.
fn run_interleave_suite(json: Option<String>) -> ExitCode {
    let mut rows: Vec<(String, u64, u64)> = Vec::new();
    let mut failed = false;

    let mut run = |name: &str, result: Result<cim_verify::Exploration, cim_verify::Violation>| {
        match result {
            Ok(stats) => {
                println!(
                    "interleave {name}: OK — {} schedules, {} states, depth {}",
                    stats.schedules, stats.states, stats.max_depth
                );
                rows.push((name.to_string(), stats.schedules, stats.states));
            }
            Err(v) => {
                println!("interleave {name}: VIOLATION — {v}");
                failed = true;
            }
        }
    };

    run("cache_slot/same_key_2", explore(&CacheSlotProtocol::same_key(2)));
    run("cache_slot/same_key_3", explore(&CacheSlotProtocol::same_key(3)));
    run(
        "cache_slot/distinct_keys_2",
        explore(&CacheSlotProtocol::distinct_keys(2)),
    );
    run(
        "cache_slot/mixed_3t_2k",
        explore(&CacheSlotProtocol::with_keys(vec![0, 0, 1])),
    );
    run(
        "two_level/shared_stage_pair",
        explore(&TwoLevelCacheProtocol::shared_stage_pair()),
    );
    run(
        "lane_pool/w2_items4",
        explore(&LanePoolProtocol {
            workers: 2,
            items: 4,
        }),
    );
    run(
        "lane_pool/w3_items5",
        explore(&LanePoolProtocol {
            workers: 3,
            items: 5,
        }),
    );

    let total: u64 = rows.iter().map(|(_, s, _)| s).sum();
    println!("interleave suite: {} models, {total} schedules explored", rows.len());

    if let Some(path) = json {
        // The vendored serde_json has no `json!`; the rows are flat enough
        // to format by hand.
        let entries: Vec<String> = rows
            .iter()
            .map(|(name, schedules, states)| {
                format!(
                    "  {{\"model\": \"{name}\", \"schedules\": {schedules}, \"states\": {states}}}"
                )
            })
            .collect();
        let json = format!("[\n{}\n]\n", entries.join(",\n"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cim-lint: writing {path} failed: {e}");
            return ExitCode::from(2);
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
