//! A hand-rolled Rust token scanner.
//!
//! The container has no crates.io access, so the lint engine cannot lean
//! on `syn`/`proc-macro2`; this module implements the small slice of Rust
//! lexing the rules actually need:
//!
//! * identifiers and punctuation with exact `line:col` positions
//!   (1-based, columns counted in characters, like rustc);
//! * comments (line, nested block) and every string-ish literal form
//!   (`"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, char literals,
//!   lifetimes) are consumed without producing identifier tokens, so a
//!   `HashMap` inside a doc comment or an error string never trips a rule;
//! * `// cim-lint: allow(<rule>)` pragma comments are surfaced as
//!   structured [`Pragma`] values for the suppression machinery.
//!
//! The scanner is **total**: any byte sequence (decoded lossily to UTF-8)
//! produces a token list without panicking — unterminated literals simply
//! run to end of input. This is proven by a property test over arbitrary
//! bytes (`tests/lexer_props.rs`).

/// What a token is, at the granularity the lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `#`, `{`, …).
    Punct,
    /// A literal: number, string, char, or byte-string. Rules only need
    /// to know these are *not* identifiers.
    Literal,
    /// A lifetime (`'a`). Kept distinct so `'static` is not an ident.
    Lifetime,
}

/// One scanned token with its source position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// The kind of token.
    pub kind: TokenKind,
    /// The token's text (for [`TokenKind::Punct`], a single character).
    pub text: &'a str,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column, counted in characters.
    pub col: u32,
}

impl Token<'_> {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }
}

/// Scope of one `cim-lint` allow pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// `// cim-lint: allow(rule)` — suppresses diagnostics on the pragma's
    /// own line and on the next source line.
    Line,
    /// `// cim-lint: allow-file(rule)` — suppresses diagnostics for the
    /// named rules anywhere in the file.
    File,
}

/// One parsed `cim-lint` pragma comment.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule names listed in the pragma, e.g. `["hash-collection"]`.
    pub rules: Vec<String>,
    /// Line the pragma comment starts on (1-based).
    pub line: u32,
    /// Whether the pragma covers one line or the whole file.
    pub scope: PragmaScope,
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Every identifier/punct/literal token, in source order.
    pub tokens: Vec<Token<'a>>,
    /// Every `cim-lint` pragma comment found.
    pub pragmas: Vec<Pragma>,
}

/// Character-level cursor over the source with line/column tracking.
struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next unread character.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `f` holds, returning the consumed slice.
    fn eat_while(&mut self, f: impl Fn(char) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if !f(c) {
                break;
            }
            self.bump();
        }
        &self.src[start..self.pos]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses the body of a `cim-lint` comment, if it is one.
///
/// Recognized forms (whitespace-tolerant):
/// `cim-lint: allow(rule-a, rule-b)` and `cim-lint: allow-file(rule)`.
fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim_start_matches('!').trim();
    let rest = body.strip_prefix("cim-lint:")?.trim();
    let (scope, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (PragmaScope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (PragmaScope::Line, r)
    } else {
        return None;
    };
    let rest = rest.trim();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    Some(Pragma { rules, line, scope })
}

/// Scans `src` into tokens and pragmas. Total: never panics, any input.
pub fn lex(src: &str) -> Lexed<'_> {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments (and pragma extraction).
        if c == '/' && cur.peek2() == Some('/') {
            let start = cur.pos;
            let comment_line = cur.line;
            cur.eat_while(|c| c != '\n');
            if let Some(p) = parse_pragma(&src[start..cur.pos], comment_line) {
                out.pragmas.push(p);
            }
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(), cur.peek2()) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // Raw strings and byte/C-string prefixes: r"…", r#"…"#, br"…",
        // b"…", c"…". Scan the prefix letters, then the quoted body.
        if (c == 'r' || c == 'b' || c == 'c') && raw_or_bytestring(&mut cur, &mut out, line, col) {
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let text = cur.eat_while(is_ident_continue);
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        // Numbers (consumed coarsely — rules never inspect them). A `.` is
        // part of the number only when a digit follows, so tuple-field
        // method chains like `x.0.unwrap()` still surface `unwrap`.
        if c.is_ascii_digit() {
            let start = cur.pos;
            while let Some(n) = cur.peek() {
                let in_number = n.is_ascii_alphanumeric()
                    || n == '_'
                    || (n == '.' && cur.peek2().is_some_and(|d| d.is_ascii_digit()));
                if !in_number {
                    break;
                }
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: &src[start..cur.pos],
                line,
                col,
            });
            continue;
        }
        // Plain strings.
        if c == '"' {
            let text = eat_string(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let text = eat_char_or_lifetime(&mut cur);
            let kind = if text.ends_with('\'') && text.len() > 1 {
                TokenKind::Literal
            } else {
                TokenKind::Lifetime
            };
            out.tokens.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }
        // Everything else: single punctuation character.
        let start = cur.pos;
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: &src[start..cur.pos],
            line,
            col,
        });
    }
    out
}

/// Handles `r`/`b`/`c`-prefixed string forms. Returns `true` when a token
/// was consumed, `false` when the `r`/`b`/`c` is an ordinary identifier
/// start (the caller then scans it as an identifier).
fn raw_or_bytestring<'a>(
    cur: &mut Cursor<'a>,
    out: &mut Lexed<'a>,
    line: u32,
    col: u32,
) -> bool {
    let src = cur.src;
    let start = cur.pos;
    let c = match cur.peek() {
        Some(c) => c,
        None => return false,
    };
    // Determine the literal shape by lookahead only; bail out without
    // consuming anything unless it really is a string form.
    let (raw, skip) = match (c, cur.peek2(), cur.peek3()) {
        ('r', Some('"'), _) => (true, 1),
        ('r', Some('#'), _) => (true, 1),
        ('b', Some('"'), _) => (false, 1),
        ('b', Some('r'), Some('"' | '#')) => (true, 2),
        ('b', Some('\''), _) => {
            // Byte char literal b'x'.
            cur.bump(); // b
            let text_start = cur.pos;
            let t = eat_char_or_lifetime(cur);
            debug_assert_eq!(&src[text_start..cur.pos], t);
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: &src[start..cur.pos],
                line,
                col,
            });
            return true;
        }
        ('c', Some('"'), _) => (false, 1),
        _ => return false,
    };
    for _ in 0..skip {
        cur.bump();
    }
    if raw {
        // r…: count '#'s, then scan to '"' + same number of '#'s.
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            cur.bump();
        }
        if cur.peek() != Some('"') {
            // `r#foo` raw identifier (or stray `r#`): emit the ident.
            let text = cur.eat_while(is_ident_continue);
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            return true;
        }
        cur.bump(); // opening quote
        loop {
            match cur.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some('#') {
                        cur.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    } else {
        // b"…" / c"…": ordinary escaped string body.
        eat_string(cur);
    }
    out.tokens.push(Token {
        kind: TokenKind::Literal,
        text: &src[start..cur.pos],
        line,
        col,
    });
    true
}

/// Consumes a `"`-delimited string (cursor on the opening quote),
/// honouring backslash escapes; unterminated strings run to end of input.
fn eat_string<'a>(cur: &mut Cursor<'a>) -> &'a str {
    let start = cur.pos;
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
    &cur.src[start..cur.pos]
}

/// Consumes either a char literal (`'a'`, `'\n'`, `'\u{1F600}'`) or a
/// lifetime (`'a`, `'static`), cursor on the `'`.
fn eat_char_or_lifetime<'a>(cur: &mut Cursor<'a>) -> &'a str {
    let start = cur.pos;
    cur.bump(); // '
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume escape, then to closing quote.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'ab`, `'a ` are lifetimes. Disambiguate by
            // the character after the ident-ish run.
            cur.bump();
            if cur.peek() == Some('\'') && !is_ident_continue(c) {
                cur.bump();
            } else if cur.peek() == Some('\'') {
                // Exactly one ident char then a quote: char literal.
                cur.bump();
            } else {
                // Lifetime: consume the rest of the identifier.
                cur.eat_while(is_ident_continue);
            }
        }
        Some('\'') => {
            // `''` — empty/invalid; consume the second quote and move on.
            cur.bump();
        }
        Some(_) => {
            // Non-ident single char like '+': char literal.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
        None => {}
    }
    &cur.src[start..cur.pos]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            let b = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|&&i| i == "HashMap").count(), 1);
    }

    #[test]
    fn positions_are_one_based_and_char_counted() {
        let l = lex("ab cd\n  ef");
        assert_eq!(l.tokens[0].text, "ab");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (1, 4));
        assert_eq!((l.tokens[2].line, l.tokens[2].col), (2, 3));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_pragmas_parse() {
        let l = lex("// cim-lint: allow(wall-clock, hash-collection)\nfn f() {}");
        assert_eq!(l.pragmas.len(), 1);
        assert_eq!(l.pragmas[0].rules, vec!["wall-clock", "hash-collection"]);
        assert_eq!(l.pragmas[0].line, 1);
        assert_eq!(l.pragmas[0].scope, PragmaScope::Line);
    }

    #[test]
    fn file_pragmas_parse_and_tolerate_reasons() {
        let l = lex("// cim-lint: allow-file(panic-unwrap) — constructors assert valid shapes\n");
        assert_eq!(l.pragmas.len(), 1);
        assert_eq!(l.pragmas[0].scope, PragmaScope::File);
        assert_eq!(l.pragmas[0].rules, vec!["panic-unwrap"]);
    }

    #[test]
    fn non_pragma_comments_are_ignored() {
        let l = lex("// cim-lint: disallow(x)\n// cim-lint: allow()\n// nothing\n");
        assert!(l.pragmas.is_empty());
    }

    #[test]
    fn unterminated_forms_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "r#", "ident\u{85}"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn raw_identifiers_scan_as_identifiers() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type"));
    }
}
