//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, in request order per
//! connection. Requests tolerate missing optional fields (a bare
//! `{"id":"r1","model":"fig5"}` is a valid schedule request); responses
//! always serialize the same fields in the same order, so a reply is
//! **byte-identical** whether it was computed cold, replayed from the
//! persistent [`ResultStore`](cim_bench::runner::ResultStore), or served
//! from the in-memory schedule cache — the property the protocol test
//! suite pins.
//!
//! ```text
//! → {"id":"r1","op":"schedule","model":"fig5","strategy":"xinf","x":0,"deadline_ms":null,"after":[]}
//! ← {"id":"r1","status":"ok","result":{"model":"fig5","label":"xinf",...}}
//! → {"id":"s1","op":"stats"}
//! ← {"id":"s1","status":"ok","stats":{"completed":1,...,"p99_ns":...}}
//! ```
//!
//! Errors are **typed**: the `error` field carries a stable machine-
//! readable code (see [`ErrorCode`]), `detail` a human-readable line.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use crate::stats::StatsSnapshot;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Schedule a `(model, strategy, x)` configuration (the default).
    Schedule,
    /// Report the daemon's service-level statistics.
    Stats,
    /// Report the daemon's health (degraded-mode flags, store
    /// writability, queue pressure) — cheap enough for probes.
    Health,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to finish queued work and exit.
    Shutdown,
}

impl Op {
    /// The wire name of the operation.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Schedule => "schedule",
            Op::Stats => "stats",
            Op::Health => "health",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "schedule" => Some(Op::Schedule),
            "stats" => Some(Op::Stats),
            "health" => Some(Op::Health),
            "ping" => Some(Op::Ping),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }
}

/// One scheduling request.
///
/// Deserialization fills defaults for everything except what the
/// operation actually needs, so clients send only the fields they care
/// about; serialization always emits every field (deterministic bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen request id — echoed in the response, referenced by
    /// `after` tags, unique over a daemon's lifetime. Required for
    /// `schedule` requests.
    pub id: String,
    /// The operation (wire default: `schedule`).
    pub op: Op,
    /// Model name: any zoo registry entry or `fig5`.
    pub model: String,
    /// Strategy name: `layer-by-layer`, `xinf`, `wdup`, or `wdup+xinf`
    /// (wire default: `xinf`).
    pub strategy: String,
    /// Extra PEs over the model's `PE_min` (the paper's `x`).
    pub x: usize,
    /// Relative deadline in milliseconds from arrival. A request still
    /// queued past its deadline is rejected with
    /// [`ErrorCode::DeadlineExpired`] instead of being scheduled.
    pub deadline_ms: Option<u64>,
    /// Happens-after tags: ids of previously submitted requests this one
    /// must observe. The request is dispatched only after every tagged
    /// request finished (successfully or not).
    pub after: Vec<String>,
}

impl Request {
    /// A schedule request with defaults for the optional fields.
    pub fn schedule(id: &str, model: &str, strategy: &str, x: usize) -> Self {
        Request {
            id: id.to_string(),
            op: Op::Schedule,
            model: model.to_string(),
            strategy: strategy.to_string(),
            x,
            deadline_ms: None,
            after: Vec::new(),
        }
    }

    /// A bare operation request (`stats`, `ping`, `shutdown`).
    pub fn bare(id: &str, op: Op) -> Self {
        Request {
            id: id.to_string(),
            op,
            model: String::new(),
            strategy: String::new(),
            x: 0,
            deadline_ms: None,
            after: Vec::new(),
        }
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("op".into(), Value::Str(self.op.as_str().into())),
            ("model".into(), Value::Str(self.model.clone())),
            ("strategy".into(), Value::Str(self.strategy.clone())),
            ("x".into(), Value::U64(self.x as u64)),
            ("deadline_ms".into(), self.deadline_ms.to_value()),
            ("after".into(), self.after.to_value()),
        ])
    }
}

/// `map[key]` as a string, or `default` when absent.
fn str_or<'a>(
    map: &'a [(String, Value)],
    key: &str,
    default: &'a str,
) -> Result<&'a str, SerdeError> {
    match Value::map_get(map, key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_str()
            .ok_or_else(|| SerdeError::custom(format!("field `{key}` must be a string"))),
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let map = v
            .as_map()
            .ok_or_else(|| SerdeError::custom("request must be a JSON object"))?;
        let op_name = str_or(map, "op", "schedule")?;
        let op = Op::parse(op_name)
            .ok_or_else(|| SerdeError::custom(format!("unknown op `{op_name}`")))?;
        let x = match Value::map_get(map, "x") {
            None | Some(Value::Null) => 0,
            Some(v) => usize::from_value(v)
                .map_err(|_| SerdeError::custom("field `x` must be an unsigned integer"))?,
        };
        let deadline_ms = match Value::map_get(map, "deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(u64::from_value(v).map_err(|_| {
                SerdeError::custom("field `deadline_ms` must be an unsigned integer")
            })?),
        };
        let after = match Value::map_get(map, "after") {
            None | Some(Value::Null) => Vec::new(),
            Some(v) => Vec::<String>::from_value(v)
                .map_err(|_| SerdeError::custom("field `after` must be an array of ids"))?,
        };
        Ok(Request {
            id: str_or(map, "id", "")?.to_string(),
            op,
            model: str_or(map, "model", "")?.to_string(),
            strategy: str_or(map, "strategy", "xinf")?.to_string(),
            x,
            deadline_ms,
            after,
        })
    }
}

/// Stable machine-readable error codes of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed request (unparseable line, missing id, duplicate id, …).
    BadRequest,
    /// The `model` names no registry entry.
    UnknownModel,
    /// The `strategy` names no known configuration family.
    UnknownStrategy,
    /// An `after` tag references an id the daemon never admitted.
    UnknownDependency,
    /// The request sat queued past its relative deadline.
    DeadlineExpired,
    /// Load shed: the admission queue is at its configured depth.
    Overloaded,
    /// Per-tenant load shed: the requesting model already has its
    /// configured quota of pending computations queued.
    QuotaExceeded,
    /// The scheduling pipeline itself failed for this configuration.
    ScheduleFailed,
    /// The request line exceeded the daemon's configured frame bound;
    /// the oversized line was discarded, the connection stays usable.
    LineTooLong,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownModel => "unknown_model",
            ErrorCode::UnknownStrategy => "unknown_strategy",
            ErrorCode::UnknownDependency => "unknown_dependency",
            ErrorCode::DeadlineExpired => "deadline_expired",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::ScheduleFailed => "schedule_failed",
            ErrorCode::LineTooLong => "line_too_long",
        }
    }

    /// Whether a request rejected with this code is worth resending as
    /// is: the failure reflects transient daemon state (global or
    /// per-tenant load shed), not the request itself. Drives the
    /// client's seeded backoff-and-retry loop — retrying a `bad_request`
    /// or `unknown_model` forever would only reproduce the same reply.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::QuotaExceeded)
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "bad_request" => Some(ErrorCode::BadRequest),
            "unknown_model" => Some(ErrorCode::UnknownModel),
            "unknown_strategy" => Some(ErrorCode::UnknownStrategy),
            "unknown_dependency" => Some(ErrorCode::UnknownDependency),
            "deadline_expired" => Some(ErrorCode::DeadlineExpired),
            "overloaded" => Some(ErrorCode::Overloaded),
            "quota_exceeded" => Some(ErrorCode::QuotaExceeded),
            "schedule_failed" => Some(ErrorCode::ScheduleFailed),
            "line_too_long" => Some(ErrorCode::LineTooLong),
            _ => None,
        }
    }
}

/// A typed service error: a stable code plus a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// The machine-readable code.
    pub code: ErrorCode,
    /// The human-readable explanation (deterministic for a given
    /// request/engine state, so error replies are reproducible too).
    pub detail: String,
}

impl ServeError {
    /// Builds an error of `code` with `detail`.
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        ServeError {
            code,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.detail)
    }
}

/// The payload of a successful schedule response — built exclusively
/// from the persisted [`RunSummary`](cim_bench::runner::RunSummary)
/// fields plus request metadata, so cold and warm replies serialize to
/// identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReply {
    /// Model name, echoed.
    pub model: String,
    /// Canonical configuration label (sweep notation).
    pub label: String,
    /// Extra PEs over `PE_min`, echoed.
    pub x: usize,
    /// `PE_min` of the model on the case-study crossbar.
    pub pe_min: usize,
    /// Total PEs of the architecture evaluated.
    pub total_pes: usize,
    /// Makespan in crossbar cycles.
    pub makespan_cycles: u64,
    /// Makespan in nanoseconds (cycles × t_MVM).
    pub makespan_ns: u64,
    /// Eq. 2 utilization.
    pub utilization: f64,
    /// Bytes forwarded over cross-layer dependency edges per inference.
    pub noc_bytes: u64,
    /// Layers duplicated by the mapping.
    pub duplicated_layers: usize,
    /// The request's happens-after tags, all of which completed before
    /// this request was dispatched.
    pub observed: Vec<String>,
}

/// The payload of a `health` response — the degraded-mode flags a
/// supervisor polls to decide whether the daemon needs attention. The
/// daemon keeps answering in degraded mode (cache-only: the persistent
/// store stopped accepting writes), so liveness alone cannot tell the
/// difference; this report can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// `true` when the daemon is in cache-only degraded mode: a
    /// persistent store is configured but writes to it fail, so answers
    /// come from the in-memory cache and nothing persists.
    pub degraded: bool,
    /// Whether a persistent store is configured at all.
    pub store_configured: bool,
    /// Whether the configured store currently accepts writes (`true`
    /// when no store is configured — nothing to degrade).
    pub store_writable: bool,
    /// Store writes that failed over the daemon's lifetime.
    pub store_write_errors: u64,
    /// Requests admitted but not yet completed.
    pub queue_depth: u64,
    /// Requests parked on unfinished `after` dependencies.
    pub parked: u64,
}

/// The body of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A completed schedule request.
    Schedule(ScheduleReply),
    /// A statistics snapshot.
    Stats(StatsSnapshot),
    /// A health report.
    Health(HealthReport),
    /// Reply to `ping`.
    Pong,
    /// Acknowledgement of `shutdown`.
    Shutdown,
    /// A typed error.
    Error(ServeError),
}

/// One response line: the echoed request id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this response answers (empty for unparseable
    /// requests, which carry no usable id).
    pub id: String,
    /// The response body.
    pub body: ResponseBody,
}

impl Response {
    /// A successful schedule response.
    pub fn ok(id: impl Into<String>, reply: ScheduleReply) -> Self {
        Response {
            id: id.into(),
            body: ResponseBody::Schedule(reply),
        }
    }

    /// A typed error response.
    pub fn error(id: impl Into<String>, err: ServeError) -> Self {
        Response {
            id: id.into(),
            body: ResponseBody::Error(err),
        }
    }

    /// The error body, if this is an error response.
    pub fn as_error(&self) -> Option<&ServeError> {
        match &self.body {
            ResponseBody::Error(e) => Some(e),
            _ => None,
        }
    }

    /// The schedule payload, if this is a successful schedule response.
    pub fn as_schedule(&self) -> Option<&ScheduleReply> {
        match &self.body {
            ResponseBody::Schedule(r) => Some(r),
            _ => None,
        }
    }

    /// The stats payload, if this is a stats response.
    pub fn as_stats(&self) -> Option<&StatsSnapshot> {
        match &self.body {
            ResponseBody::Stats(s) => Some(s),
            _ => None,
        }
    }

    /// The health payload, if this is a health response.
    pub fn as_health(&self) -> Option<&HealthReport> {
        match &self.body {
            ResponseBody::Health(h) => Some(h),
            _ => None,
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut map = vec![("id".into(), Value::Str(self.id.clone()))];
        match &self.body {
            ResponseBody::Schedule(reply) => {
                map.push(("status".into(), Value::Str("ok".into())));
                map.push(("result".into(), reply.to_value()));
            }
            ResponseBody::Stats(snapshot) => {
                map.push(("status".into(), Value::Str("ok".into())));
                map.push(("stats".into(), snapshot.to_value()));
            }
            ResponseBody::Health(report) => {
                map.push(("status".into(), Value::Str("ok".into())));
                map.push(("health".into(), report.to_value()));
            }
            ResponseBody::Pong => {
                map.push(("status".into(), Value::Str("ok".into())));
                map.push(("pong".into(), Value::Bool(true)));
            }
            ResponseBody::Shutdown => {
                map.push(("status".into(), Value::Str("ok".into())));
                map.push(("shutdown".into(), Value::Bool(true)));
            }
            ResponseBody::Error(err) => {
                map.push(("status".into(), Value::Str("error".into())));
                map.push(("error".into(), Value::Str(err.code.as_str().into())));
                map.push(("detail".into(), Value::Str(err.detail.clone())));
            }
        }
        Value::Map(map)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let map = v
            .as_map()
            .ok_or_else(|| SerdeError::custom("response must be a JSON object"))?;
        let id = str_or(map, "id", "")?.to_string();
        let status = str_or(map, "status", "")?;
        let body = if status == "error" {
            let code_name = str_or(map, "error", "")?;
            let code = ErrorCode::parse(code_name)
                .ok_or_else(|| SerdeError::custom(format!("unknown error code `{code_name}`")))?;
            ResponseBody::Error(ServeError::new(code, str_or(map, "detail", "")?))
        } else if let Some(result) = Value::map_get(map, "result") {
            ResponseBody::Schedule(ScheduleReply::from_value(result)?)
        } else if let Some(stats) = Value::map_get(map, "stats") {
            ResponseBody::Stats(StatsSnapshot::from_value(stats)?)
        } else if let Some(health) = Value::map_get(map, "health") {
            ResponseBody::Health(HealthReport::from_value(health)?)
        } else if Value::map_get(map, "pong").is_some() {
            ResponseBody::Pong
        } else if Value::map_get(map, "shutdown").is_some() {
            ResponseBody::Shutdown
        } else {
            return Err(SerdeError::custom("response has no recognizable body"));
        };
        Ok(Response { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_request_fills_defaults() {
        let req: Request =
            serde_json::from_str(r#"{"id":"r1","model":"fig5"}"#).expect("parses");
        assert_eq!(req.id, "r1");
        assert_eq!(req.op, Op::Schedule);
        assert_eq!(req.model, "fig5");
        assert_eq!(req.strategy, "xinf");
        assert_eq!(req.x, 0);
        assert_eq!(req.deadline_ms, None);
        assert!(req.after.is_empty());
    }

    #[test]
    fn full_request_round_trips() {
        let mut req = Request::schedule("r2", "TinyYOLOv4", "wdup+xinf", 8);
        req.deadline_ms = Some(250);
        req.after = vec!["r0".into(), "r1".into()];
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn bad_fields_are_typed_parse_errors() {
        assert!(serde_json::from_str::<Request>(r#"{"op":"fly"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"x":"many"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"after":"r0"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"[1,2]"#).is_err());
    }

    #[test]
    fn response_bodies_round_trip() {
        let reply = ScheduleReply {
            model: "fig5".into(),
            label: "xinf".into(),
            x: 0,
            pe_min: 2,
            total_pes: 2,
            makespan_cycles: 10,
            makespan_ns: 14000,
            utilization: 0.625,
            noc_bytes: 96,
            duplicated_layers: 0,
            observed: vec!["r0".into()],
        };
        for resp in [
            Response::ok("a", reply),
            Response::error("b", ServeError::new(ErrorCode::Overloaded, "queue full")),
            Response {
                id: "c".into(),
                body: ResponseBody::Pong,
            },
            Response {
                id: "d".into(),
                body: ResponseBody::Shutdown,
            },
            Response {
                id: "e".into(),
                body: ResponseBody::Health(HealthReport {
                    degraded: true,
                    store_configured: true,
                    store_writable: false,
                    store_write_errors: 3,
                    queue_depth: 1,
                    parked: 0,
                }),
            },
        ] {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, resp, "round trip of {json}");
        }
    }

    #[test]
    fn error_codes_round_trip_their_wire_names() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownModel,
            ErrorCode::UnknownStrategy,
            ErrorCode::UnknownDependency,
            ErrorCode::DeadlineExpired,
            ErrorCode::Overloaded,
            ErrorCode::QuotaExceeded,
            ErrorCode::ScheduleFailed,
            ErrorCode::LineTooLong,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn only_load_shed_is_retryable() {
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::QuotaExceeded.is_retryable());
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownModel,
            ErrorCode::UnknownStrategy,
            ErrorCode::UnknownDependency,
            ErrorCode::DeadlineExpired,
            ErrorCode::ScheduleFailed,
            ErrorCode::LineTooLong,
        ] {
            assert!(!code.is_retryable(), "{}", code.as_str());
        }
    }

    #[test]
    fn health_op_round_trips() {
        let req = Request::bare("h1", Op::Health);
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(Op::parse("health"), Some(Op::Health));
    }
}
