//! Service-level statistics: latency percentiles, throughput, hit rates.
//!
//! The engine records one end-to-end latency sample (arrival → response,
//! in [`Clock`](cim_tune::Clock) nanoseconds) per completed request;
//! [`StatsSnapshot`] reduces the samples with nearest-rank percentiles.
//! Everything here is plain arithmetic over engine counters — a snapshot
//! under [`ManualClock`](cim_tune::ManualClock) is fully deterministic,
//! which is what lets the SLO test suite pin exact p50/p99 values.

use serde::{Deserialize, Serialize};

/// Nearest-rank percentile (`p` in `[0, 100]`) of **sorted** samples.
/// Returns 0 for an empty slice — the "no data yet" reading a `stats`
/// probe sees right after startup.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-tenant service counters — one row per model name that reached the
/// engine's state machine, sorted by model in [`StatsSnapshot::tenants`].
/// A tenant is a request's resolved `model` field: the fabric's notion of
/// "who shares the chip" carried over to the service layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStat {
    /// Registry model name identifying the tenant.
    pub model: String,
    /// Requests for this tenant admitted to the state machine.
    pub submitted: u64,
    /// Successful schedule responses (warm or dispatched).
    pub ok: u64,
    /// Typed error responses (excluding quota sheds).
    pub errors: u64,
    /// Requests shed with `quota_exceeded` at admission.
    pub quota_shed: u64,
    /// Pending computations (queued + parked) held right now.
    pub queued: u64,
}

/// One point-in-time reading of the daemon's service-level counters —
/// the payload of a `stats` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests accepted for processing (including warm-path answers).
    pub submitted: u64,
    /// Requests answered (ok or error), excluding shed ones.
    pub completed: u64,
    /// Successful schedule responses.
    pub ok: u64,
    /// Typed error responses (expired deadlines, failed schedules, …).
    pub errors: u64,
    /// Requests answered from the persistent store without queueing.
    pub warm_store: u64,
    /// Requests answered from the in-memory schedule cache without
    /// queueing.
    pub warm_cache: u64,
    /// Requests coalesced onto an already-queued identical computation.
    pub coalesced: u64,
    /// Requests rejected with `overloaded` at admission.
    pub shed: u64,
    /// Requests rejected with `deadline_expired` at dispatch.
    pub expired: u64,
    /// Entries currently admitted and runnable.
    pub queue_depth: u64,
    /// Entries currently parked on unmet happens-after tags.
    pub parked: u64,
    /// Median end-to-end latency in nanoseconds (0 until data exists).
    pub p50_ns: u64,
    /// 99th-percentile end-to-end latency in nanoseconds.
    pub p99_ns: u64,
    /// Completed requests per second of clock time (0 until data exists).
    pub throughput_rps: f64,
    /// Persistent-store hits over the daemon's lifetime (all paths).
    pub store_hits: u64,
    /// Persistent-store lookups over the daemon's lifetime.
    pub store_lookups: u64,
    /// In-memory schedule-cache hits over the daemon's lifetime.
    pub cache_hits: u64,
    /// In-memory schedule-cache lookups over the daemon's lifetime.
    pub cache_lookups: u64,
    /// Persistent-store writes that failed over the daemon's lifetime.
    pub store_write_errors: u64,
    /// `true` while the daemon runs cache-only: a persistent store is
    /// configured but currently rejects writes, so answers still flow
    /// (warm from memory, cold recomputed) but nothing persists.
    pub degraded: bool,
    /// Per-tenant counters, sorted by model name. Empty until a request
    /// resolves a model.
    pub tenants: Vec<TenantStat>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = StatsSnapshot {
            submitted: 10,
            completed: 8,
            ok: 7,
            errors: 1,
            warm_store: 2,
            warm_cache: 1,
            coalesced: 1,
            shed: 2,
            expired: 1,
            queue_depth: 0,
            parked: 0,
            p50_ns: 1_000,
            p99_ns: 9_000,
            throughput_rps: 12.5,
            store_hits: 2,
            store_lookups: 5,
            cache_hits: 1,
            cache_lookups: 4,
            store_write_errors: 1,
            degraded: true,
            tenants: vec![TenantStat {
                model: "fig5".into(),
                submitted: 10,
                ok: 7,
                errors: 1,
                quota_shed: 2,
                queued: 0,
            }],
        };
        let back: StatsSnapshot =
            serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(back, snap);
    }
}
