//! The service engine: admission control, EDF dispatch, warm paths.
//!
//! [`ServeEngine`] is the daemon with the sockets removed — every policy
//! decision of the service lives here, behind a synchronous API, so the
//! SLO and happens-after test suites can drive it deterministically with
//! a [`ManualClock`](cim_tune::ManualClock) and zero I/O. A request moves
//! through four gates:
//!
//! 1. **Validate** — unknown models/strategies/dependencies and duplicate
//!    or missing ids are rejected with typed errors before they cost
//!    anything.
//! 2. **Warm path** — a request without happens-after tags whose
//!    `(model, arch, strategy)` fingerprint key already has a persisted
//!    [`RunSummary`] (or a completed in-memory cache slot) is answered
//!    immediately, bypassing the queue. Replies are built exclusively
//!    from summary fields, so a warm reply is byte-identical to the cold
//!    reply that seeded it.
//! 3. **Admit** — past the configured queue depth the engine load-sheds
//!    with a typed `overloaded` error; an identical already-queued
//!    computation instead *coalesces* the new request onto the existing
//!    entry (one compute, N replies) without consuming capacity.
//! 4. **Dispatch** — admitted entries run on the PR-2 lane pool in
//!    earliest-deadline-first order (ties broken by arrival sequence);
//!    entries whose every deadline lapsed while queued are rejected
//!    without computing. Requests with unmet `after` tags park until
//!    their dependencies finish, then join the queue.
//!
//! Dispatch drains to quiescence in rounds; because each round finishes
//! in EDF order and the lane pool reassembles results in item order, the
//! full response stream is bit-for-bit independent of the worker count.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cim_bench::runner::{
    panic_message, parallel_map, CacheKey, ResultStore, RunSummary, ScheduleCache,
};
use cim_ir::Graph;
use cim_tune::Clock;
use clsa_core::RunConfig;
use parking_lot::Mutex;

use crate::protocol::{ErrorCode, HealthReport, Op, Request, Response, ScheduleReply, ServeError};
use crate::registry::{build_config, ModelRegistry};
use crate::stats::{percentile, StatsSnapshot, TenantStat};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Lane-pool worker threads for cold dispatch.
    pub jobs: usize,
    /// Admission limit: queued + parked entries beyond this are shed.
    pub max_queue: usize,
    /// Per-tenant admission limit: with `Some(n)`, one tenant (a
    /// request's resolved model) may hold at most `n` pending
    /// computations across the queue and the parked set; excess requests
    /// are shed with a retryable `quota_exceeded` error. `None` disables
    /// the gate. Coalescing onto an existing computation never counts —
    /// it consumes no new slot.
    pub tenant_quota: Option<usize>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: 1,
            max_queue: 256,
            tenant_quota: None,
        }
    }
}

/// Ticket for a queued request; [`ServeEngine::dispatch`] pairs each
/// ticket with its eventual [`Response`].
pub type Ticket = u64;

/// Outcome of [`ServeEngine::submit`].
#[derive(Debug)]
pub enum Submission {
    /// Answered on the spot (warm hit, typed rejection, stats, ping).
    Immediate(Response),
    /// Admitted; the response arrives from a later
    /// [`dispatch`](ServeEngine::dispatch) under this ticket.
    Enqueued(Ticket),
}

/// One answered party of a pending entry: the original request plus any
/// coalesced duplicates, each with its own id, ticket, and deadline.
#[derive(Debug, Clone)]
struct Subscriber {
    ticket: Ticket,
    id: String,
    after: Vec<String>,
    arrival: Duration,
    /// Absolute deadline (arrival + `deadline_ms`).
    deadline: Option<Duration>,
}

/// One admitted computation: a `(model, arch, strategy)` key plus the
/// subscribers awaiting its result.
#[derive(Debug, Clone)]
struct PendingEntry {
    /// Admission sequence number — the EDF tie-breaker.
    seq: u64,
    key: CacheKey,
    model: String,
    label: String,
    x: usize,
    pe_min: usize,
    t_mvm_ns: u64,
    model_fp: u64,
    graph: Arc<Graph>,
    config: RunConfig,
    /// Earliest subscriber deadline — the EDF sort key.
    deadline: Option<Duration>,
    /// Happens-after ids not yet completed (parked while non-empty).
    waiting_on: BTreeSet<String>,
    subscribers: Vec<Subscriber>,
}

impl PendingEntry {
    fn edf_key(&self) -> (Duration, u64) {
        (self.deadline.unwrap_or(Duration::MAX), self.seq)
    }
}

/// Lifetime counters for one tenant (queued depth is derived from the
/// queue/parked sets at snapshot time instead).
#[derive(Debug, Clone, Copy, Default)]
struct TenantCounters {
    submitted: u64,
    ok: u64,
    errors: u64,
    quota_shed: u64,
}

/// Mutable engine state, guarded by one mutex.
#[derive(Debug, Default)]
struct EngineState {
    /// Runnable entries (dependencies satisfied).
    queue: Vec<PendingEntry>,
    /// Entries waiting on happens-after ids.
    parked: Vec<PendingEntry>,
    /// Every id ever admitted (warm-answered, queued, or coalesced) —
    /// the namespace `after` tags may reference.
    registered: BTreeSet<String>,
    /// Ids whose requests finished (ok or error).
    completed: BTreeSet<String>,
    /// Finish order of ids — what the happens-after tests assert on.
    completion_log: Vec<String>,
    next_seq: u64,
    next_ticket: Ticket,
    /// Per-tenant lifetime counters, keyed by resolved model name.
    tenants: BTreeMap<String, TenantCounters>,
}

/// The scheduling service with the sockets removed. See the module docs.
pub struct ServeEngine {
    registry: ModelRegistry,
    cache: ScheduleCache,
    store: Option<ResultStore>,
    clock: Arc<dyn Clock + Send + Sync>,
    /// Clock reading at construction — throughput measures the engine's
    /// *own* service interval, not the age of the clock it was handed.
    started_at: Duration,
    opts: EngineOptions,
    state: Mutex<EngineState>,
    latencies: Mutex<Vec<u64>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    warm_store: AtomicU64,
    warm_cache: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("opts", &self.opts)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Builds an engine over an optional persistent store and a clock
    /// (the daemon passes [`SystemClock`](cim_tune::SystemClock); tests
    /// pass [`ManualClock`](cim_tune::ManualClock)).
    pub fn new(
        opts: EngineOptions,
        store: Option<ResultStore>,
        clock: Arc<dyn Clock + Send + Sync>,
    ) -> Self {
        let started_at = clock.now();
        ServeEngine {
            registry: ModelRegistry::new(),
            cache: ScheduleCache::new(),
            store,
            clock,
            started_at,
            opts,
            state: Mutex::new(EngineState::default()),
            latencies: Mutex::new(Vec::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            warm_store: AtomicU64::new(0),
            warm_cache: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// The engine's persistent store handle, if one was configured.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Submits one request. `schedule` requests either answer
    /// immediately (warm hit / typed rejection) or enqueue; `stats` and
    /// `ping` always answer immediately; `shutdown` is acknowledged here
    /// but acted on by the caller (the daemon owns process lifetime).
    pub fn submit(&self, req: &Request) -> Submission {
        match req.op {
            Op::Schedule => self.submit_schedule(req),
            Op::Stats => Submission::Immediate(Response {
                id: req.id.clone(),
                body: crate::protocol::ResponseBody::Stats(self.stats()),
            }),
            Op::Health => Submission::Immediate(Response {
                id: req.id.clone(),
                body: crate::protocol::ResponseBody::Health(self.health()),
            }),
            Op::Ping => Submission::Immediate(Response {
                id: req.id.clone(),
                body: crate::protocol::ResponseBody::Pong,
            }),
            Op::Shutdown => Submission::Immediate(Response {
                id: req.id.clone(),
                body: crate::protocol::ResponseBody::Shutdown,
            }),
        }
    }

    fn reject(&self, id: &str, err: ServeError) -> Submission {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        Submission::Immediate(Response::error(id, err))
    }

    fn submit_schedule(&self, req: &Request) -> Submission {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let arrival = self.clock.now();

        if req.id.is_empty() {
            return self.reject(
                "",
                ServeError::new(ErrorCode::BadRequest, "schedule requests need an `id`"),
            );
        }

        // Resolve the model and configuration before taking the state
        // lock — canonicalization is slow and must not serialize the
        // engine (the registry memoizes, so this is cheap after first
        // contact per model).
        let entry = match self.registry.resolve(&req.model) {
            Ok(entry) => entry,
            Err(err) => return self.reject(&req.id, err),
        };
        let (config, label) = match build_config(&entry, &req.strategy, req.x) {
            Ok(built) => built,
            Err(err) => return self.reject(&req.id, err),
        };
        let key = CacheKey::schedule(entry.fingerprint, &config);
        let t_mvm_ns = config.arch.crossbar().t_mvm_ns;
        let deadline = req.deadline_ms.map(|ms| arrival + Duration::from_millis(ms));

        let mut st = self.state.lock();
        st.tenants.entry(entry.name.clone()).or_default().submitted += 1;
        if st.registered.contains(&req.id) {
            st.tenants.entry(entry.name.clone()).or_default().errors += 1;
            drop(st);
            return self.reject(
                &req.id,
                ServeError::new(
                    ErrorCode::BadRequest,
                    format!("duplicate request id `{}`", req.id),
                ),
            );
        }
        for dep in &req.after {
            if !st.registered.contains(dep) {
                st.tenants.entry(entry.name.clone()).or_default().errors += 1;
                drop(st);
                return self.reject(
                    &req.id,
                    ServeError::new(
                        ErrorCode::UnknownDependency,
                        format!("`after` references unknown request id `{dep}`"),
                    ),
                );
            }
        }

        // Warm path: only for requests without happens-after tags — a
        // tagged request must wait for its dependencies even if its own
        // result is already known.
        if req.after.is_empty() {
            let warm = if let Some(summary) = self.store.as_ref().and_then(|s| s.get(&key)) {
                self.warm_store.fetch_add(1, Ordering::Relaxed);
                Some(summary)
            } else if let Some(result) = self.cache.peek(&key) {
                self.warm_cache.fetch_add(1, Ordering::Relaxed);
                Some(RunSummary::of(&result))
            } else {
                None
            };
            if let Some(summary) = warm {
                st.tenants.entry(entry.name.clone()).or_default().ok += 1;
                st.registered.insert(req.id.clone());
                st.completed.insert(req.id.clone());
                st.completion_log.push(req.id.clone());
                drop(st);
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.record_latency(arrival);
                let reply = ScheduleReply {
                    model: entry.name.clone(),
                    label,
                    x: req.x,
                    pe_min: entry.pe_min,
                    total_pes: summary.total_pes,
                    makespan_cycles: summary.makespan_cycles,
                    makespan_ns: summary.makespan_cycles * t_mvm_ns,
                    utilization: summary.utilization,
                    noc_bytes: summary.noc_bytes,
                    duplicated_layers: summary.duplicated_layers,
                    observed: Vec::new(),
                };
                return Submission::Immediate(Response::ok(&req.id, reply));
            }

            // Coalesce onto a runnable entry computing the same key
            // (never a parked one — that would order this request behind
            // dependencies it did not declare).
            if let Some(pos) = st.queue.iter().position(|e| e.key == key) {
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                let existing = &mut st.queue[pos];
                existing.subscribers.push(Subscriber {
                    ticket,
                    id: req.id.clone(),
                    after: Vec::new(),
                    arrival,
                    deadline,
                });
                existing.deadline = match (existing.deadline, deadline) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                st.registered.insert(req.id.clone());
                drop(st);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return Submission::Enqueued(ticket);
            }
        }

        // Per-tenant admission: with a quota configured, one tenant may
        // hold at most that many pending computations across the queue
        // and the parked set. Checked before the global depth so a noisy
        // tenant hears `quota_exceeded` (its own doing) rather than
        // `overloaded` (everyone's problem). Shed requests are *not*
        // registered — the id may be retried once earlier work drains.
        if let Some(quota) = self.opts.tenant_quota {
            let held = st
                .queue
                .iter()
                .chain(st.parked.iter())
                .filter(|e| e.model == entry.name)
                .count();
            if held >= quota {
                st.tenants.entry(entry.name.clone()).or_default().quota_shed += 1;
                drop(st);
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Submission::Immediate(Response::error(
                    &req.id,
                    ServeError::new(
                        ErrorCode::QuotaExceeded,
                        format!("tenant `{}` at its queue quota ({quota})", entry.name),
                    ),
                ));
            }
        }

        // Admission control: shed past the configured depth. Shed
        // requests are *not* registered — the client may retry the id.
        if st.queue.len() + st.parked.len() >= self.opts.max_queue {
            drop(st);
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.errors.fetch_add(1, Ordering::Relaxed);
            return Submission::Immediate(Response::error(
                &req.id,
                ServeError::new(
                    ErrorCode::Overloaded,
                    format!("admission queue at capacity ({})", self.opts.max_queue),
                ),
            ));
        }

        let ticket = st.next_ticket;
        st.next_ticket += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        let waiting_on: BTreeSet<String> = req
            .after
            .iter()
            .filter(|dep| !st.completed.contains(*dep))
            .cloned()
            .collect();
        let pending = PendingEntry {
            seq,
            key,
            model: entry.name.clone(),
            label,
            x: req.x,
            pe_min: entry.pe_min,
            t_mvm_ns,
            model_fp: entry.fingerprint,
            graph: Arc::clone(&entry.graph),
            config,
            deadline,
            waiting_on,
            subscribers: vec![Subscriber {
                ticket,
                id: req.id.clone(),
                after: req.after.clone(),
                arrival,
                deadline,
            }],
        };
        st.registered.insert(req.id.clone());
        if pending.waiting_on.is_empty() {
            st.queue.push(pending);
        } else {
            st.parked.push(pending);
        }
        Submission::Enqueued(ticket)
    }

    /// Resolves one entry: store → cache → compute → store.
    fn compute(&self, entry: &PendingEntry) -> Result<RunSummary, ServeError> {
        if let Some(store) = &self.store {
            if let Some(summary) = store.get(&entry.key) {
                return Ok(summary);
            }
        }
        // Contain a panicking pipeline (a bug on one configuration, or an
        // injected chaos fault) to this entry: its subscribers get a
        // typed `schedule_failed`, the daemon and its queue live on.
        let result = match catch_unwind(AssertUnwindSafe(|| {
            self.cache.run(entry.model_fp, &entry.graph, &entry.config)
        })) {
            Ok(outcome) => outcome.map_err(|e| {
                ServeError::new(
                    ErrorCode::ScheduleFailed,
                    format!("scheduling `{}` ({}) failed: {e}", entry.model, entry.label),
                )
            }),
            Err(payload) => Err(ServeError::new(
                ErrorCode::ScheduleFailed,
                format!(
                    "scheduling `{}` ({}) panicked (contained): {}",
                    entry.model,
                    entry.label,
                    panic_message(payload.as_ref())
                ),
            )),
        }?;
        let summary = RunSummary::of(&result);
        if let Some(store) = &self.store {
            store.put(&entry.key, &summary);
        }
        Ok(summary)
    }

    fn record_latency(&self, arrival: Duration) {
        let elapsed = self.clock.now().saturating_sub(arrival);
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.latencies.lock().push(ns);
    }

    /// Drains the queue to quiescence, returning `(ticket, response)`
    /// pairs in completion order.
    ///
    /// Each round takes the current queue, sorts it
    /// earliest-deadline-first (arrival sequence breaks ties), runs it on
    /// the lane pool, finishes in EDF order, and unparks any entries
    /// whose dependencies completed — repeating until nothing is
    /// runnable. The response stream is deterministic for any
    /// `jobs` count.
    pub fn dispatch(&self) -> Vec<(Ticket, Response)> {
        let mut out = Vec::new();
        loop {
            let mut batch = {
                let mut st = self.state.lock();
                if st.queue.is_empty() {
                    break;
                }
                std::mem::take(&mut st.queue)
            };
            batch.sort_by_key(PendingEntry::edf_key);

            // One clock read per round: every deadline decision in the
            // round sees the same instant, so outcomes are reproducible
            // under ManualClock and independent of per-item timing.
            let now = self.clock.now();
            let outcomes = parallel_map(&batch, self.opts.jobs, |_, entry| {
                let any_live = entry
                    .subscribers
                    .iter()
                    .any(|s| s.deadline.is_none_or(|d| now <= d));
                if !any_live {
                    // Every subscriber's deadline lapsed while queued:
                    // reject without paying for the computation.
                    return Err(ServeError::new(
                        ErrorCode::DeadlineExpired,
                        "all deadlines elapsed before dispatch",
                    ));
                }
                self.compute(entry)
            });
            let done = self.clock.now();

            let mut st = self.state.lock();
            for (entry, outcome) in batch.into_iter().zip(outcomes) {
                for sub in &entry.subscribers {
                    let response = match (&outcome, sub.deadline) {
                        (_, Some(d)) if now > d => {
                            self.expired.fetch_add(1, Ordering::Relaxed);
                            self.errors.fetch_add(1, Ordering::Relaxed);
                            // Report the deadline actually enforced —
                            // the absolute instant relative to *this*
                            // subscriber's arrival. (The request's raw
                            // `deadline_ms` may differ for coalesced
                            // subscribers, and the old
                            // `unwrap_or(0)` printed `0` for them.)
                            let effective_ms = d.saturating_sub(sub.arrival).as_millis();
                            Response::error(
                                &sub.id,
                                ServeError::new(
                                    ErrorCode::DeadlineExpired,
                                    format!("deadline_ms {effective_ms} elapsed before dispatch"),
                                ),
                            )
                        }
                        (Ok(summary), _) => {
                            self.ok.fetch_add(1, Ordering::Relaxed);
                            Response::ok(
                                &sub.id,
                                ScheduleReply {
                                    model: entry.model.clone(),
                                    label: entry.label.clone(),
                                    x: entry.x,
                                    pe_min: entry.pe_min,
                                    total_pes: summary.total_pes,
                                    makespan_cycles: summary.makespan_cycles,
                                    makespan_ns: summary.makespan_cycles * entry.t_mvm_ns,
                                    utilization: summary.utilization,
                                    noc_bytes: summary.noc_bytes,
                                    duplicated_layers: summary.duplicated_layers,
                                    observed: sub.after.clone(),
                                },
                            )
                        }
                        (Err(err), _) => {
                            if err.code == ErrorCode::DeadlineExpired {
                                self.expired.fetch_add(1, Ordering::Relaxed);
                            }
                            self.errors.fetch_add(1, Ordering::Relaxed);
                            Response::error(&sub.id, err.clone())
                        }
                    };
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    let tenant = st.tenants.entry(entry.model.clone()).or_default();
                    if response.as_error().is_some() {
                        tenant.errors += 1;
                    } else {
                        tenant.ok += 1;
                    }
                    let latency = done.saturating_sub(sub.arrival);
                    self.latencies
                        .lock()
                        .push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                    st.completed.insert(sub.id.clone());
                    st.completion_log.push(sub.id.clone());
                    out.push((sub.ticket, response));
                }
            }

            // Unpark entries whose every dependency has now finished —
            // they join the next round's EDF sort.
            let parked = std::mem::take(&mut st.parked);
            for mut entry in parked {
                entry.waiting_on.retain(|dep| !st.completed.contains(dep));
                if entry.waiting_on.is_empty() {
                    st.queue.push(entry);
                } else {
                    st.parked.push(entry);
                }
            }
        }
        out
    }

    /// Whether nothing is queued or parked.
    pub fn is_idle(&self) -> bool {
        let st = self.state.lock();
        st.queue.is_empty() && st.parked.is_empty()
    }

    /// The ids of finished requests, in finish order.
    pub fn completion_order(&self) -> Vec<String> {
        self.state.lock().completion_log.clone()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let (queue_depth, parked, tenants) = {
            let st = self.state.lock();
            let mut queued_by_model: BTreeMap<&str, u64> = BTreeMap::new();
            for e in st.queue.iter().chain(st.parked.iter()) {
                *queued_by_model.entry(e.model.as_str()).or_default() += 1;
            }
            let tenants: Vec<TenantStat> = st
                .tenants
                .iter()
                .map(|(model, c)| TenantStat {
                    model: model.clone(),
                    submitted: c.submitted,
                    ok: c.ok,
                    errors: c.errors,
                    quota_shed: c.quota_shed,
                    queued: queued_by_model.get(model.as_str()).copied().unwrap_or(0),
                })
                .collect();
            (st.queue.len() as u64, st.parked.len() as u64, tenants)
        };
        let mut samples = self.latencies.lock().clone();
        samples.sort_unstable();
        let completed = self.completed.load(Ordering::Relaxed);
        // Measured from engine construction, not clock zero: an engine
        // born into an already-running clock (daemon restart, shared
        // ManualClock) must not dilute its rate with time it never saw.
        let elapsed = self.clock.now().saturating_sub(self.started_at);
        let throughput_rps = if elapsed > Duration::ZERO {
            completed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        let store_stats = self.store.as_ref().map(ResultStore::stats).unwrap_or_default();
        let cache_stats = self.cache.stats();
        let degraded = self.store_degraded();
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            warm_store: self.warm_store.load(Ordering::Relaxed),
            warm_cache: self.warm_cache.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            queue_depth,
            parked,
            p50_ns: percentile(&samples, 50.0),
            p99_ns: percentile(&samples, 99.0),
            throughput_rps,
            store_hits: store_stats.hits,
            store_lookups: store_stats.lookups,
            cache_hits: cache_stats.hits(),
            cache_lookups: cache_stats.stage_lookups + cache_stats.schedule_lookups,
            store_write_errors: store_stats.write_errors,
            degraded,
            tenants,
        }
    }

    /// Whether the engine is in cache-only degraded mode: a persistent
    /// store is configured but its directory currently rejects writes
    /// (probed through the store's own atomic write path, so injected
    /// chaos faults and a read-only directory look the same). With no
    /// store configured there is nothing to degrade.
    fn store_degraded(&self) -> bool {
        self.store
            .as_ref()
            .is_some_and(|store| !store.probe_writable())
    }

    /// The payload of a `health` probe — cheap relative to `stats` (no
    /// latency-sample sort) but carrying the same degraded-mode verdict.
    pub fn health(&self) -> HealthReport {
        let (queue_depth, parked) = {
            let st = self.state.lock();
            (st.queue.len() as u64, st.parked.len() as u64)
        };
        let store_configured = self.store.is_some();
        let store_writable = self
            .store
            .as_ref()
            .is_none_or(|store| store.probe_writable());
        HealthReport {
            degraded: store_configured && !store_writable,
            store_configured,
            store_writable,
            store_write_errors: self
                .store
                .as_ref()
                .map(|s| s.stats().write_errors)
                .unwrap_or(0),
            queue_depth,
            parked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_tune::ManualClock;

    fn engine(jobs: usize, max_queue: usize) -> (ServeEngine, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let engine = ServeEngine::new(
            EngineOptions {
                jobs,
                max_queue,
                tenant_quota: None,
            },
            None,
            Arc::clone(&clock) as Arc<dyn Clock + Send + Sync>,
        );
        (engine, clock)
    }

    fn ok_reply(sub: Submission, engine: &ServeEngine) -> Response {
        match sub {
            Submission::Immediate(resp) => resp,
            Submission::Enqueued(ticket) => {
                let mut responses = engine.dispatch();
                let pos = responses
                    .iter()
                    .position(|(t, _)| *t == ticket)
                    .expect("dispatch answers the ticket");
                responses.swap_remove(pos).1
            }
        }
    }

    #[test]
    fn cold_then_cache_warm_same_reply() {
        let (engine, _) = engine(1, 16);
        let cold = ok_reply(
            engine.submit(&Request::schedule("a", "fig5", "xinf", 0)),
            &engine,
        );
        let warm = match engine.submit(&Request::schedule("b", "fig5", "xinf", 0)) {
            Submission::Immediate(resp) => resp,
            Submission::Enqueued(_) => panic!("second identical request must be warm"),
        };
        assert!(cold.as_schedule().unwrap().makespan_cycles > 0);
        // Same payload modulo the echoed id.
        assert_eq!(cold.as_schedule(), warm.as_schedule());
        assert_eq!(engine.stats().warm_cache, 1);
    }

    #[test]
    fn validation_rejections_are_typed() {
        let (engine, _) = engine(1, 16);
        let cases = [
            (Request::schedule("", "fig5", "xinf", 0), ErrorCode::BadRequest),
            (Request::schedule("a", "nope", "xinf", 0), ErrorCode::UnknownModel),
            (Request::schedule("a", "fig5", "nope", 0), ErrorCode::UnknownStrategy),
            (
                Request {
                    after: vec!["ghost".into()],
                    ..Request::schedule("a", "fig5", "xinf", 0)
                },
                ErrorCode::UnknownDependency,
            ),
        ];
        for (req, code) in cases {
            let resp = ok_reply(engine.submit(&req), &engine);
            assert_eq!(resp.as_error().expect("typed rejection").code, code);
        }
        // A rejected id is not registered, so it can be retried.
        let retry = ok_reply(
            engine.submit(&Request::schedule("a", "fig5", "xinf", 0)),
            &engine,
        );
        assert!(retry.as_schedule().is_some());
        // ...but a *successful* id cannot be reused.
        let dup = ok_reply(
            engine.submit(&Request::schedule("a", "fig5", "xinf", 0)),
            &engine,
        );
        assert_eq!(dup.as_error().unwrap().code, ErrorCode::BadRequest);
    }

    #[test]
    fn identical_queued_requests_coalesce() {
        let (engine, _) = engine(1, 16);
        let t1 = match engine.submit(&Request::schedule("a", "fig5", "wdup", 1)) {
            Submission::Enqueued(t) => t,
            Submission::Immediate(r) => panic!("cold request must queue, got {r:?}"),
        };
        let t2 = match engine.submit(&Request::schedule("b", "fig5", "wdup", 1)) {
            Submission::Enqueued(t) => t,
            Submission::Immediate(r) => panic!("identical request must coalesce, got {r:?}"),
        };
        let responses = engine.dispatch();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].0, t1);
        assert_eq!(responses[1].0, t2);
        assert_eq!(
            responses[0].1.as_schedule(),
            responses[1].1.as_schedule(),
            "coalesced subscribers share one computation's payload"
        );
        let stats = engine.stats();
        assert_eq!(stats.coalesced, 1);
        assert!(stats.cache_lookups > 0);
    }

    #[test]
    fn degraded_store_keeps_answering_and_surfaces_in_health_and_stats() {
        use cim_bench::runner::{FaultPlan, FaultSite};

        let dir = std::env::temp_dir().join(format!("cim_serve_degraded_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Phase 1: a healthy engine persists one summary.
        {
            let store = ResultStore::open(&dir).expect("store opens");
            let clock = Arc::new(ManualClock::new());
            let engine = ServeEngine::new(
                EngineOptions {
                    jobs: 1,
                    max_queue: 16,
                    tenant_quota: None,
                },
                Some(store),
                clock as Arc<dyn Clock + Send + Sync>,
            );
            let health = engine.health();
            assert!(!health.degraded);
            assert!(health.store_configured);
            assert!(health.store_writable);
            let reply = ok_reply(
                engine.submit(&Request::schedule("a", "fig5", "xinf", 0)),
                &engine,
            );
            assert!(reply.as_schedule().is_some());
            assert!(!engine.stats().degraded);
        }

        // Phase 2: the same directory, but every store write now fails
        // (deterministic injection stands in for a read-only disk, which
        // a root test runner cannot simulate with permission bits).
        let mut store = ResultStore::open(&dir).expect("store reopens");
        let plan = Arc::new(
            FaultPlan::new(7)
                .with_rate(FaultSite::StoreWrite, 1000)
                .with_rate(FaultSite::StoreRename, 1000),
        );
        store.set_fault_hook(plan);
        let clock = Arc::new(ManualClock::new());
        let engine = ServeEngine::new(
            EngineOptions {
                jobs: 1,
                max_queue: 16,
                tenant_quota: None,
            },
            Some(store),
            clock as Arc<dyn Clock + Send + Sync>,
        );

        // Warm answers still flow from the persisted row...
        let warm = match engine.submit(&Request::schedule("w", "fig5", "xinf", 0)) {
            Submission::Immediate(resp) => resp,
            Submission::Enqueued(_) => panic!("persisted row must answer warm"),
        };
        assert!(warm.as_schedule().is_some());
        // ...cold requests still compute (the row just fails to persist)...
        let cold = ok_reply(
            engine.submit(&Request::schedule("c", "fig5", "wdup", 1)),
            &engine,
        );
        assert!(cold.as_schedule().is_some());
        // ...and both surfaces report cache-only mode.
        let health = engine.health();
        assert!(health.degraded);
        assert!(health.store_configured);
        assert!(!health.store_writable);
        assert!(health.store_write_errors > 0);
        let stats = engine.stats();
        assert!(stats.degraded);
        assert!(stats.store_write_errors > 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_quota_sheds_then_frees_after_dispatch() {
        let clock = Arc::new(ManualClock::new());
        let engine = ServeEngine::new(
            EngineOptions {
                jobs: 1,
                max_queue: 16,
                tenant_quota: Some(1),
            },
            None,
            Arc::clone(&clock) as Arc<dyn Clock + Send + Sync>,
        );
        // First fig5 computation occupies the tenant's single slot.
        let t1 = match engine.submit(&Request::schedule("a", "fig5", "wdup", 1)) {
            Submission::Enqueued(t) => t,
            Submission::Immediate(r) => panic!("cold request must queue, got {r:?}"),
        };
        // A *different* fig5 computation exceeds the quota: typed,
        // retryable, and the id stays reusable.
        let shed = match engine.submit(&Request::schedule("b", "fig5", "xinf", 0)) {
            Submission::Immediate(resp) => resp,
            Submission::Enqueued(_) => panic!("over-quota request must shed"),
        };
        let err = shed.as_error().expect("typed shed");
        assert_eq!(err.code, ErrorCode::QuotaExceeded);
        assert!(err.code.is_retryable());
        // An *identical* computation still coalesces — no new slot.
        let t2 = match engine.submit(&Request::schedule("c", "fig5", "wdup", 1)) {
            Submission::Enqueued(t) => t,
            Submission::Immediate(r) => panic!("identical request must coalesce, got {r:?}"),
        };
        // Another tenant is unaffected by fig5's full quota.
        let t3 = match engine.submit(&Request::schedule("d", "TinyYOLOv3", "xinf", 0)) {
            Submission::Enqueued(t) => t,
            Submission::Immediate(r) => panic!("other tenant must admit, got {r:?}"),
        };
        let snap = engine.stats();
        let fig5 = snap.tenants.iter().find(|t| t.model == "fig5").unwrap();
        assert_eq!((fig5.submitted, fig5.quota_shed, fig5.queued), (3, 1, 1));

        let responses = engine.dispatch();
        assert_eq!(responses.len(), 3);
        for ticket in [t1, t2, t3] {
            let resp = &responses.iter().find(|(t, _)| *t == ticket).unwrap().1;
            assert!(resp.as_schedule().is_some());
        }
        // Dispatch drained the tenant's slot: the shed id retries fine
        // (and answers warm — the wdup row seeded the cache, xinf is a
        // fresh computation, so it queues).
        match engine.submit(&Request::schedule("b", "fig5", "xinf", 0)) {
            Submission::Enqueued(_) => {}
            Submission::Immediate(r) => {
                assert!(r.as_schedule().is_some(), "retry must succeed, got {r:?}")
            }
        }
        let snap = engine.stats();
        let fig5 = snap.tenants.iter().find(|t| t.model == "fig5").unwrap();
        assert_eq!(fig5.ok, 2, "both fig5 subscribers answered ok");
        assert_eq!(fig5.errors, 0);
        let yolo = snap.tenants.iter().find(|t| t.model == "TinyYOLOv3").unwrap();
        assert_eq!((yolo.submitted, yolo.ok, yolo.quota_shed), (1, 1, 0));
        // Rows arrive sorted by model name.
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.model.as_str()).collect();
        assert_eq!(names, ["TinyYOLOv3", "fig5"]);
    }

    #[test]
    fn throughput_measures_the_engines_own_service_interval() {
        // The engine is born into a clock that has already been running
        // for 100 s — a restart against a long-lived clock source.
        let clock = Arc::new(ManualClock::new());
        clock.advance(Duration::from_secs(100));
        let engine = ServeEngine::new(
            EngineOptions {
                jobs: 1,
                max_queue: 16,
                tenant_quota: None,
            },
            None,
            Arc::clone(&clock) as Arc<dyn Clock + Send + Sync>,
        );
        let reply = ok_reply(
            engine.submit(&Request::schedule("a", "fig5", "xinf", 0)),
            &engine,
        );
        assert!(reply.as_schedule().is_some());
        clock.advance(Duration::from_secs(2));
        let stats = engine.stats();
        assert_eq!(stats.completed, 1);
        // One completion over the 2 s the engine has existed = 0.5 rps.
        // The old `completed / clock.now()` math divided by the clock's
        // full 102 s age and reported ~0.0098 rps.
        assert!(
            (stats.throughput_rps - 0.5).abs() < 1e-9,
            "rps {}",
            stats.throughput_rps
        );
    }
}
