//! The socket daemon: newline-delimited JSON over Unix (and optional
//! TCP) sockets, wrapped around a [`ServeEngine`].
//!
//! Thread structure:
//!
//! - **Acceptors** — the calling thread accepts on the Unix socket; an
//!   optional second thread accepts on TCP. Each connection gets a
//!   handler thread.
//! - **Handlers** — read one request line, submit it to the engine,
//!   write one response line; strictly request–response per connection
//!   (concurrency comes from multiple connections). Enqueued
//!   submissions block on a per-ticket channel until dispatched.
//! - **Dispatcher** — one thread draining [`ServeEngine::dispatch`]
//!   whenever nudged (a submission or shutdown), delivering each
//!   `(ticket, response)` through the ticket board.
//!
//! Shutdown (`{"op":"shutdown"}`) immediately stops admitting schedule
//! requests; once the acknowledgement is flushed to the requesting
//! client, the daemon lets the dispatcher drain in-flight work and
//! unblocks its own acceptors by dummy-connecting to them. [`Daemon::run`] returns the final stats snapshot. Handler
//! threads are detached — they die with the process (or linger idle on
//! open connections after an in-process `run` returns), never blocking
//! shutdown on a slow client.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use cim_bench::runner::{FaultHook, FaultSite, ResultStore};
use cim_tune::{Clock, SystemClock};
use parking_lot::Mutex;

use crate::engine::{EngineOptions, ServeEngine, Submission, Ticket};
use crate::protocol::{ErrorCode, Op, Request, Response, ResponseBody, ServeError};
use crate::stats::StatsSnapshot;

/// Default per-connection read timeout: an idle or half-closed client
/// holds its handler thread at most this long.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Default request-frame bound. A line past this is answered with a
/// typed `line_too_long` error instead of buffering without limit.
pub const DEFAULT_MAX_LINE_BYTES: usize = 256 * 1024;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Path of the Unix socket to listen on (stale files are replaced).
    pub socket: PathBuf,
    /// Optional TCP listen address (e.g. `127.0.0.1:0`).
    pub tcp: Option<String>,
    /// Engine knobs (lane-pool width, admission depth).
    pub engine: EngineOptions,
    /// Optional persistent store directory (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Per-connection read timeout; a connection idle past it is closed
    /// (`None` = wait forever, the pre-hardening behavior).
    pub read_timeout: Option<Duration>,
    /// Maximum accepted request-line length in bytes. Longer lines are
    /// discarded to the next newline and answered with `line_too_long`;
    /// the connection stays usable.
    pub max_line_bytes: usize,
    /// Deterministic chaos injection for the daemon's store I/O and
    /// connection handling (see `cim_bench::runner::fault`).
    pub faults: Option<Arc<dyn FaultHook>>,
}

impl DaemonOptions {
    /// Options for a Unix-only daemon at `socket` with engine defaults.
    pub fn at(socket: impl Into<PathBuf>) -> Self {
        DaemonOptions {
            socket: socket.into(),
            tcp: None,
            engine: EngineOptions::default(),
            cache_dir: None,
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            faults: None,
        }
    }
}

/// Routes dispatched responses to the handler threads waiting on them.
///
/// Two-state by design: the dispatcher may finish a ticket *before* its
/// handler starts waiting (the submission raced the drain), so completed
/// responses without a waiter are stashed and claimed at wait time.
#[derive(Default)]
struct Board {
    waiting: BTreeMap<Ticket, SyncSender<Response>>,
    done: BTreeMap<Ticket, Response>,
}

#[derive(Default)]
struct TicketBoard(Mutex<Board>);

impl TicketBoard {
    /// Dispatcher side: hand `response` to the ticket's waiter, or stash
    /// it if no one is waiting yet.
    fn deliver(&self, ticket: Ticket, response: Response) {
        let waiter = {
            let mut board = self.0.lock();
            match board.waiting.remove(&ticket) {
                Some(tx) => Some(tx),
                None => {
                    board.done.insert(ticket, response.clone());
                    None
                }
            }
        };
        if let Some(tx) = waiter {
            // A vanished handler (dropped connection) is not an error.
            let _ = tx.send(response);
        }
    }

    /// Handler side: block until the ticket's response arrives. `None`
    /// only if the dispatcher exited without answering (shutdown race).
    fn wait(&self, ticket: Ticket) -> Option<Response> {
        let rx = {
            let mut board = self.0.lock();
            if let Some(done) = board.done.remove(&ticket) {
                return Some(done);
            }
            let (tx, rx) = std::sync::mpsc::sync_channel(1);
            board.waiting.insert(ticket, tx);
            rx
        };
        rx.recv().ok()
    }
}

/// Shared state of one running daemon.
struct Shared {
    engine: ServeEngine,
    board: TicketBoard,
    /// Wakes the dispatcher; any message is a nudge.
    nudge: Sender<()>,
    shutting_down: AtomicBool,
    /// Where the acceptors listen — the shutdown path dummy-connects
    /// here to unblock them.
    socket: PathBuf,
    tcp_addr: Option<SocketAddr>,
    read_timeout: Option<Duration>,
    max_line_bytes: usize,
    faults: Option<Arc<dyn FaultHook>>,
    /// Per-request-line delivery counter, keyed by the line's FNV hash —
    /// the `attempt` axis of connection-fault decisions, so a *resent*
    /// line gets a fresh draw (a drop-once fault plan lets the client's
    /// retry through).
    conn_attempts: Mutex<BTreeMap<u64, u32>>,
}

impl Shared {
    fn nudge(&self) {
        let _ = self.nudge.send(());
    }

    /// The attempt number of this exact line (0-based), counted across
    /// all connections of the daemon's lifetime.
    fn conn_attempt(&self, key: u64) -> u32 {
        let mut attempts = self.conn_attempts.lock();
        let counter = attempts.entry(key).or_insert(0);
        let attempt = *counter;
        *counter += 1;
        attempt
    }

    /// Unblocks both acceptors after the shutdown flag is up: `accept`
    /// returns, the loop re-checks the flag, and exits.
    fn unblock_acceptors(&self) {
        let _ = UnixStream::connect(&self.socket);
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// A bound, not-yet-running daemon: [`Daemon::bind`], then
/// [`Daemon::run`].
pub struct Daemon {
    unix: UnixListener,
    tcp: Option<TcpListener>,
    shared: Arc<Shared>,
    nudge_rx: Receiver<()>,
}

impl Daemon {
    /// Opens the store (if configured), binds the sockets, and builds
    /// the engine on the production [`SystemClock`].
    ///
    /// A pre-existing file at the socket path is treated as stale and
    /// replaced — the lane for "the previous daemon died without
    /// cleanup".
    ///
    /// # Errors
    ///
    /// Store-directory and socket-bind I/O errors.
    pub fn bind(options: DaemonOptions) -> io::Result<Self> {
        let store = match &options.cache_dir {
            Some(dir) => {
                let mut store = ResultStore::open(dir)?;
                if let Some(hook) = &options.faults {
                    store.set_fault_hook(Arc::clone(hook));
                }
                Some(store)
            }
            None => None,
        };
        if options.socket.exists() {
            std::fs::remove_file(&options.socket)?;
        }
        let unix = UnixListener::bind(&options.socket)?;
        let tcp = match &options.tcp {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };
        let (nudge, nudge_rx) = std::sync::mpsc::channel();
        let engine = ServeEngine::new(
            options.engine,
            store,
            Arc::new(SystemClock::new()) as Arc<dyn Clock + Send + Sync>,
        );
        Ok(Daemon {
            unix,
            tcp,
            shared: Arc::new(Shared {
                engine,
                board: TicketBoard::default(),
                nudge,
                shutting_down: AtomicBool::new(false),
                socket: options.socket,
                tcp_addr,
                read_timeout: options.read_timeout,
                max_line_bytes: options.max_line_bytes,
                faults: options.faults,
                conn_attempts: Mutex::new(BTreeMap::new()),
            }),
            nudge_rx,
        })
    }

    /// The TCP address actually bound (useful after binding `:0`).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.shared.tcp_addr
    }

    /// Serves until a `shutdown` request arrives and in-flight work
    /// drains, then removes the socket file and returns the final
    /// statistics snapshot.
    ///
    /// # Errors
    ///
    /// Unix-socket accept errors.
    pub fn run(self) -> io::Result<StatsSnapshot> {
        let Daemon {
            unix,
            tcp,
            shared,
            nudge_rx,
        } = self;

        // Dispatcher: drains the engine on every nudge and posts the
        // responses. Exits once shutdown is flagged and the engine is
        // quiescent (the shutdown path nudges after flagging, so the
        // final drain is guaranteed to run).
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while nudge_rx.recv().is_ok() {
                    for (ticket, response) in shared.engine.dispatch() {
                        shared.board.deliver(ticket, response);
                    }
                    if shared.shutting_down.load(Ordering::SeqCst) && shared.engine.is_idle() {
                        break;
                    }
                }
                // Nudge channel closed or shutdown: one last drain so no
                // admitted ticket is left unanswered.
                for (ticket, response) in shared.engine.dispatch() {
                    shared.board.deliver(ticket, response);
                }
            })
        };

        // Optional TCP acceptor.
        if let Some(listener) = tcp {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        let _ = serve_tcp_connection(&shared, stream);
                    });
                }
            });
        }

        // Unix acceptor on the calling thread.
        for stream in unix.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let _ = serve_unix_connection(&shared, stream);
            });
        }

        // Let the dispatcher finish draining before reporting.
        shared.nudge();
        let _ = dispatcher.join();
        let stats = shared.engine.stats();
        let _ = std::fs::remove_file(&shared.socket);
        Ok(stats)
    }
}

fn serve_unix_connection(shared: &Shared, stream: UnixStream) -> io::Result<()> {
    stream.set_read_timeout(shared.read_timeout)?;
    let writer = stream.try_clone()?;
    serve_connection(shared, BufReader::new(stream), writer)
}

fn serve_tcp_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(shared.read_timeout)?;
    let writer = stream.try_clone()?;
    serve_connection(shared, BufReader::new(stream), writer)
}

/// FNV-1a of a request line — the `key` axis of connection-fault
/// decisions (the same line always hashes to the same key, so a fault
/// schedule over a request stream is reproducible).
fn line_key(line: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in line.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// One framed request line, read with an explicit bound.
enum Frame {
    /// Client closed the connection.
    Eof,
    /// A complete line within the bound (newline stripped).
    Line(String),
    /// The line exceeded the bound; input was discarded to the next
    /// newline (or EOF), so the stream is positioned at a frame boundary.
    TooLong,
}

/// Reads one newline-terminated frame, refusing to buffer more than
/// `max` bytes — the unbounded `read_line` this replaces let any client
/// grow the daemon's memory without limit.
fn read_frame<R: BufRead>(reader: &mut R, max: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if buf.is_empty() {
                Frame::Eof
            } else {
                // Final unterminated line: accept it, mirroring read_line.
                Frame::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                reader.consume(pos + 1);
                return Ok(Frame::TooLong);
            }
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            return Ok(Frame::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
        let len = available.len();
        if buf.len() + len > max {
            reader.consume(len);
            drain_to_newline(reader)?;
            return Ok(Frame::TooLong);
        }
        buf.extend_from_slice(available);
        reader.consume(len);
    }
}

/// Discards input until (and including) the next newline, or EOF —
/// re-synchronizes the stream after an oversized frame without ever
/// holding more than the reader's internal buffer.
fn drain_to_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

/// The per-connection request–response loop, shared by both transports.
fn serve_connection<R: BufRead, W: Write>(
    shared: &Shared,
    mut reader: R,
    mut writer: W,
) -> io::Result<()> {
    loop {
        let line = match read_frame(&mut reader, shared.max_line_bytes) {
            Ok(Frame::Eof) => return Ok(()), // EOF: client closed.
            Ok(Frame::Line(line)) => line,
            Ok(Frame::TooLong) => {
                let response = Response::error(
                    "",
                    ServeError::new(
                        ErrorCode::LineTooLong,
                        format!(
                            "request line exceeds the {}-byte frame bound",
                            shared.max_line_bytes
                        ),
                    ),
                );
                write_response(&mut writer, &response)?;
                continue;
            }
            // A read timeout (an idle or half-closed client) releases the
            // handler thread instead of pinning it forever.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }

        // Deterministic connection chaos: a fault plan may drop the
        // connection before this line is answered (the client sees an
        // abrupt close and must reconnect + resend) or stall the reply
        // (a slow server from the client's point of view).
        if let Some(faults) = &shared.faults {
            let key = line_key(line.trim());
            let attempt = shared.conn_attempt(key);
            if faults.decide(FaultSite::ConnDrop, key, attempt) {
                return Ok(());
            }
            if faults.decide(FaultSite::ConnDelay, key, attempt) {
                std::thread::sleep(faults.delay());
            }
        }

        let response = match serde_json::from_str::<Request>(line.trim()) {
            Err(err) => Response::error(
                "",
                ServeError::new(ErrorCode::BadRequest, format!("unparseable request: {err}")),
            ),
            Ok(request) => handle_request(shared, &request),
        };
        write_response(&mut writer, &response)?;
        if matches!(response.body, ResponseBody::Shutdown) {
            // Tear down only *after* the ack is flushed: unblocking the
            // acceptor first would let `run` (and in the daemon binary,
            // the process) win the race against this handler thread and
            // close the connection before the ack reaches the client.
            shared.nudge();
            shared.unblock_acceptors();
            return Ok(());
        }
    }
}

/// Serializes and flushes one response line.
fn write_response<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    // Responses are plain string/number trees; serialization cannot
    // fail on them.
    let mut payload = serde_json::to_string(response)
        .expect("responses serialize"); // cim-lint: allow(panic-unwrap) protocol responses are plain serializable data
    payload.push('\n');
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

fn handle_request(shared: &Shared, request: &Request) -> Response {
    if request.op == Op::Shutdown {
        // Flip the flag here so no later schedule request is admitted;
        // the connection loop wakes the dispatcher and unblocks the
        // acceptors once the acknowledgement is on the wire.
        shared.shutting_down.store(true, Ordering::SeqCst);
        return Response {
            id: request.id.clone(),
            body: ResponseBody::Shutdown,
        };
    }
    if request.op == Op::Schedule && shared.shutting_down.load(Ordering::SeqCst) {
        return Response::error(
            &request.id,
            ServeError::new(ErrorCode::Overloaded, "daemon is shutting down"),
        );
    }
    match shared.engine.submit(request) {
        Submission::Immediate(response) => response,
        Submission::Enqueued(ticket) => {
            shared.nudge();
            shared.board.wait(ticket).unwrap_or_else(|| {
                Response::error(
                    &request.id,
                    ServeError::new(ErrorCode::Overloaded, "dispatcher exited before completion"),
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bench::runner::FaultPlan;
    use cim_tune::ManualClock;
    use std::io::Cursor;

    /// A dispatcherless `Shared` — enough for the connection loop's
    /// immediate ops (ping, stats, typed rejections).
    fn test_shared(max_line_bytes: usize, faults: Option<Arc<dyn FaultHook>>) -> Shared {
        let (nudge, _rx) = std::sync::mpsc::channel();
        Shared {
            engine: ServeEngine::new(
                EngineOptions::default(),
                None,
                Arc::new(ManualClock::new()) as Arc<dyn Clock + Send + Sync>,
            ),
            board: TicketBoard::default(),
            nudge,
            shutting_down: AtomicBool::new(false),
            socket: PathBuf::from("/nonexistent"),
            tcp_addr: None,
            read_timeout: None,
            max_line_bytes,
            faults,
            conn_attempts: Mutex::new(BTreeMap::new()),
        }
    }

    fn response_lines(out: &[u8]) -> Vec<Response> {
        String::from_utf8_lossy(out)
            .lines()
            .map(|l| serde_json::from_str(l).expect("response parses"))
            .collect()
    }

    #[test]
    fn read_frame_respects_the_bound_and_resynchronizes() {
        let mut input = Cursor::new(b"short\nAAAAAAAAAAAAAAAAAAAAAAAA\nnext\n".to_vec());
        let mut reader = BufReader::new(&mut input);
        match read_frame(&mut reader, 10).unwrap() {
            Frame::Line(l) => assert_eq!(l, "short"),
            _ => panic!("first frame is a line"),
        }
        assert!(matches!(read_frame(&mut reader, 10).unwrap(), Frame::TooLong));
        match read_frame(&mut reader, 10).unwrap() {
            Frame::Line(l) => assert_eq!(l, "next"),
            _ => panic!("stream re-synchronized at the next frame"),
        }
        assert!(matches!(read_frame(&mut reader, 10).unwrap(), Frame::Eof));
    }

    #[test]
    fn oversized_line_gets_a_typed_error_and_the_connection_survives() {
        let shared = test_shared(64, None);
        let mut input = Vec::new();
        input.extend_from_slice(&vec![b'x'; 4096]);
        input.extend_from_slice(b"\n{\"id\":\"p\",\"op\":\"ping\"}\n");
        let mut out = Vec::new();
        serve_connection(&shared, BufReader::new(Cursor::new(input)), &mut out).unwrap();
        let responses = response_lines(&out);
        assert_eq!(responses.len(), 2, "both frames answered");
        assert_eq!(
            responses[0].as_error().expect("typed error").code,
            ErrorCode::LineTooLong
        );
        assert!(matches!(responses[1].body, ResponseBody::Pong));
    }

    #[test]
    fn injected_connection_drop_closes_before_answering() {
        let plan = Arc::new(FaultPlan::new(11).with_rate(FaultSite::ConnDrop, 1000));
        let shared = test_shared(DEFAULT_MAX_LINE_BYTES, Some(plan.clone()));
        let input = b"{\"id\":\"p\",\"op\":\"ping\"}\n".to_vec();
        let mut out = Vec::new();
        serve_connection(&shared, BufReader::new(Cursor::new(input)), &mut out).unwrap();
        assert!(out.is_empty(), "connection dropped before the reply");
        assert_eq!(plan.fired(FaultSite::ConnDrop), 1);
    }

    #[test]
    fn resent_line_is_a_fresh_fault_attempt() {
        let line = "{\"id\":\"p\",\"op\":\"ping\"}";
        let key = line_key(line);
        // Seed search via the side-effect-free probe: some seed under
        // 1000 drops attempt 0 of this exact line but not attempt 1.
        let seed = (0..1000)
            .find(|&s| {
                let p = FaultPlan::new(s).with_rate(FaultSite::ConnDrop, 500);
                p.would_fire(FaultSite::ConnDrop, key, 0)
                    && !p.would_fire(FaultSite::ConnDrop, key, 1)
            })
            .expect("a drop-once seed exists");
        let plan = Arc::new(FaultPlan::new(seed).with_rate(FaultSite::ConnDrop, 500));
        let shared = test_shared(DEFAULT_MAX_LINE_BYTES, Some(plan));

        // First delivery: dropped without a reply.
        let mut out = Vec::new();
        serve_connection(
            &shared,
            BufReader::new(Cursor::new(format!("{line}\n").into_bytes())),
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());

        // The client reconnects and resends the identical line: the
        // attempt counter advanced, so this delivery goes through.
        let mut out = Vec::new();
        serve_connection(
            &shared,
            BufReader::new(Cursor::new(format!("{line}\n").into_bytes())),
            &mut out,
        )
        .unwrap();
        let responses = response_lines(&out);
        assert_eq!(responses.len(), 1);
        assert!(matches!(responses[0].body, ResponseBody::Pong));
    }
}
