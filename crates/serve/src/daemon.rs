//! The socket daemon: newline-delimited JSON over Unix (and optional
//! TCP) sockets, wrapped around a [`ServeEngine`].
//!
//! Thread structure:
//!
//! - **Acceptors** — the calling thread accepts on the Unix socket; an
//!   optional second thread accepts on TCP. Each connection gets a
//!   handler thread.
//! - **Handlers** — read one request line, submit it to the engine,
//!   write one response line; strictly request–response per connection
//!   (concurrency comes from multiple connections). Enqueued
//!   submissions block on a per-ticket channel until dispatched.
//! - **Dispatcher** — one thread draining [`ServeEngine::dispatch`]
//!   whenever nudged (a submission or shutdown), delivering each
//!   `(ticket, response)` through the ticket board.
//!
//! Shutdown (`{"op":"shutdown"}`) immediately stops admitting schedule
//! requests; once the acknowledgement is flushed to the requesting
//! client, the daemon lets the dispatcher drain in-flight work and
//! unblocks its own acceptors by dummy-connecting to them. [`Daemon::run`] returns the final stats snapshot. Handler
//! threads are detached — they die with the process (or linger idle on
//! open connections after an in-process `run` returns), never blocking
//! shutdown on a slow client.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;

use cim_bench::runner::ResultStore;
use cim_tune::{Clock, SystemClock};
use parking_lot::Mutex;

use crate::engine::{EngineOptions, ServeEngine, Submission, Ticket};
use crate::protocol::{ErrorCode, Op, Request, Response, ResponseBody, ServeError};
use crate::stats::StatsSnapshot;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Path of the Unix socket to listen on (stale files are replaced).
    pub socket: PathBuf,
    /// Optional TCP listen address (e.g. `127.0.0.1:0`).
    pub tcp: Option<String>,
    /// Engine knobs (lane-pool width, admission depth).
    pub engine: EngineOptions,
    /// Optional persistent store directory (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
}

impl DaemonOptions {
    /// Options for a Unix-only daemon at `socket` with engine defaults.
    pub fn at(socket: impl Into<PathBuf>) -> Self {
        DaemonOptions {
            socket: socket.into(),
            tcp: None,
            engine: EngineOptions::default(),
            cache_dir: None,
        }
    }
}

/// Routes dispatched responses to the handler threads waiting on them.
///
/// Two-state by design: the dispatcher may finish a ticket *before* its
/// handler starts waiting (the submission raced the drain), so completed
/// responses without a waiter are stashed and claimed at wait time.
#[derive(Default)]
struct Board {
    waiting: BTreeMap<Ticket, SyncSender<Response>>,
    done: BTreeMap<Ticket, Response>,
}

#[derive(Default)]
struct TicketBoard(Mutex<Board>);

impl TicketBoard {
    /// Dispatcher side: hand `response` to the ticket's waiter, or stash
    /// it if no one is waiting yet.
    fn deliver(&self, ticket: Ticket, response: Response) {
        let waiter = {
            let mut board = self.0.lock();
            match board.waiting.remove(&ticket) {
                Some(tx) => Some(tx),
                None => {
                    board.done.insert(ticket, response.clone());
                    None
                }
            }
        };
        if let Some(tx) = waiter {
            // A vanished handler (dropped connection) is not an error.
            let _ = tx.send(response);
        }
    }

    /// Handler side: block until the ticket's response arrives. `None`
    /// only if the dispatcher exited without answering (shutdown race).
    fn wait(&self, ticket: Ticket) -> Option<Response> {
        let rx = {
            let mut board = self.0.lock();
            if let Some(done) = board.done.remove(&ticket) {
                return Some(done);
            }
            let (tx, rx) = std::sync::mpsc::sync_channel(1);
            board.waiting.insert(ticket, tx);
            rx
        };
        rx.recv().ok()
    }
}

/// Shared state of one running daemon.
struct Shared {
    engine: ServeEngine,
    board: TicketBoard,
    /// Wakes the dispatcher; any message is a nudge.
    nudge: Sender<()>,
    shutting_down: AtomicBool,
    /// Where the acceptors listen — the shutdown path dummy-connects
    /// here to unblock them.
    socket: PathBuf,
    tcp_addr: Option<SocketAddr>,
}

impl Shared {
    fn nudge(&self) {
        let _ = self.nudge.send(());
    }

    /// Unblocks both acceptors after the shutdown flag is up: `accept`
    /// returns, the loop re-checks the flag, and exits.
    fn unblock_acceptors(&self) {
        let _ = UnixStream::connect(&self.socket);
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// A bound, not-yet-running daemon: [`Daemon::bind`], then
/// [`Daemon::run`].
pub struct Daemon {
    unix: UnixListener,
    tcp: Option<TcpListener>,
    shared: Arc<Shared>,
    nudge_rx: Receiver<()>,
}

impl Daemon {
    /// Opens the store (if configured), binds the sockets, and builds
    /// the engine on the production [`SystemClock`].
    ///
    /// A pre-existing file at the socket path is treated as stale and
    /// replaced — the lane for "the previous daemon died without
    /// cleanup".
    ///
    /// # Errors
    ///
    /// Store-directory and socket-bind I/O errors.
    pub fn bind(options: DaemonOptions) -> io::Result<Self> {
        let store = match &options.cache_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        if options.socket.exists() {
            std::fs::remove_file(&options.socket)?;
        }
        let unix = UnixListener::bind(&options.socket)?;
        let tcp = match &options.tcp {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };
        let (nudge, nudge_rx) = std::sync::mpsc::channel();
        let engine = ServeEngine::new(
            options.engine,
            store,
            Arc::new(SystemClock::new()) as Arc<dyn Clock + Send + Sync>,
        );
        Ok(Daemon {
            unix,
            tcp,
            shared: Arc::new(Shared {
                engine,
                board: TicketBoard::default(),
                nudge,
                shutting_down: AtomicBool::new(false),
                socket: options.socket,
                tcp_addr,
            }),
            nudge_rx,
        })
    }

    /// The TCP address actually bound (useful after binding `:0`).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.shared.tcp_addr
    }

    /// Serves until a `shutdown` request arrives and in-flight work
    /// drains, then removes the socket file and returns the final
    /// statistics snapshot.
    ///
    /// # Errors
    ///
    /// Unix-socket accept errors.
    pub fn run(self) -> io::Result<StatsSnapshot> {
        let Daemon {
            unix,
            tcp,
            shared,
            nudge_rx,
        } = self;

        // Dispatcher: drains the engine on every nudge and posts the
        // responses. Exits once shutdown is flagged and the engine is
        // quiescent (the shutdown path nudges after flagging, so the
        // final drain is guaranteed to run).
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while nudge_rx.recv().is_ok() {
                    for (ticket, response) in shared.engine.dispatch() {
                        shared.board.deliver(ticket, response);
                    }
                    if shared.shutting_down.load(Ordering::SeqCst) && shared.engine.is_idle() {
                        break;
                    }
                }
                // Nudge channel closed or shutdown: one last drain so no
                // admitted ticket is left unanswered.
                for (ticket, response) in shared.engine.dispatch() {
                    shared.board.deliver(ticket, response);
                }
            })
        };

        // Optional TCP acceptor.
        if let Some(listener) = tcp {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        let _ = serve_tcp_connection(&shared, stream);
                    });
                }
            });
        }

        // Unix acceptor on the calling thread.
        for stream in unix.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let _ = serve_unix_connection(&shared, stream);
            });
        }

        // Let the dispatcher finish draining before reporting.
        shared.nudge();
        let _ = dispatcher.join();
        let stats = shared.engine.stats();
        let _ = std::fs::remove_file(&shared.socket);
        Ok(stats)
    }
}

fn serve_unix_connection(shared: &Shared, stream: UnixStream) -> io::Result<()> {
    let writer = stream.try_clone()?;
    serve_connection(shared, BufReader::new(stream), writer)
}

fn serve_tcp_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let writer = stream.try_clone()?;
    serve_connection(shared, BufReader::new(stream), writer)
}

/// The per-connection request–response loop, shared by both transports.
fn serve_connection<R: BufRead, W: Write>(
    shared: &Shared,
    mut reader: R,
    mut writer: W,
) -> io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: client closed.
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(line.trim()) {
            Err(err) => Response::error(
                "",
                ServeError::new(ErrorCode::BadRequest, format!("unparseable request: {err}")),
            ),
            Ok(request) => handle_request(shared, &request),
        };
        // Responses are plain string/number trees; serialization cannot
        // fail on them.
        let mut payload = serde_json::to_string(&response)
            .expect("responses serialize"); // cim-lint: allow(panic-unwrap) protocol responses are plain serializable data
        payload.push('\n');
        writer.write_all(payload.as_bytes())?;
        writer.flush()?;
        if matches!(response.body, ResponseBody::Shutdown) {
            // Tear down only *after* the ack is flushed: unblocking the
            // acceptor first would let `run` (and in the daemon binary,
            // the process) win the race against this handler thread and
            // close the connection before the ack reaches the client.
            shared.nudge();
            shared.unblock_acceptors();
            return Ok(());
        }
    }
}

fn handle_request(shared: &Shared, request: &Request) -> Response {
    if request.op == Op::Shutdown {
        // Flip the flag here so no later schedule request is admitted;
        // the connection loop wakes the dispatcher and unblocks the
        // acceptors once the acknowledgement is on the wire.
        shared.shutting_down.store(true, Ordering::SeqCst);
        return Response {
            id: request.id.clone(),
            body: ResponseBody::Shutdown,
        };
    }
    if request.op == Op::Schedule && shared.shutting_down.load(Ordering::SeqCst) {
        return Response::error(
            &request.id,
            ServeError::new(ErrorCode::Overloaded, "daemon is shutting down"),
        );
    }
    match shared.engine.submit(request) {
        Submission::Immediate(response) => response,
        Submission::Enqueued(ticket) => {
            shared.nudge();
            shared.board.wait(ticket).unwrap_or_else(|| {
                Response::error(
                    &request.id,
                    ServeError::new(ErrorCode::Overloaded, "dispatcher exited before completion"),
                )
            })
        }
    }
}
