//! A minimal blocking client for the daemon's line protocol.
//!
//! One request line in, one response line out. The raw-line API exists
//! for the byte-identity tests and the bench driver: callers that need
//! to compare *wire bytes* across daemon generations must see the exact
//! line, not a re-serialization.
//!
//! [`Client::request_with_retry`] adds the self-healing layer: transient
//! transport failures (the daemon dropped the connection, a read timed
//! out) reconnect and resend, and typed *retryable* rejections (load
//! shed — see [`ErrorCode::is_retryable`](crate::protocol::ErrorCode::is_retryable)) back off and resend on the
//! same connection. Backoff is seeded exponential-with-jitter
//! ([`RetryPolicy::backoff_delay`] is a pure function of `(policy,
//! attempt, request)`), so a chaos test replays the exact same retry
//! schedule every run.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cim_bench::runner::mix64;

use crate::protocol::{Request, Response};

/// Where a client connected — kept so a dropped connection can be
/// rebuilt transparently by the retry layer.
#[derive(Debug, Clone)]
enum Endpoint {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

/// Client-side retry policy: seeded exponential backoff with jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Resend attempts after the first try (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed — the same `(seed, attempt, request)` always sleeps
    /// the same duration, keeping chaos runs reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based) of the request keyed
    /// by `key` — exponential in the attempt, capped, with half the
    /// window jittered. Pure: no clock, no global RNG.
    pub fn backoff_delay(&self, attempt: u32, key: u64) -> Duration {
        let base_ns = u64::try_from(self.base.as_nanos()).unwrap_or(u64::MAX);
        let cap_ns = u64::try_from(self.cap.as_nanos()).unwrap_or(u64::MAX);
        let exp_ns = base_ns
            .checked_shl(attempt.min(31))
            .unwrap_or(cap_ns)
            .min(cap_ns);
        // Decorrelate concurrent clients retrying the same instant: keep
        // half the exponential window, jitter the other half.
        let h = mix64(self.seed ^ mix64(key ^ u64::from(attempt).wrapping_add(1)));
        let half = exp_ns / 2;
        Duration::from_nanos(half + h % (half + 1))
    }
}

/// Whether an I/O failure looks like a transient transport problem worth
/// a reconnect-and-resend (the daemon closed mid-exchange, the stream
/// reset, a read timed out) rather than a local logic error.
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// FNV-1a of the request id — the jitter key, so distinct requests
/// spread their retry schedules apart.
fn request_key(request: &Request) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in request.id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A blocking connection to a running daemon.
pub struct Client {
    endpoint: Endpoint,
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

/// The reader/writer halves of one connection, type-erased over the
/// transport.
type Halves = (BufReader<Box<dyn Read + Send>>, Box<dyn Write + Send>);

fn open_unix(socket: &Path) -> io::Result<Halves> {
    let stream = UnixStream::connect(socket)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(Box::new(stream)), Box::new(writer)))
}

fn open_tcp(addr: SocketAddr) -> io::Result<Halves> {
    let stream = TcpStream::connect(addr)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(Box::new(stream)), Box::new(writer)))
}

impl Client {
    /// Connects over the daemon's Unix socket.
    ///
    /// # Errors
    ///
    /// Connection and stream-duplication I/O errors.
    pub fn connect_unix(socket: impl AsRef<Path>) -> io::Result<Self> {
        let socket = socket.as_ref().to_path_buf();
        let (reader, writer) = open_unix(&socket)?;
        Ok(Client {
            endpoint: Endpoint::Unix(socket),
            reader,
            writer,
        })
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Address-resolution, connection, and stream-duplication I/O
    /// errors.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let (reader, writer) = open_tcp(addr)?;
        Ok(Client {
            endpoint: Endpoint::Tcp(addr),
            reader,
            writer,
        })
    }

    /// Drops the current connection and dials the same endpoint again.
    ///
    /// # Errors
    ///
    /// Connection I/O errors (the old connection is gone either way).
    pub fn reconnect(&mut self) -> io::Result<()> {
        let (reader, writer) = match &self.endpoint {
            Endpoint::Unix(socket) => open_unix(socket)?,
            Endpoint::Tcp(addr) => open_tcp(*addr)?,
        };
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Sends one raw request line and returns the raw response line
    /// (trailing newline stripped) — the wire bytes the byte-identity
    /// tests compare.
    ///
    /// # Errors
    ///
    /// I/O errors; an EOF before a response line is
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a typed request and parses the typed response.
    ///
    /// # Errors
    ///
    /// I/O errors, plus [`io::ErrorKind::InvalidData`] if either side of
    /// the exchange fails to (de)serialize.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let reply = self.request_line(&line)?;
        serde_json::from_str(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// [`request`](Client::request) with self-healing: transient
    /// transport failures reconnect and resend, retryable typed
    /// rejections ([`ErrorCode::is_retryable`](crate::protocol::ErrorCode::is_retryable): load shed) back off and
    /// resend. Gives up after `policy.max_retries` retries, returning
    /// the last outcome.
    ///
    /// Caveat: a connection that dies *after* the daemon processed a
    /// schedule request but before the reply arrived makes the resend a
    /// duplicate. The daemon then answers the resent id warm (same
    /// bytes) when the first attempt completed, or rejects it as a
    /// duplicate while still in flight — callers retrying across
    /// connection drops should treat a `bad_request` duplicate-id reply
    /// as "already submitted", not as failure.
    ///
    /// # Errors
    ///
    /// The final attempt's I/O error when every retry was exhausted (or
    /// the failure was not transient).
    pub fn request_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> io::Result<Response> {
        let key = request_key(request);
        let mut attempt = 0u32;
        loop {
            let outcome = self.request(request);
            let retryable = match &outcome {
                Ok(response) => response
                    .as_error()
                    .is_some_and(|e| e.code.is_retryable()),
                Err(e) => is_transient(e.kind()),
            };
            if !retryable || attempt >= policy.max_retries {
                return outcome;
            }
            std::thread::sleep(policy.backoff_delay(attempt, key));
            if outcome.is_err() {
                // The transport is gone or wedged: rebuild it. A failed
                // reconnect still consumes this attempt — the next
                // `request` fails fast and the loop decides again.
                let _ = self.reconnect();
            }
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 42,
        };
        let key = request_key(&Request::bare("r1", crate::protocol::Op::Ping));
        for attempt in 0..8 {
            let a = policy.backoff_delay(attempt, key);
            let b = policy.backoff_delay(attempt, key);
            assert_eq!(a, b, "same inputs, same sleep");
            assert!(a <= policy.cap, "attempt {attempt}: {a:?} over cap");
            // At least half the exponential window survives the jitter.
            let floor_ns = (10_000_000u64 << attempt.min(31)).min(200_000_000) / 2;
            assert!(a >= Duration::from_nanos(floor_ns), "attempt {attempt}: {a:?}");
        }
        // Different requests decorrelate.
        let other = request_key(&Request::bare("r2", crate::protocol::Op::Ping));
        assert_ne!(
            policy.backoff_delay(3, key),
            policy.backoff_delay(3, other),
            "distinct ids should jitter apart (for this seed)"
        );
    }

    #[test]
    fn transient_kinds_are_the_transport_failures() {
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(is_transient(kind), "{kind:?}");
        }
        assert!(!is_transient(io::ErrorKind::InvalidData));
        assert!(!is_transient(io::ErrorKind::PermissionDenied));
    }
}
