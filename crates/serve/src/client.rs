//! A minimal blocking client for the daemon's line protocol.
//!
//! One request line in, one response line out. The raw-line API exists
//! for the byte-identity tests and the bench driver: callers that need
//! to compare *wire bytes* across daemon generations must see the exact
//! line, not a re-serialization.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{Request, Response};

/// A blocking connection to a running daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects over the daemon's Unix socket.
    ///
    /// # Errors
    ///
    /// Connection and stream-duplication I/O errors.
    pub fn connect_unix(socket: impl AsRef<Path>) -> io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
        })
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Connection and stream-duplication I/O errors.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
        })
    }

    /// Sends one raw request line and returns the raw response line
    /// (trailing newline stripped) — the wire bytes the byte-identity
    /// tests compare.
    ///
    /// # Errors
    ///
    /// I/O errors; an EOF before a response line is
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a typed request and parses the typed response.
    ///
    /// # Errors
    ///
    /// I/O errors, plus [`io::ErrorKind::InvalidData`] if either side of
    /// the exchange fails to (de)serialize.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let reply = self.request_line(&line)?;
        serde_json::from_str(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
