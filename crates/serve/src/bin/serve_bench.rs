//! `serve-bench` — client driver measuring sustained daemon throughput.
//!
//! Two modes:
//!
//! ```text
//! serve-bench [--requests <n>] [--model <name>] [--jobs <n>]
//!             [--cache-dir <dir>] [--json <path>]
//! ```
//!
//! Default (in-process) mode: runs **two daemon generations sharing one
//! cache directory** — a cold generation that computes every request and
//! a warm generation that answers from the persistent store — measures
//! sustained requests/sec for both, asserts the reply streams are
//! byte-identical across generations, and writes the trajectory snapshot
//! `BENCH_serve.json` (override with `--json`).
//!
//! ```text
//! serve-bench --connect <socket> [--requests <n>] [--model <name>]
//!             [--replies <path>] [--shutdown]
//! ```
//!
//! Connect mode: drives one pass against an externally started daemon
//! (the CI smoke job), optionally dumping the raw reply lines for
//! byte-comparison and/or shutting the daemon down afterwards.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cim_bench::parse_common_args;
use cim_serve::{
    Client, Daemon, DaemonOptions, EngineOptions, Op, Request, RetryPolicy, StatsSnapshot,
};
use cim_tune::{Clock, SystemClock};
use serde::Value;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The request list both generations replay: `n` requests cycling over
/// the four strategies and two duplication budgets (8 distinct keys).
fn request_lines(n: usize, model: &str) -> Vec<String> {
    let strategies = ["layer-by-layer", "xinf", "wdup", "wdup+xinf"];
    (0..n)
        .map(|i| {
            let strategy = strategies[i % strategies.len()];
            let x = if strategy.starts_with("wdup") { 1 + (i / 4) % 2 } else { 0 };
            let req = Request::schedule(&format!("req-{i}"), model, strategy, x);
            serde_json::to_string(&req).expect("requests serialize")
        })
        .collect()
}

fn distinct_keys(n: usize) -> usize {
    // layer-by-layer and xinf ignore x → 2 keys; wdup/wdup+xinf see
    // x ∈ {1, 2} → up to 4 keys; capped by the request count.
    let mut labels = std::collections::BTreeSet::new();
    let strategies = ["layer-by-layer", "xinf", "wdup", "wdup+xinf"];
    for i in 0..n {
        let strategy = strategies[i % strategies.len()];
        let x = if strategy.starts_with("wdup") { 1 + (i / 4) % 2 } else { 0 };
        labels.insert((strategy, x));
    }
    labels.len()
}

struct PassResult {
    replies: Vec<String>,
    stats: StatsSnapshot,
    elapsed: Duration,
}

/// Sends every line, collects raw replies, fetches stats, optionally
/// shuts the daemon down. I/O and protocol failures surface as typed
/// errors instead of panics; the typed control requests ride the
/// client's seeded retry loop, so a load-shedding or briefly wedged
/// daemon doesn't abort the whole pass.
fn drive(client: &mut Client, lines: &[String], shutdown: bool) -> io::Result<PassResult> {
    let retry = RetryPolicy::default();
    let clock = SystemClock::new();
    let mut replies = Vec::with_capacity(lines.len());
    for line in lines {
        replies.push(client.request_line(line)?);
    }
    let elapsed = clock.now();
    let stats_resp = client.request_with_retry(&Request::bare("bench-stats", Op::Stats), &retry)?;
    let stats = stats_resp
        .as_stats()
        .ok_or_else(|| io::Error::other(format!("stats reply carried no snapshot: {stats_resp:?}")))?
        .clone();
    if shutdown {
        let ack = client.request(&Request::bare("bench-shutdown", Op::Shutdown))?;
        if !matches!(ack.body, cim_serve::ResponseBody::Shutdown) {
            return Err(io::Error::other(format!(
                "shutdown not acknowledged, got {ack:?}"
            )));
        }
    }
    Ok(PassResult {
        replies,
        stats,
        elapsed,
    })
}

fn rps(n: usize, elapsed: Duration) -> f64 {
    if elapsed > Duration::ZERO {
        n as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    }
}

fn pass_value(pass: &PassResult) -> Value {
    Value::Map(vec![
        ("elapsed_ns".into(), Value::U64(
            u64::try_from(pass.elapsed.as_nanos()).unwrap_or(u64::MAX),
        )),
        ("rps".into(), Value::F64(rps(pass.replies.len(), pass.elapsed))),
        ("p50_ns".into(), Value::U64(pass.stats.p50_ns)),
        ("p99_ns".into(), Value::U64(pass.stats.p99_ns)),
        ("ok".into(), Value::U64(pass.stats.ok)),
        ("errors".into(), Value::U64(pass.stats.errors)),
        ("warm_store".into(), Value::U64(pass.stats.warm_store)),
        ("warm_cache".into(), Value::U64(pass.stats.warm_cache)),
        ("store_hits".into(), Value::U64(pass.stats.store_hits)),
    ])
}

/// One daemon generation over `cache_dir`: bind, serve on a background
/// thread, drive the full request list, shut down, join.
fn generation(
    tag: &str,
    socket: &Path,
    cache_dir: &Path,
    jobs: usize,
    lines: &[String],
) -> io::Result<PassResult> {
    let daemon = Daemon::bind(DaemonOptions {
        engine: EngineOptions {
            jobs,
            max_queue: lines.len().max(16),
            tenant_quota: None,
        },
        cache_dir: Some(cache_dir.to_path_buf()),
        ..DaemonOptions::at(socket)
    })
    .map_err(|e| io::Error::other(format!("{tag}: bind {} failed: {e}", socket.display())))?;
    let server = std::thread::spawn(move || daemon.run());
    let mut client = connect_with_retry(socket)?;
    let pass = drive(&mut client, lines, true)?;
    match server.join() {
        Ok(Ok(_final_stats)) => Ok(pass),
        Ok(Err(e)) => Err(io::Error::other(format!("{tag}: daemon run failed: {e}"))),
        Err(_) => Err(io::Error::other(format!("{tag}: daemon thread panicked"))),
    }
}

fn connect_with_retry(socket: &Path) -> io::Result<Client> {
    for _ in 0..200 {
        if let Ok(client) = Client::connect_unix(socket) {
            return Ok(client);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Err(io::Error::new(
        io::ErrorKind::TimedOut,
        format!("daemon at {} never became connectable", socket.display()),
    ))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("serve-bench: {e}");
        std::process::exit(1);
    }
}

fn run() -> io::Result<()> {
    let common = parse_common_args();
    common.note_seed_unused();
    let rest = &common.rest;
    let requests: usize = match flag_value(rest, "--requests") {
        Some(v) => v.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "--requests expects an unsigned integer",
            )
        })?,
        None => 24,
    };
    let model = flag_value(rest, "--model").unwrap_or_else(|| "fig5".into());
    let lines = request_lines(requests, &model);

    if let Some(socket) = flag_value(rest, "--connect") {
        // External mode: one pass against a running daemon. Retry the
        // connect — CI starts the daemon in the background and races it.
        let mut client = connect_with_retry(&PathBuf::from(&socket))?;
        let pass = drive(&mut client, &lines, has_flag(rest, "--shutdown"))?;
        if let Some(path) = flag_value(rest, "--replies") {
            std::fs::write(&path, pass.replies.join("\n") + "\n")
                .map_err(|e| io::Error::other(format!("write {path}: {e}")))?;
        }
        assert_eq!(
            pass.stats.errors, 0,
            "external pass must be error-free, stats: {:?}",
            pass.stats
        );
        println!(
            "serve-bench: {} requests in {:?} ({:.1} req/s), p50 {} ns, p99 {} ns, warm {} store + {} cache",
            requests,
            pass.elapsed,
            rps(requests, pass.elapsed),
            pass.stats.p50_ns,
            pass.stats.p99_ns,
            pass.stats.warm_store,
            pass.stats.warm_cache,
        );
        return Ok(());
    }

    // In-process mode: two generations over one store.
    let scratch = std::env::temp_dir().join(format!("cim-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)?;
    let cache_dir = match &common.cache_dir {
        Some(dir) => PathBuf::from(dir),
        None => scratch.join("store"),
    };
    let jobs = common.runner.jobs;

    let cold = generation("cold", &scratch.join("cold.sock"), &cache_dir, jobs, &lines)?;
    let warm = generation("warm", &scratch.join("warm.sock"), &cache_dir, jobs, &lines)?;

    assert_eq!(
        cold.replies, warm.replies,
        "cold and warm generations must produce byte-identical replies"
    );
    assert_eq!(cold.stats.errors, 0, "cold pass errors: {:?}", cold.stats);
    assert_eq!(
        warm.stats.warm_store as usize, requests,
        "every warm request must be answered from the store: {:?}",
        warm.stats
    );

    let snapshot = Value::Map(vec![
        ("bench".into(), Value::Str("cim-serve".into())),
        ("model".into(), Value::Str(model.clone())),
        ("requests".into(), Value::U64(requests as u64)),
        ("distinct_keys".into(), Value::U64(distinct_keys(requests) as u64)),
        ("jobs".into(), Value::U64(jobs as u64)),
        ("cold".into(), pass_value(&cold)),
        ("warm".into(), pass_value(&warm)),
        ("byte_identical".into(), Value::Bool(true)),
    ]);
    let json_path = common.json.clone().unwrap_or_else(|| "BENCH_serve.json".into());
    // Plain string/number trees; serialization cannot fail on them.
    let mut text = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    text.push('\n');
    std::fs::write(&json_path, text)
        .map_err(|e| io::Error::other(format!("write {json_path}: {e}")))?;

    println!(
        "serve-bench: {} requests × 2 generations over {} distinct keys (jobs {})",
        requests,
        distinct_keys(requests),
        jobs
    );
    println!(
        "  cold: {:>8.1} req/s  (p50 {} ns, p99 {} ns)",
        rps(requests, cold.elapsed),
        cold.stats.p50_ns,
        cold.stats.p99_ns
    );
    println!(
        "  warm: {:>8.1} req/s  (p50 {} ns, p99 {} ns, {} store hits)",
        rps(requests, warm.elapsed),
        warm.stats.p50_ns,
        warm.stats.p99_ns,
        warm.stats.warm_store
    );
    println!("  byte-identical replies: yes -> {json_path}");

    let _ = std::fs::remove_dir_all(&scratch);
    Ok(())
}
