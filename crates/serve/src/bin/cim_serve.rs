//! `cim-serve` — the scheduling daemon.
//!
//! ```text
//! cim-serve [--socket <path>] [--tcp <addr>] [--max-queue <n>]
//!           [--tenant-quota <n>] [--jobs <n>] [--cache-dir <dir>]
//!           [--read-timeout-ms <ms>] [--max-line-bytes <n>]
//!           [--fault-seed S --fault-rate site=per_mille ... --fault-delay-ms MS]
//! ```
//!
//! Listens on a Unix socket (default `/tmp/cim-serve.sock`) for
//! newline-delimited JSON requests and serves until a
//! `{"op":"shutdown"}` request arrives; then prints the final service
//! statistics. `--cache-dir` makes results durable across daemon
//! generations (warm restarts answer from disk). `--tenant-quota`
//! bounds how many pending computations any single model may hold in
//! the queue at once — excess requests get a retryable
//! `quota_exceeded` error instead of starving the other tenants.
//!
//! Hardening knobs: `--read-timeout-ms` bounds how long an idle
//! connection pins its handler thread (`0` = wait forever), and
//! `--max-line-bytes` bounds a request frame (longer lines get a typed
//! `line_too_long` error; the connection survives). The `--fault-*`
//! flags drive deterministic chaos injection into store I/O and
//! connection handling (see `cim_bench::runner::fault`). If the store
//! directory stops accepting writes the daemon degrades to cache-only
//! mode and keeps answering — visible in `stats` and the `health` op.
//!
//! ```text
//! $ cim-serve --socket /tmp/cim.sock --cache-dir /tmp/cim-store &
//! $ printf '%s\n' '{"id":"r1","model":"fig5","strategy":"xinf"}' | nc -U /tmp/cim.sock
//! ```

use cim_bench::parse_common_args;
use cim_serve::{Daemon, DaemonOptions, EngineOptions};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let common = parse_common_args();
    common.note_seed_unused();
    let rest = &common.rest;
    if common.json.is_some() {
        eprintln!("note: --json ignored — stats are served via the `stats` request");
    }

    let socket = flag_value(rest, "--socket").unwrap_or_else(|| "/tmp/cim-serve.sock".into());
    let tcp = flag_value(rest, "--tcp");
    let parse_unsigned = |flag: &str, v: String| -> u64 {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("{flag} expects an unsigned integer, got `{v}`");
            std::process::exit(2);
        })
    };
    let max_queue = flag_value(rest, "--max-queue")
        .map(|v| parse_unsigned("--max-queue", v) as usize)
        .unwrap_or(256);
    let tenant_quota = flag_value(rest, "--tenant-quota").map(|v| {
        let quota = parse_unsigned("--tenant-quota", v) as usize;
        if quota == 0 {
            eprintln!("--tenant-quota must be at least 1 (omit the flag to disable)");
            std::process::exit(2);
        }
        quota
    });
    let read_timeout = match flag_value(rest, "--read-timeout-ms")
        .map(|v| parse_unsigned("--read-timeout-ms", v))
    {
        Some(0) => None, // explicit 0 = wait forever
        Some(ms) => Some(std::time::Duration::from_millis(ms)),
        None => Some(cim_serve::DEFAULT_READ_TIMEOUT),
    };
    let max_line_bytes = flag_value(rest, "--max-line-bytes")
        .map(|v| parse_unsigned("--max-line-bytes", v) as usize)
        .unwrap_or(cim_serve::DEFAULT_MAX_LINE_BYTES);

    if let Some(plan) = &common.faults {
        println!("cim-serve: fault plan seeded with {}", plan.seed());
    }
    let options = DaemonOptions {
        socket: socket.clone().into(),
        tcp: tcp.clone(),
        engine: EngineOptions {
            jobs: common.runner.jobs,
            max_queue,
            tenant_quota,
        },
        cache_dir: common.cache_dir.clone().map(Into::into),
        read_timeout,
        max_line_bytes,
        faults: common
            .faults
            .clone()
            .map(|plan| plan as std::sync::Arc<dyn cim_bench::runner::FaultHook>),
    };

    let daemon = Daemon::bind(options).unwrap_or_else(|e| {
        eprintln!("cim-serve: bind failed: {e}");
        std::process::exit(1);
    });
    println!(
        "cim-serve: listening on {socket}{} (jobs {}, max-queue {max_queue}{}{})",
        match daemon.tcp_addr() {
            Some(addr) => format!(" + tcp {addr}"),
            None => String::new(),
        },
        common.runner.jobs,
        match tenant_quota {
            Some(quota) => format!(", tenant-quota {quota}"),
            None => String::new(),
        },
        match &common.cache_dir {
            Some(dir) => format!(", cache-dir {dir}"),
            None => String::new(),
        },
    );

    match daemon.run() {
        Ok(stats) => {
            println!(
                "cim-serve: shut down after {} requests ({} ok, {} errors, {} shed)",
                stats.submitted, stats.ok, stats.errors, stats.shed
            );
            println!(
                "cim-serve: warm {} store + {} cache, coalesced {}, p50 {} ns, p99 {} ns",
                stats.warm_store, stats.warm_cache, stats.coalesced, stats.p50_ns, stats.p99_ns
            );
            if stats.degraded {
                eprintln!(
                    "cim-serve: exited degraded (cache-only): {} store writes failed",
                    stats.store_write_errors
                );
            }
            if let Some(plan) = &common.faults {
                println!("cim-serve: fault plan: seed {} — {}", plan.seed(), plan.report());
            }
        }
        Err(e) => {
            eprintln!("cim-serve: serve loop failed: {e}");
            std::process::exit(1);
        }
    }
}
