//! # cim-serve — scheduling as a service
//!
//! Everything below this crate is batch: a binary starts, sweeps, exits.
//! `cim-serve` turns the stack into a **long-running compilation
//! daemon** answering a stream of newline-delimited JSON scheduling
//! requests over a Unix socket (TCP optional) with latency SLOs:
//!
//! * [`protocol`] — the wire types: [`Request`] (model + strategy +
//!   optional deadline and `after` happens-after tags), [`Response`],
//!   typed [`ErrorCode`]s. Replies are built exclusively from persisted
//!   [`RunSummary`](cim_bench::runner::RunSummary) fields, so a warm
//!   reply is byte-identical to the cold reply that seeded it.
//! * [`engine`] — the policy core, free of I/O: warm paths through the
//!   fingerprint-keyed [`ResultStore`](cim_bench::runner::ResultStore)
//!   and [`ScheduleCache`](cim_bench::runner::ScheduleCache), request
//!   coalescing, admission control with typed `overloaded` load
//!   shedding, earliest-deadline-first dispatch on the PR-2 lane pool,
//!   and happens-after parking. All timing flows through the PR-6
//!   [`Clock`](cim_tune::Clock) trait, so the SLO test suite drives
//!   every deadline decision deterministically with a
//!   [`ManualClock`](cim_tune::ManualClock).
//! * [`daemon`] — the sockets: acceptors, per-connection handlers, and
//!   the dispatcher thread delivering queued responses. Hardened:
//!   per-connection read timeouts, a bounded frame reader (oversized
//!   lines get a typed `line_too_long`, the connection survives), and
//!   deterministic connection-fault injection via
//!   [`FaultPlan`](cim_bench::runner::FaultPlan). When the persistent
//!   store stops accepting writes the daemon degrades to cache-only
//!   mode and keeps answering — `stats` and the `health` op surface it.
//! * [`stats`] — p50/p99 latency, throughput, hit rates, queue depth —
//!   the payload of a `stats` request.
//! * [`client`] — a minimal blocking client (used by the `serve-bench`
//!   driver and the end-to-end tests), with seeded
//!   backoff-and-reconnect retries ([`RetryPolicy`]).
//!
//! Binaries: `cim-serve` (the daemon) and `serve-bench` (a client
//! driver measuring sustained cold/warm requests per second into
//! `BENCH_serve.json`).
//!
//! # Examples
//!
//! The engine is fully usable without sockets:
//!
//! ```
//! use std::sync::Arc;
//! use cim_serve::{EngineOptions, Request, ServeEngine, Submission};
//! use cim_tune::{Clock, ManualClock};
//!
//! let clock = Arc::new(ManualClock::new());
//! let engine = ServeEngine::new(EngineOptions::default(), None, clock);
//! match engine.submit(&Request::schedule("r1", "fig5", "xinf", 0)) {
//!     Submission::Enqueued(ticket) => {
//!         let responses = engine.dispatch();
//!         assert_eq!(responses[0].0, ticket);
//!         assert!(responses[0].1.as_schedule().is_some());
//!     }
//!     Submission::Immediate(_) => unreachable!("cold engine must queue"),
//! }
//! assert!(engine.stats().completed == 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod engine;
pub mod protocol;
pub mod registry;
pub mod stats;

pub use client::{Client, RetryPolicy};
pub use daemon::{Daemon, DaemonOptions, DEFAULT_MAX_LINE_BYTES, DEFAULT_READ_TIMEOUT};
pub use engine::{EngineOptions, ServeEngine, Submission, Ticket};
pub use protocol::{
    ErrorCode, HealthReport, Op, Request, Response, ResponseBody, ScheduleReply, ServeError,
};
pub use registry::{build_config, ModelEntry, ModelRegistry, STRATEGIES};
pub use stats::{percentile, StatsSnapshot, TenantStat};
