//! The daemon's model registry: name → canonicalized graph, memoized.
//!
//! Canonicalizing a multi-hundred-layer zoo model is far from free, and a
//! service answering a request stream must pay it once per model per
//! process, not once per request. The registry builds a model lazily on
//! first use and keeps the canonical [`Graph`] (plus its fingerprint and
//! `PE_min`) behind an [`Arc`] for every later request to share — the
//! service-side analogue of `sweep_jobs` sharing one graph allocation
//! across a model's jobs.

use std::collections::BTreeMap;
use std::sync::Arc;

use cim_arch::Architecture;
use cim_frontend::{canonicalize, CanonOptions};
use cim_ir::Graph;
use cim_mapping::{MappingOptions, Solver};
use clsa_core::RunConfig;
use cim_bench::runner::{fingerprint, pe_min_of};
use parking_lot::Mutex;

use crate::protocol::{ErrorCode, ServeError};

/// One resolved model: the canonical graph plus the derived facts every
/// request on it needs.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry name (`fig5` or a zoo name such as `TinyYOLOv4`).
    pub name: String,
    /// The canonicalized graph, shared by all requests on the model.
    pub graph: Arc<Graph>,
    /// Fingerprint of the canonical graph (the cache/store model key).
    pub fingerprint: u64,
    /// `PE_min` on the paper's case-study crossbar.
    pub pe_min: usize,
}

/// Lazily-built, memoized name → [`ModelEntry`] map.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: Mutex<BTreeMap<String, Arc<ModelEntry>>>,
}

/// The strategy names the service accepts, in canonical order.
pub const STRATEGIES: [&str; 4] = ["layer-by-layer", "xinf", "wdup", "wdup+xinf"];

impl ModelRegistry {
    /// An empty registry (models materialize on first request).
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw (pre-canonicalization) graph for `name`, if the name is
    /// known.
    fn raw_graph(name: &str) -> Option<Graph> {
        if name == "fig5" {
            return Some(cim_models::fig5_example());
        }
        cim_models::all_models()
            .into_iter()
            .find(|m| m.name == name)
            .map(|m| m.build())
    }

    /// Every name the registry can resolve, in canonical order.
    pub fn known_names() -> Vec<String> {
        let mut names = vec!["fig5".to_string()];
        names.extend(cim_models::all_models().into_iter().map(|m| m.name.to_string()));
        names
    }

    /// Resolves `name`, canonicalizing and probing `PE_min` on first use.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownModel`] for names outside the registry;
    /// [`ErrorCode::ScheduleFailed`] if canonicalization or the cost
    /// probe fails (deterministic per name, so the error replies are
    /// reproducible too).
    pub fn resolve(&self, name: &str) -> Result<Arc<ModelEntry>, ServeError> {
        if let Some(entry) = self.entries.lock().get(name) {
            return Ok(Arc::clone(entry));
        }
        // Build outside the lock: canonicalization is slow and concurrent
        // requests for *different* models must not serialize on it. A
        // racing duplicate build of the same model is benign (identical
        // output; last insert wins).
        let raw = Self::raw_graph(name).ok_or_else(|| {
            ServeError::new(
                ErrorCode::UnknownModel,
                format!("unknown model `{name}` (known: {})", Self::known_names().join(", ")),
            )
        })?;
        let canon = canonicalize(&raw, &CanonOptions::default()).map_err(|e| {
            ServeError::new(
                ErrorCode::ScheduleFailed,
                format!("canonicalization of `{name}` failed: {e}"),
            )
        })?;
        let graph = Arc::new(canon.into_graph());
        let fp = fingerprint(graph.as_ref());
        let pe_min = pe_min_of(&graph, &MappingOptions::default()).map_err(|e| {
            ServeError::new(
                ErrorCode::ScheduleFailed,
                format!("PE_min probe of `{name}` failed: {e}"),
            )
        })?;
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            graph,
            fingerprint: fp,
            pe_min,
        });
        self.entries
            .lock()
            .insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }
}

/// Builds the [`RunConfig`] and canonical sweep label for a request's
/// `(strategy, x)` on `entry`, using the paper's case-study architecture
/// family (`PE_min + x` PEs of 256×256 crossbars).
///
/// # Errors
///
/// [`ErrorCode::UnknownStrategy`] for names outside [`STRATEGIES`];
/// [`ErrorCode::ScheduleFailed`] if the architecture cannot be built.
pub fn build_config(
    entry: &ModelEntry,
    strategy: &str,
    x: usize,
) -> Result<(RunConfig, String), ServeError> {
    let base = |pes: usize| -> Result<RunConfig, ServeError> {
        let arch = Architecture::paper_case_study(pes).map_err(|e| {
            ServeError::new(
                ErrorCode::ScheduleFailed,
                format!("architecture with {pes} PEs rejected: {e}"),
            )
        })?;
        Ok(RunConfig::baseline(arch))
    };
    match strategy {
        // The paper's baseline/xinf points are defined at PE_min exactly;
        // extra PEs only matter once duplication can use them.
        "layer-by-layer" | "baseline" => Ok((base(entry.pe_min)?, "layer-by-layer".into())),
        "xinf" => Ok((base(entry.pe_min)?.with_cross_layer(), "xinf".into())),
        "wdup" => Ok((
            base(entry.pe_min + x)?.with_duplication(Solver::Greedy),
            format!("wdup+{x}"),
        )),
        "wdup+xinf" => Ok((
            base(entry.pe_min + x)?
                .with_duplication(Solver::Greedy)
                .with_cross_layer(),
            format!("wdup+{x}+xinf"),
        )),
        other => Err(ServeError::new(
            ErrorCode::UnknownStrategy,
            format!(
                "unknown strategy `{other}` (known: {})",
                STRATEGIES.join(", ")
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_resolves_and_is_memoized() {
        let reg = ModelRegistry::new();
        let a = reg.resolve("fig5").unwrap();
        let b = reg.resolve("fig5").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second resolve reuses the entry");
        assert_eq!(a.pe_min, 2);
        assert_eq!(a.name, "fig5");
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let reg = ModelRegistry::new();
        let err = reg.resolve("GPT7").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownModel);
        assert!(err.detail.contains("fig5"), "detail lists known names");
    }

    #[test]
    fn strategies_map_to_sweep_labels() {
        let reg = ModelRegistry::new();
        let entry = reg.resolve("fig5").unwrap();
        let labels: Vec<String> = [
            ("layer-by-layer", 0),
            ("xinf", 0),
            ("wdup", 1),
            ("wdup+xinf", 2),
        ]
        .iter()
        .map(|&(s, x)| build_config(&entry, s, x).unwrap().1)
        .collect();
        assert_eq!(labels, ["layer-by-layer", "xinf", "wdup+1", "wdup+2+xinf"]);
        let err = build_config(&entry, "magic", 0).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownStrategy);
    }

    #[test]
    fn wdup_architecture_grows_with_x() {
        let reg = ModelRegistry::new();
        let entry = reg.resolve("fig5").unwrap();
        let (cfg, _) = build_config(&entry, "wdup", 3).unwrap();
        assert_eq!(cfg.arch.total_pes(), entry.pe_min + 3);
    }
}
