//! # cim-frontend — high-level NN preprocessing for CIM scheduling
//!
//! Implements the preprocessing stage of the CLSA-CIM paper (Sec. III-A,
//! Fig. 2): the NN model is transformed into a *canonical* representation
//! that the mapping and scheduling stages consume.
//!
//! The three passes, in pipeline order:
//!
//! 1. **Batch-norm folding** ([`fold_batch_norm`]) — inference-time BN layers
//!    are merged into the preceding convolution / dense layer, adjusting the
//!    kernel weights and bias (Jacob et al., CVPR 2018).
//! 2. **Partitioning** ([`decouple`]) — padding and bias addition are
//!    decoupled from the base layer, so every base layer is a pure
//!    [`Padding::Valid`], bias-free MVM and every auxiliary computation is an
//!    explicit non-base node.
//! 3. **Quantization** ([`quantize`]) — base layers are fake-quantized to the
//!    limited resolution of the RRAM cells (up to 4 bits in current silicon,
//!    Wan et al. 2022); weights are rounded to the integer grid and
//!    [`Op::Quantize`] markers are inserted after each base layer.
//!
//! [`canonicalize`] runs the full pipeline and returns a [`Canonical`] graph
//! whose invariants are machine-checked by [`Canonical::verify`].
//!
//! # Examples
//!
//! ```
//! use cim_frontend::{canonicalize, CanonOptions};
//! use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
//!
//! # fn main() -> Result<(), cim_frontend::FrontendError> {
//! let mut g = Graph::new("net");
//! let x = g.add("input", Op::Input { shape: FeatureShape::new(8, 8, 3) }, &[])?;
//! g.add(
//!     "conv",
//!     Op::Conv2d(Conv2dAttrs {
//!         out_channels: 4,
//!         kernel: (3, 3),
//!         stride: (1, 1),
//!         padding: Padding::Same,
//!         use_bias: true,
//!     }),
//!     &[x],
//! )?;
//! let canon = canonicalize(&g, &CanonOptions::default())?;
//! // The conv is now a pure valid-padding MVM with explicit pad/bias nodes.
//! assert_eq!(canon.graph().len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! [`Padding::Valid`]: cim_ir::Padding::Valid
//! [`Op::Quantize`]: cim_ir::Op::Quantize

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bn;
pub mod canon;
pub mod error;
pub mod partition;
pub mod quant;
mod rewrite;

pub use bn::fold_batch_norm;
pub use canon::{canonicalize, CanonOptions, Canonical};
pub use error::{FrontendError, Result};
pub use partition::decouple;
pub use quant::{max_quant_error, quantize, quantize_tensor, symmetric_scale, QuantPolicy};
