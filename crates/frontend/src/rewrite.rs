//! Shared graph-rewrite plumbing.
//!
//! All frontend passes (and the weight-duplication rewrite in `cim-mapping`)
//! follow the same shape: walk the source graph in topological order, emit
//! nodes into a fresh graph, and keep an old-id → new-id map so consumers can
//! be re-pointed. The [`Rewriter`] encapsulates that bookkeeping.

use cim_ir::{Graph, IrError, Node, NodeId, Op, Params};

use crate::error::Result;

/// Incremental graph rewriter with an old-to-new node-id map.
pub(crate) struct Rewriter {
    out: Graph,
    map: Vec<Option<NodeId>>,
}

impl Rewriter {
    /// Starts a rewrite of `src` into a new graph with the same name.
    pub fn new(src: &Graph) -> Self {
        Self {
            out: Graph::new(src.name()),
            map: vec![None; src.len()],
        }
    }

    /// The new id an old node's output maps to.
    ///
    /// # Panics
    ///
    /// Panics if the old node has not been emitted or aliased yet — passes
    /// process nodes in topological order, so inputs are always mapped first.
    pub fn mapped(&self, old: NodeId) -> NodeId {
        self.map[old.index()].expect("node mapped before use (topological order)") // cim-lint: allow(panic-unwrap) topological order maps inputs first
    }

    /// New ids of all inputs of an old node.
    pub fn mapped_inputs(&self, node: &Node) -> Vec<NodeId> {
        node.inputs.iter().map(|&i| self.mapped(i)).collect()
    }

    /// Copies `node` verbatim (op, name, params, logical layer), re-pointing
    /// its inputs, and maps its id.
    pub fn copy(&mut self, node: &Node) -> Result<NodeId> {
        let inputs = self.mapped_inputs(node);
        let id = self.out.add_node(
            node.name.clone(),
            node.op.clone(),
            &inputs,
            node.params.clone(),
            node.logical_layer,
        )?;
        self.map[node.id.index()] = Some(id);
        Ok(id)
    }

    /// Emits a fresh node into the output graph without mapping any old id.
    pub fn emit(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: &[NodeId],
        params: Option<Params>,
        logical_layer: Option<u32>,
    ) -> Result<NodeId> {
        Ok(self.out.add_node(name, op, inputs, params, logical_layer)?)
    }

    /// Declares that the output of old node `old` is produced by new node
    /// `new` (used when a node is elided or replaced by a sequence).
    pub fn alias(&mut self, old: NodeId, new: NodeId) {
        self.map[old.index()] = Some(new);
    }

    /// Mutable access to an already-emitted node (for in-place parameter or
    /// attribute updates, e.g. batch-norm folding).
    pub fn emitted_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        Ok(self.out.node_mut(id)?)
    }

    /// Finishes the rewrite, validating the produced graph.
    pub fn finish(self) -> Result<Graph> {
        self.out.validate()?;
        Ok(self.out)
    }

    /// Finishes without validation (for passes that intentionally produce
    /// graphs violating secondary invariants, none currently).
    #[allow(dead_code)]
    pub fn finish_unchecked(self) -> Graph {
        self.out
    }
}

/// Ensures `g` is non-empty and internally consistent before a pass runs.
pub(crate) fn check_input(g: &Graph) -> Result<()> {
    if g.is_empty() {
        return Err(IrError::EmptyGraph.into());
    }
    g.validate()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::{FeatureShape, Op};

    #[test]
    fn copy_preserves_structure() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 1),
                },
                &[],
            )
            .unwrap();
        let a = g
            .add("act", Op::Activation(cim_ir::ActFn::Relu), &[x])
            .unwrap();
        let mut rw = Rewriter::new(&g);
        for n in g.iter() {
            rw.copy(n).unwrap();
        }
        assert_eq!(rw.mapped(x), x);
        assert_eq!(rw.mapped(a), a);
        let out = rw.finish().unwrap();
        assert_eq!(out, g);
    }

    #[test]
    fn alias_redirects_consumers() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 1),
                },
                &[],
            )
            .unwrap();
        let a = g
            .add("a", Op::Activation(cim_ir::ActFn::Relu), &[x])
            .unwrap();
        let b = g
            .add("b", Op::Activation(cim_ir::ActFn::Relu), &[a])
            .unwrap();
        // Drop node `a`, wiring `b` directly to the input.
        let mut rw = Rewriter::new(&g);
        let nx = rw.copy(g.node(x).unwrap()).unwrap();
        rw.alias(a, nx);
        rw.copy(g.node(b).unwrap()).unwrap();
        let out = rw.finish().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.node(out.find("b").unwrap()).unwrap().inputs, vec![nx]);
    }

    #[test]
    #[should_panic(expected = "mapped before use")]
    fn mapped_panics_on_unprocessed_node() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(4, 4, 1),
                },
                &[],
            )
            .unwrap();
        let rw = Rewriter::new(&g);
        let _ = rw.mapped(x);
    }

    #[test]
    fn check_input_rejects_empty() {
        assert!(check_input(&Graph::new("e")).is_err());
    }
}
