//! The canonicalization pipeline and the canonical-form contract.
//!
//! [`canonicalize`] chains the frontend passes in the paper's order (Fig. 2):
//! BN folding → partitioning → (optional) quantization, and returns a
//! [`Canonical`] wrapper whose invariants downstream stages rely on:
//!
//! 1. no foldable batch-norm nodes remain;
//! 2. every Conv2D uses [`Padding::Valid`] and `use_bias == false`, every
//!    Dense has `use_bias == false`;
//! 3. the graph validates ([`Graph::validate`]).
//!
//! [`Padding::Valid`]: cim_ir::Padding::Valid
//! [`Graph::validate`]: cim_ir::Graph::validate

use cim_ir::{Graph, Op};

use crate::bn::fold_batch_norm;
use crate::error::{FrontendError, Result};
use crate::partition::decouple;
use crate::quant::{quantize, QuantPolicy};

/// Options for [`canonicalize`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CanonOptions {
    /// Quantization policy; `None` skips the quantization pass (the default —
    /// scheduling results do not depend on it, and shape-only zoo models have
    /// no weights to quantize).
    pub quantize: Option<QuantPolicy>,
}

impl CanonOptions {
    /// Enables quantization with the paper's 4-bit RRAM cell policy.
    pub fn with_rram_quantization(mut self) -> Self {
        self.quantize = Some(QuantPolicy::rram_4bit());
        self
    }
}

/// A graph in canonical (partitioned) form.
///
/// Produced by [`canonicalize`]; the mapping and scheduling crates accept
/// plain [`Graph`]s but the canonical form is what the paper's pipeline
/// feeds them.
#[derive(Debug, Clone, PartialEq)]
pub struct Canonical {
    graph: Graph,
}

impl Canonical {
    /// Wraps a graph after checking the canonical-form invariants.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::NotCanonical`] describing the first violated
    /// invariant.
    pub fn try_new(graph: Graph) -> Result<Self> {
        Self::verify(&graph)?;
        Ok(Self { graph })
    }

    /// Checks the canonical-form invariants without taking ownership.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::NotCanonical`] on the first violation, or the
    /// underlying [`IrError`](cim_ir::IrError) if the graph itself is
    /// inconsistent.
    pub fn verify(graph: &Graph) -> Result<()> {
        graph.validate()?;
        for n in graph.iter() {
            match &n.op {
                Op::Conv2d(a) => {
                    if a.padding != cim_ir::Padding::Valid {
                        return Err(FrontendError::NotCanonical {
                            node: n.name.clone(),
                            detail: "convolution padding must be decoupled (valid)".into(),
                        });
                    }
                    if a.use_bias {
                        return Err(FrontendError::NotCanonical {
                            node: n.name.clone(),
                            detail: "convolution bias must be decoupled".into(),
                        });
                    }
                }
                Op::Dense(a) if a.use_bias => {
                    return Err(FrontendError::NotCanonical {
                        node: n.name.clone(),
                        detail: "dense bias must be decoupled".into(),
                    });
                }
                Op::BatchNorm(_) => {
                    let prod = graph.node(n.inputs[0])?;
                    if prod.op.is_base() {
                        return Err(FrontendError::NotCanonical {
                            node: n.name.clone(),
                            detail: "foldable batch norm remains after a base layer".into(),
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The canonical graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Extracts the canonical graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

impl AsRef<Graph> for Canonical {
    fn as_ref(&self) -> &Graph {
        &self.graph
    }
}

/// Runs the full preprocessing pipeline: BN folding, partitioning, and
/// optional quantization.
///
/// # Errors
///
/// Propagates errors of the individual passes; see [`fold_batch_norm`],
/// [`decouple`] and [`quantize`].
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn canonicalize(g: &Graph, opts: &CanonOptions) -> Result<Canonical> {
    let g = fold_batch_norm(g)?;
    let g = decouple(&g)?;
    let g = match &opts.quantize {
        Some(policy) => quantize(&g, policy)?,
        None => g,
    };
    Canonical::try_new(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::{
        ActFn, BatchNormAttrs, BnParams, Conv2dAttrs, Executor, FeatureShape, Op, Padding, Params,
        PoolAttrs, Tensor,
    };

    /// input → conv(same, bias) → bn → relu → pool, fully parameterized.
    fn tf_style_graph() -> Graph {
        let mut g = Graph::new("tf");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 2),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_fn(&[3, 3, 2, 4], |i| ((i * 5 % 23) as f32 - 11.0) * 0.07);
        let bias = Tensor::from_fn(&[4], |i| 0.2 * i as f32 - 0.3);
        let c = g
            .add_with_params(
                "conv",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Same,
                    use_bias: true,
                }),
                &[x],
                Params {
                    kernel: Some(kernel),
                    bias: Some(bias),
                    bn: None,
                },
            )
            .unwrap();
        let bn = BnParams {
            gamma: Tensor::from_fn(&[4], |i| 0.8 + 0.1 * i as f32),
            beta: Tensor::from_fn(&[4], |i| 0.1 * i as f32),
            mean: Tensor::from_fn(&[4], |i| 0.02 * i as f32),
            var: Tensor::from_fn(&[4], |i| 1.0 + 0.2 * i as f32),
        };
        let b = g
            .add_with_params(
                "bn",
                Op::BatchNorm(BatchNormAttrs { eps: 1e-3 }),
                &[c],
                Params {
                    kernel: None,
                    bias: None,
                    bn: Some(bn),
                },
            )
            .unwrap();
        let r = g.add("relu", Op::Activation(ActFn::Relu), &[b]).unwrap();
        g.add(
            "pool",
            Op::MaxPool2d(PoolAttrs {
                window: (2, 2),
                stride: (2, 2),
                padding: Padding::Valid,
            }),
            &[r],
        )
        .unwrap();
        g
    }

    #[test]
    fn full_pipeline_structure() {
        let g = tf_style_graph();
        let canon = canonicalize(&g, &CanonOptions::default()).unwrap();
        let cg = canon.graph();
        // input, conv_pad, conv, conv_bias, relu, pool — bn folded away.
        assert_eq!(cg.len(), 6);
        assert!(cg.find("conv_pad").is_some());
        assert!(cg.find("conv_bias").is_some());
        assert!(cg.find("bn").is_none());
        Canonical::verify(cg).unwrap();
    }

    #[test]
    fn full_pipeline_preserves_numerics() {
        let g = tf_style_graph();
        let canon = canonicalize(&g, &CanonOptions::default()).unwrap();
        let input = Tensor::from_fn(&[8, 8, 2], |i| ((i * 11 % 31) as f32 - 15.0) * 0.15);
        let o1 = Executor::new(&g).run_single(input.clone()).unwrap();
        let o2 = Executor::new(canon.graph()).run_single(input).unwrap();
        let a = &o1[&g.find("pool").unwrap()];
        let b = &o2[&canon.graph().find("pool").unwrap()];
        assert!(a.max_abs_diff(b).unwrap() < 1e-5);
    }

    #[test]
    fn quantized_pipeline_bounds_error() {
        let g = tf_style_graph();
        let opts = CanonOptions::default().with_rram_quantization();
        let canon = canonicalize(&g, &opts).unwrap();
        assert!(canon.graph().find("conv_q").is_some());
        let input = Tensor::from_fn(&[8, 8, 2], |i| ((i * 11 % 31) as f32 - 15.0) * 0.15);
        let o1 = Executor::new(&g).run_single(input.clone()).unwrap();
        let o2 = Executor::new(canon.graph()).run_single(input).unwrap();
        let a = &o1[&g.find("pool").unwrap()];
        let b = &o2[&canon.graph().find("pool").unwrap()];
        // 4-bit weights and 8-bit activations are lossy but must stay in the
        // same ballpark on this tiny net.
        let diff = a.max_abs_diff(b).unwrap();
        assert!(diff < 1.0, "quantization error unexpectedly large: {diff}");
        assert!(diff > 0.0, "quantization should not be exact here");
    }

    #[test]
    fn verify_rejects_same_padding() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 2),
                },
                &[],
            )
            .unwrap();
        g.add(
            "conv",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 4,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Same,
                use_bias: false,
            }),
            &[x],
        )
        .unwrap();
        assert!(matches!(
            Canonical::try_new(g),
            Err(FrontendError::NotCanonical { .. })
        ));
    }

    #[test]
    fn verify_rejects_inline_bias() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(1, 1, 4),
                },
                &[],
            )
            .unwrap();
        g.add(
            "fc",
            Op::Dense(cim_ir::DenseAttrs {
                units: 2,
                use_bias: true,
            }),
            &[x],
        )
        .unwrap();
        assert!(matches!(
            Canonical::verify(&g),
            Err(FrontendError::NotCanonical { .. })
        ));
    }

    #[test]
    fn verify_allows_unfoldable_bn() {
        // BN after a pool is not foldable and therefore allowed to remain.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 2),
                },
                &[],
            )
            .unwrap();
        let p = g
            .add(
                "pool",
                Op::MaxPool2d(PoolAttrs {
                    window: (2, 2),
                    stride: (2, 2),
                    padding: Padding::Valid,
                }),
                &[x],
            )
            .unwrap();
        g.add("bn", Op::BatchNorm(BatchNormAttrs::default()), &[p])
            .unwrap();
        Canonical::verify(&g).unwrap();
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let g = tf_style_graph();
        let once = canonicalize(&g, &CanonOptions::default()).unwrap();
        let twice = canonicalize(once.graph(), &CanonOptions::default()).unwrap();
        assert_eq!(once.graph(), twice.graph());
    }
}
