//! Batch-norm folding (Sec. III-A of the paper, "BN folding").
//!
//! At inference time a batch-norm layer computes an affine per-channel map
//! `y = γ·(x − μ)/√(σ² + ε) + β`. When the producing layer is a convolution
//! or dense layer, the affine map can be absorbed into the layer's kernel
//! and bias:
//!
//! ```text
//! inv      = γ / √(σ² + ε)
//! kernel'  = kernel · inv        (per output channel)
//! bias'    = (bias − μ) · inv + β
//! ```
//!
//! which removes the BN node from the graph entirely (Jacob et al., CVPR
//! 2018 \[21\] in the paper).

use cim_ir::{NodeId, Op, Params, Tensor};

use crate::error::{FrontendError, Result};
use crate::rewrite::{check_input, Rewriter};

/// Folds inference batch normalization into the preceding base layer.
///
/// A BN node is folded when (a) its producer is a base layer (Conv2D or
/// Dense) and (b) the BN node is that producer's *only* consumer — otherwise
/// other consumers would observe the folded output. Non-foldable BN nodes
/// are preserved unchanged.
///
/// On shape-only graphs (no parameters attached anywhere) the BN node is
/// simply removed: scheduling experiments never look at values, and BN is an
/// element-wise op with zero cost in the paper's latency model either way.
///
/// # Errors
///
/// Returns [`FrontendError::FoldParams`] when exactly one side (producer or
/// BN) carries parameters — folding would silently change semantics — and
/// propagates graph reconstruction errors.
///
/// # Examples
///
/// ```
/// use cim_frontend::fold_batch_norm;
/// use cim_ir::{BatchNormAttrs, Conv2dAttrs, FeatureShape, Graph, Op, Padding};
///
/// # fn main() -> Result<(), cim_frontend::FrontendError> {
/// let mut g = Graph::new("net");
/// let x = g.add("input", Op::Input { shape: FeatureShape::new(8, 8, 3) }, &[])?;
/// let c = g.add(
///     "conv",
///     Op::Conv2d(Conv2dAttrs {
///         out_channels: 4,
///         kernel: (3, 3),
///         stride: (1, 1),
///         padding: Padding::Valid,
///         use_bias: false,
///     }),
///     &[x],
/// )?;
/// g.add("bn", Op::BatchNorm(BatchNormAttrs::default()), &[c])?;
/// let folded = fold_batch_norm(&g)?;
/// assert_eq!(folded.len(), 2, "the BN node is gone");
/// # Ok(())
/// # }
/// ```
pub fn fold_batch_norm(g: &cim_ir::Graph) -> Result<cim_ir::Graph> {
    check_input(g)?;
    let consumers = g.consumers();
    let mut rw = Rewriter::new(g);
    for node in g.iter() {
        let foldable_producer = match &node.op {
            Op::BatchNorm(_) => {
                let prod = g.node(node.inputs[0])?;
                (prod.op.is_base() && consumers[prod.id.index()].len() == 1).then_some(prod.id)
            }
            _ => None,
        };
        let Some(prod_old) = foldable_producer else {
            rw.copy(node)?;
            continue;
        };
        let Op::BatchNorm(attrs) = &node.op else {
            unreachable!()
        };
        let new_prod = rw.mapped(prod_old);
        let bn_params = node.params.as_ref().and_then(|p| p.bn.as_ref()).cloned();
        let prod_node = rw.emitted_mut(new_prod)?;
        let has_kernel = prod_node
            .params
            .as_ref()
            .is_some_and(|p| p.kernel.is_some());
        match (has_kernel, bn_params) {
            (false, None) => {
                // Shape-only graph: drop the BN node.
            }
            (true, Some(bn)) => {
                let params = prod_node
                    .params
                    .as_mut()
                    .expect("has_kernel implies params"); // cim-lint: allow(panic-unwrap) guarded by the preceding has_kernel/validate checks
                fold_into(params, &bn, attrs.eps, &prod_node.op, &node.name)?;
                match &mut prod_node.op {
                    Op::Conv2d(a) => a.use_bias = true,
                    Op::Dense(a) => a.use_bias = true,
                    _ => unreachable!("base layers are conv or dense"),
                }
                // Recorded shape is unchanged: BN is shape-preserving and
                // use_bias does not affect inference.
            }
            (true, None) => {
                return Err(FrontendError::FoldParams {
                    node: node.name.clone(),
                    detail: "producer has weights but batch norm has no parameters".into(),
                });
            }
            (false, Some(_)) => {
                return Err(FrontendError::FoldParams {
                    node: node.name.clone(),
                    detail: "batch norm has parameters but producer has no weights".into(),
                });
            }
        }
        rw.alias(node.id, new_prod);
    }
    rw.finish()
}

/// Applies the folding equations to the producer's parameters in place.
fn fold_into(
    params: &mut Params,
    bn: &cim_ir::BnParams,
    eps: f32,
    prod_op: &Op,
    bn_name: &str,
) -> Result<()> {
    let kernel = params.kernel.as_mut().expect("caller checked"); // cim-lint: allow(panic-unwrap) guarded by the preceding has_kernel/validate checks
    let co = match prod_op {
        Op::Conv2d(a) => a.out_channels,
        Op::Dense(a) => a.units,
        _ => unreachable!(),
    };
    for (t, what) in [
        (&bn.gamma, "gamma"),
        (&bn.beta, "beta"),
        (&bn.mean, "mean"),
        (&bn.var, "var"),
    ] {
        if t.dims() != [co] {
            return Err(FrontendError::FoldParams {
                node: bn_name.to_string(),
                detail: format!("{what} dims {:?}, expected [{co}]", t.dims()),
            });
        }
    }
    let inv: Vec<f32> = (0..co)
        .map(|c| bn.gamma.at1(c) / (bn.var.at1(c) + eps).sqrt())
        .collect();

    // Scale the kernel per output channel. The output channel is the last
    // dimension for both conv ([kh, kw, ci, co]) and dense ([ci, co]).
    let dims = kernel.dims().to_vec();
    let last = *dims.last().expect("kernel has dims"); // cim-lint: allow(panic-unwrap) guarded by the preceding has_kernel/validate checks
    if last != co {
        return Err(FrontendError::FoldParams {
            node: bn_name.to_string(),
            detail: format!("kernel dims {dims:?} end in {last}, expected {co}"),
        });
    }
    for (i, v) in kernel.as_mut_slice().iter_mut().enumerate() {
        *v *= inv[i % co];
    }

    let old_bias = params.bias.take();
    let mut new_bias = Tensor::zeros(&[co]);
    for (c, out) in new_bias.as_mut_slice().iter_mut().enumerate() {
        let b = old_bias.as_ref().map_or(0.0, |t| t.at1(c));
        *out = (b - bn.mean.at1(c)) * inv[c] + bn.beta.at1(c);
    }
    params.bias = Some(new_bias);
    Ok(())
}

/// Returns `true` if the graph still contains any batch-norm node.
pub fn has_batch_norm(g: &cim_ir::Graph) -> bool {
    g.iter().any(|n| matches!(n.op, Op::BatchNorm(_)))
}

/// Ids of BN nodes that [`fold_batch_norm`] would *not* remove (producer is
/// not a base layer, or the producer has other consumers).
pub fn unfoldable_batch_norms(g: &cim_ir::Graph) -> Vec<NodeId> {
    let consumers = g.consumers();
    g.iter()
        .filter(|n| matches!(n.op, Op::BatchNorm(_)))
        .filter(|n| {
            let prod = g.node(n.inputs[0]).expect("validated graph"); // cim-lint: allow(panic-unwrap) guarded by the preceding has_kernel/validate checks
            !(prod.op.is_base() && consumers[prod.id.index()].len() == 1)
        })
        .map(|n| n.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::{
        BatchNormAttrs, BnParams, Conv2dAttrs, Executor, FeatureShape, Graph, Padding, Params,
    };

    fn conv_attrs(oc: usize, use_bias: bool) -> Conv2dAttrs {
        Conv2dAttrs {
            out_channels: oc,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Valid,
            use_bias,
        }
    }

    fn bn_params(co: usize, seed: f32) -> BnParams {
        BnParams {
            gamma: Tensor::from_fn(&[co], |i| 0.5 + 0.1 * (i as f32 + seed)),
            beta: Tensor::from_fn(&[co], |i| -0.2 * (i as f32) + seed),
            mean: Tensor::from_fn(&[co], |i| 0.05 * (i as f32) - seed),
            var: Tensor::from_fn(&[co], |i| 1.0 + 0.3 * (i as f32)),
        }
    }

    /// Builds input → conv(+bias?) → bn with parameters attached.
    fn conv_bn_graph(use_bias: bool) -> Graph {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_fn(&[3, 3, 2, 4], |i| ((i * 7 % 13) as f32 - 6.0) * 0.1);
        let bias = use_bias.then(|| Tensor::from_fn(&[4], |i| 0.3 * i as f32 - 0.1));
        let c = g
            .add_with_params(
                "conv",
                Op::Conv2d(conv_attrs(4, use_bias)),
                &[x],
                Params {
                    kernel: Some(kernel),
                    bias,
                    bn: None,
                },
            )
            .unwrap();
        g.add_with_params(
            "bn",
            Op::BatchNorm(BatchNormAttrs { eps: 1e-3 }),
            &[c],
            Params {
                kernel: None,
                bias: None,
                bn: Some(bn_params(4, 0.7)),
            },
        )
        .unwrap();
        g
    }

    #[test]
    fn folded_graph_is_numerically_identical() {
        for use_bias in [false, true] {
            let g = conv_bn_graph(use_bias);
            let folded = fold_batch_norm(&g).unwrap();
            assert_eq!(folded.len(), 2);
            assert!(!has_batch_norm(&folded));

            let input = Tensor::from_fn(&[6, 6, 2], |i| ((i * 5 % 17) as f32 - 8.0) * 0.25);
            let out_orig = Executor::new(&g).run_single(input.clone()).unwrap();
            let out_fold = Executor::new(&folded).run_single(input).unwrap();
            let bn_id = g.find("bn").unwrap();
            let conv_id = folded.find("conv").unwrap();
            let diff = out_orig[&bn_id].max_abs_diff(&out_fold[&conv_id]).unwrap();
            assert!(diff < 1e-5, "use_bias={use_bias}: diff {diff}");
        }
    }

    #[test]
    fn shape_only_bn_is_dropped() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        let c = g
            .add("conv", Op::Conv2d(conv_attrs(4, false)), &[x])
            .unwrap();
        let b = g
            .add("bn", Op::BatchNorm(BatchNormAttrs::default()), &[c])
            .unwrap();
        g.add("relu", Op::Activation(cim_ir::ActFn::Relu), &[b])
            .unwrap();
        let folded = fold_batch_norm(&g).unwrap();
        assert_eq!(folded.len(), 3);
        // relu is now wired directly to the conv.
        let relu = folded.node(folded.find("relu").unwrap()).unwrap();
        assert_eq!(relu.inputs, vec![folded.find("conv").unwrap()]);
    }

    #[test]
    fn bn_after_non_base_is_preserved() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        let a = g
            .add("relu", Op::Activation(cim_ir::ActFn::Relu), &[x])
            .unwrap();
        g.add("bn", Op::BatchNorm(BatchNormAttrs::default()), &[a])
            .unwrap();
        let folded = fold_batch_norm(&g).unwrap();
        assert!(has_batch_norm(&folded));
        assert_eq!(unfoldable_batch_norms(&g).len(), 1);
    }

    #[test]
    fn bn_with_shared_producer_is_preserved() {
        // conv feeds both a BN and a second consumer; folding would corrupt
        // the second consumer's view.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        let c = g
            .add("conv", Op::Conv2d(conv_attrs(4, false)), &[x])
            .unwrap();
        g.add("bn", Op::BatchNorm(BatchNormAttrs::default()), &[c])
            .unwrap();
        g.add("relu", Op::Activation(cim_ir::ActFn::Relu), &[c])
            .unwrap();
        let folded = fold_batch_norm(&g).unwrap();
        assert!(has_batch_norm(&folded));
        assert_eq!(folded.len(), g.len());
    }

    #[test]
    fn mixed_parameter_presence_is_an_error() {
        // BN has params, conv does not.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        let c = g
            .add("conv", Op::Conv2d(conv_attrs(4, false)), &[x])
            .unwrap();
        g.add_with_params(
            "bn",
            Op::BatchNorm(BatchNormAttrs::default()),
            &[c],
            Params {
                kernel: None,
                bias: None,
                bn: Some(bn_params(4, 0.0)),
            },
        )
        .unwrap();
        assert!(matches!(
            fold_batch_norm(&g),
            Err(FrontendError::FoldParams { .. })
        ));
    }

    #[test]
    fn bad_bn_dims_rejected() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::zeros(&[3, 3, 2, 4]);
        let c = g
            .add_with_params(
                "conv",
                Op::Conv2d(conv_attrs(4, false)),
                &[x],
                Params::with_kernel(kernel),
            )
            .unwrap();
        // gamma has 3 channels instead of 4.
        let bad = BnParams {
            gamma: Tensor::zeros(&[3]),
            beta: Tensor::zeros(&[4]),
            mean: Tensor::zeros(&[4]),
            var: Tensor::zeros(&[4]),
        };
        g.add_with_params(
            "bn",
            Op::BatchNorm(BatchNormAttrs::default()),
            &[c],
            Params {
                kernel: None,
                bias: None,
                bn: Some(bad),
            },
        )
        .unwrap();
        assert!(matches!(
            fold_batch_norm(&g),
            Err(FrontendError::FoldParams { .. })
        ));
    }

    #[test]
    fn dense_bn_folds_numerically() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(1, 1, 5),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_fn(&[5, 3], |i| (i as f32 - 7.0) * 0.2);
        let d = g
            .add_with_params(
                "dense",
                Op::Dense(cim_ir::DenseAttrs {
                    units: 3,
                    use_bias: false,
                }),
                &[x],
                Params::with_kernel(kernel),
            )
            .unwrap();
        g.add_with_params(
            "bn",
            Op::BatchNorm(BatchNormAttrs { eps: 1e-3 }),
            &[d],
            Params {
                kernel: None,
                bias: None,
                bn: Some(bn_params(3, 0.2)),
            },
        )
        .unwrap();
        let folded = fold_batch_norm(&g).unwrap();
        let input = Tensor::from_fn(&[1, 1, 5], |i| i as f32 * 0.5 - 1.0);
        let o1 = Executor::new(&g).run_single(input.clone()).unwrap();
        let o2 = Executor::new(&folded).run_single(input).unwrap();
        let diff = o1[&g.find("bn").unwrap()]
            .max_abs_diff(&o2[&folded.find("dense").unwrap()])
            .unwrap();
        assert!(diff < 1e-5);
    }
}
