//! Partitioning pass (Sec. III-A of the paper, "Partitioning").
//!
//! The NN is divided into *base layers* — operations executed on the
//! crossbar PEs — and *non-base layers*. Padding and bias addition are
//! decoupled from the base layer so that the base layer becomes a pure MVM:
//!
//! * a convolution with `same`/explicit padding becomes
//!   `zero_pad2d → conv(valid)`;
//! * a convolution or dense layer with `use_bias` becomes
//!   `conv → bias` with the bias vector moved onto the new node.
//!
//! This "eliminates redundancy in the graph representation" (paper Fig. 2):
//! the scheduler sees padding and bias exactly once, as explicit non-base
//! nodes, regardless of how the original model expressed them.

use cim_ir::{Op, Params};

use crate::error::Result;
use crate::rewrite::{check_input, Rewriter};

/// Decouples padding and bias from every base layer.
///
/// After this pass every `Conv2d` has [`Padding::Valid`] and
/// `use_bias == false`; padding appears as explicit [`Op::ZeroPad2d`] nodes
/// (named `<layer>_pad`) and biases as [`Op::Bias`] nodes (named
/// `<layer>_bias`). Zero-amount padding (e.g. `same` on a 1×1/1 kernel)
/// inserts no node.
///
/// # Errors
///
/// Propagates graph reconstruction errors ([`FrontendError::Ir`]).
///
/// # Examples
///
/// ```
/// use cim_frontend::decouple;
/// use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Op, Padding};
///
/// # fn main() -> Result<(), cim_frontend::FrontendError> {
/// let mut g = Graph::new("net");
/// let x = g.add("input", Op::Input { shape: FeatureShape::new(8, 8, 3) }, &[])?;
/// g.add(
///     "conv",
///     Op::Conv2d(Conv2dAttrs {
///         out_channels: 4,
///         kernel: (3, 3),
///         stride: (1, 1),
///         padding: Padding::Same,
///         use_bias: true,
///     }),
///     &[x],
/// )?;
/// let canon = decouple(&g)?;
/// assert!(canon.find("conv_pad").is_some());
/// assert!(canon.find("conv_bias").is_some());
/// # Ok(())
/// # }
/// ```
///
/// [`Padding::Valid`]: cim_ir::Padding::Valid
/// [`Op::ZeroPad2d`]: cim_ir::Op::ZeroPad2d
/// [`Op::Bias`]: cim_ir::Op::Bias
/// [`FrontendError::Ir`]: crate::FrontendError::Ir
pub fn decouple(g: &cim_ir::Graph) -> Result<cim_ir::Graph> {
    check_input(g)?;
    let mut rw = Rewriter::new(g);
    for node in g.iter() {
        match &node.op {
            Op::Conv2d(attrs) => {
                let in_shape = g.node(node.inputs[0])?.out_shape;
                let pad =
                    attrs
                        .padding
                        .resolve((in_shape.h, in_shape.w), attrs.kernel, attrs.stride)?;
                let mut conv_input = rw.mapped(node.inputs[0]);
                if !pad.is_zero() {
                    conv_input = rw.emit(
                        format!("{}_pad", node.name),
                        Op::ZeroPad2d(pad),
                        &[conv_input],
                        None,
                        None,
                    )?;
                }
                let mut new_attrs = *attrs;
                new_attrs.padding = cim_ir::Padding::Valid;
                new_attrs.use_bias = false;
                let (conv_params, bias_params) = split_bias(node.params.clone());
                let conv_id = rw.emit(
                    node.name.clone(),
                    Op::Conv2d(new_attrs),
                    &[conv_input],
                    conv_params,
                    node.logical_layer,
                )?;
                let out_id = if attrs.use_bias {
                    rw.emit(
                        format!("{}_bias", node.name),
                        Op::Bias,
                        &[conv_id],
                        bias_params,
                        None,
                    )?
                } else {
                    conv_id
                };
                rw.alias(node.id, out_id);
            }
            Op::Dense(attrs) if attrs.use_bias => {
                let mut new_attrs = *attrs;
                new_attrs.use_bias = false;
                let inputs = rw.mapped_inputs(node);
                let (dense_params, bias_params) = split_bias(node.params.clone());
                let dense_id = rw.emit(
                    node.name.clone(),
                    Op::Dense(new_attrs),
                    &inputs,
                    dense_params,
                    node.logical_layer,
                )?;
                let bias_id = rw.emit(
                    format!("{}_bias", node.name),
                    Op::Bias,
                    &[dense_id],
                    bias_params,
                    None,
                )?;
                rw.alias(node.id, bias_id);
            }
            _ => {
                rw.copy(node)?;
            }
        }
    }
    rw.finish()
}

/// Splits `params` into (kernel-only, bias-only) parameter sets.
fn split_bias(params: Option<Params>) -> (Option<Params>, Option<Params>) {
    match params {
        None => (None, None),
        Some(p) => {
            let bias = p.bias.map(|b| Params {
                kernel: None,
                bias: Some(b),
                bn: None,
            });
            let kernel = Params {
                kernel: p.kernel,
                bias: None,
                bn: p.bn,
            };
            let kernel = (kernel.kernel.is_some() || kernel.bn.is_some()).then_some(kernel);
            (kernel, bias)
        }
    }
}

/// Returns `true` if every base layer in `g` is in partitioned form: valid
/// padding and no inline bias.
pub fn is_partitioned(g: &cim_ir::Graph) -> bool {
    g.iter().all(|n| match &n.op {
        Op::Conv2d(a) => a.padding == cim_ir::Padding::Valid && !a.use_bias,
        Op::Dense(a) => !a.use_bias,
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::{Conv2dAttrs, DenseAttrs, Executor, FeatureShape, Graph, Padding, Params, Tensor};

    fn conv(oc: usize, k: usize, st: usize, padding: Padding, use_bias: bool) -> Op {
        Op::Conv2d(Conv2dAttrs {
            out_channels: oc,
            kernel: (k, k),
            stride: (st, st),
            padding,
            use_bias,
        })
    }

    #[test]
    fn same_conv_becomes_pad_plus_valid() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        let c = g
            .add("conv", conv(4, 3, 2, Padding::Same, false), &[x])
            .unwrap();
        let out_shape = g.node(c).unwrap().out_shape;
        let p = decouple(&g).unwrap();
        assert!(is_partitioned(&p));
        assert_eq!(p.len(), 3);
        let pad = p.node(p.find("conv_pad").unwrap()).unwrap();
        assert!(matches!(pad.op, Op::ZeroPad2d(_)));
        let pc = p.node(p.find("conv").unwrap()).unwrap();
        assert_eq!(
            pc.out_shape, out_shape,
            "partitioning must not change shapes"
        );
    }

    #[test]
    fn pointwise_same_conv_needs_no_pad_node() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        g.add("conv", conv(4, 1, 1, Padding::Same, false), &[x])
            .unwrap();
        let p = decouple(&g).unwrap();
        assert_eq!(p.len(), 2, "1×1/1 same padding is zero — no pad node");
        assert!(is_partitioned(&p));
    }

    #[test]
    fn bias_moves_to_new_node() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_fn(&[3, 3, 3, 4], |i| i as f32 * 0.01);
        let bias = Tensor::from_fn(&[4], |i| i as f32);
        g.add_with_params(
            "conv",
            conv(4, 3, 1, Padding::Valid, true),
            &[x],
            Params {
                kernel: Some(kernel),
                bias: Some(bias.clone()),
                bn: None,
            },
        )
        .unwrap();
        let p = decouple(&g).unwrap();
        let b = p.node(p.find("conv_bias").unwrap()).unwrap();
        assert_eq!(b.params.as_ref().unwrap().bias.as_ref().unwrap(), &bias);
        let c = p.node(p.find("conv").unwrap()).unwrap();
        assert!(c.params.as_ref().unwrap().bias.is_none());
        assert!(matches!(c.op, Op::Conv2d(a) if !a.use_bias));
    }

    #[test]
    fn partitioned_graph_is_numerically_identical() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(7, 7, 2),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_fn(&[3, 3, 2, 3], |i| ((i % 11) as f32 - 5.0) * 0.1);
        let bias = Tensor::from_fn(&[3], |i| 0.7 * i as f32 - 0.4);
        let c = g
            .add_with_params(
                "conv",
                conv(3, 3, 2, Padding::Same, true),
                &[x],
                Params {
                    kernel: Some(kernel),
                    bias: Some(bias),
                    bn: None,
                },
            )
            .unwrap();
        g.add("relu", Op::Activation(cim_ir::ActFn::Relu), &[c])
            .unwrap();

        let p = decouple(&g).unwrap();
        let input = Tensor::from_fn(&[7, 7, 2], |i| ((i * 3 % 19) as f32 - 9.0) * 0.2);
        let o1 = Executor::new(&g).run_single(input.clone()).unwrap();
        let o2 = Executor::new(&p).run_single(input).unwrap();
        let diff = o1[&g.find("relu").unwrap()]
            .max_abs_diff(&o2[&p.find("relu").unwrap()])
            .unwrap();
        assert!(diff < 1e-6);
    }

    #[test]
    fn dense_bias_is_decoupled() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(1, 1, 4),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_fn(&[4, 2], |i| i as f32 * 0.3);
        let bias = Tensor::from_fn(&[2], |i| 1.0 + i as f32);
        g.add_with_params(
            "fc",
            Op::Dense(DenseAttrs {
                units: 2,
                use_bias: true,
            }),
            &[x],
            Params {
                kernel: Some(kernel),
                bias: Some(bias),
                bn: None,
            },
        )
        .unwrap();
        let p = decouple(&g).unwrap();
        assert!(is_partitioned(&p));
        assert!(p.find("fc_bias").is_some());
        let input = Tensor::from_fn(&[1, 1, 4], |i| i as f32);
        let o1 = Executor::new(&g).run_single(input.clone()).unwrap();
        let o2 = Executor::new(&p).run_single(input).unwrap();
        let diff = o1[&g.find("fc").unwrap()]
            .max_abs_diff(&o2[&p.find("fc_bias").unwrap()])
            .unwrap();
        assert!(diff < 1e-6);
    }

    #[test]
    fn idempotent_on_partitioned_graphs() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        g.add("conv", conv(4, 3, 1, Padding::Same, true), &[x])
            .unwrap();
        let once = decouple(&g).unwrap();
        let twice = decouple(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn consumers_follow_the_rewire() {
        // Fan-out from a biased conv: both consumers must read the bias node.
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(8, 8, 3),
                },
                &[],
            )
            .unwrap();
        let c = g
            .add("conv", conv(4, 3, 1, Padding::Valid, true), &[x])
            .unwrap();
        g.add("a", Op::Activation(cim_ir::ActFn::Relu), &[c])
            .unwrap();
        g.add("b", Op::Activation(cim_ir::ActFn::Sigmoid), &[c])
            .unwrap();
        let p = decouple(&g).unwrap();
        let bias_id = p.find("conv_bias").unwrap();
        for name in ["a", "b"] {
            assert_eq!(p.node(p.find(name).unwrap()).unwrap().inputs, vec![bias_id]);
        }
    }
}
