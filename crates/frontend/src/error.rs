//! Error type of the preprocessing passes.

use std::fmt;

use cim_ir::IrError;

/// Errors produced by the frontend passes.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// An underlying graph operation failed.
    Ir(IrError),
    /// Batch-norm folding found inconsistent parameter availability (e.g.
    /// the BN node carries parameters but the producer layer does not).
    FoldParams {
        /// Name of the batch-norm node.
        node: String,
        /// Human-readable description.
        detail: String,
    },
    /// A canonical-form invariant does not hold.
    NotCanonical {
        /// Name of the offending node.
        node: String,
        /// The violated invariant.
        detail: String,
    },
    /// A quantization policy is invalid (e.g. zero bit width).
    BadQuantPolicy {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Ir(e) => write!(f, "{e}"),
            FrontendError::FoldParams { node, detail } => {
                write!(f, "cannot fold batch norm `{node}`: {detail}")
            }
            FrontendError::NotCanonical { node, detail } => {
                write!(f, "node `{node}` violates canonical form: {detail}")
            }
            FrontendError::BadQuantPolicy { detail } => {
                write!(f, "invalid quantization policy: {detail}")
            }
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for FrontendError {
    fn from(e: IrError) -> Self {
        FrontendError::Ir(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FrontendError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FrontendError::from(IrError::EmptyGraph);
        assert_eq!(e.to_string(), "graph contains no nodes");
        assert!(std::error::Error::source(&e).is_some());
        let e = FrontendError::NotCanonical {
            node: "c".into(),
            detail: "has bias".into(),
        };
        assert!(e.to_string().contains("canonical"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrontendError>();
    }
}
