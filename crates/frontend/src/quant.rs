//! Quantization pass (Sec. III-A of the paper, "Quantization").
//!
//! Base layers must be quantized because RRAM cells store conductance with
//! limited resolution — up to 4 bits in current silicon (Wan et al., Nature
//! 2022, \[4\] in the paper). This module provides:
//!
//! * symmetric affine quantization helpers for tensors
//!   ([`quantize_tensor`], [`symmetric_scale`], [`max_quant_error`]);
//! * the [`quantize`] graph pass, which rounds base-layer weights to the
//!   integer grid and inserts [`Op::Quantize`] fake-quantization markers
//!   after every base layer, mirroring TensorFlow's quantization-aware
//!   representation.
//!
//! [`Op::Quantize`]: cim_ir::Op::Quantize

use cim_ir::{Op, QuantAttrs, Tensor};

use crate::error::{FrontendError, Result};
use crate::rewrite::{check_input, Rewriter};

/// Quantization policy for the [`quantize`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantPolicy {
    /// Bit width of the weight grid (the RRAM cell resolution).
    pub weight_bits: u8,
    /// Bit width of the activation grid used for the inserted
    /// fake-quantization markers.
    pub activation_bits: u8,
}

impl QuantPolicy {
    /// The paper's case-study cell resolution: 4-bit weights (Wan et al.)
    /// with 8-bit activations.
    pub const fn rram_4bit() -> Self {
        Self {
            weight_bits: 4,
            activation_bits: 8,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::BadQuantPolicy`] for bit widths outside
    /// `1..=31`.
    pub fn validate(&self) -> Result<()> {
        for (bits, what) in [
            (self.weight_bits, "weight"),
            (self.activation_bits, "activation"),
        ] {
            if bits == 0 || bits > 31 {
                return Err(FrontendError::BadQuantPolicy {
                    detail: format!("{what} bits must be in 1..=31, got {bits}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for QuantPolicy {
    fn default() -> Self {
        Self::rram_4bit()
    }
}

/// Scale of a symmetric signed `bits`-bit grid covering `[-max_abs, max_abs]`.
///
/// Returns 1.0 for an all-zero tensor (`max_abs == 0`) so that quantization
/// is a no-op instead of a division by zero.
pub fn symmetric_scale(max_abs: f32, bits: u8) -> f32 {
    debug_assert!((1..=31).contains(&bits));
    let qmax = ((1i64 << (bits - 1)) - 1) as f32;
    if max_abs == 0.0 || qmax == 0.0 {
        1.0
    } else {
        max_abs / qmax
    }
}

/// Rounds every element of `t` to a symmetric signed `bits`-bit grid,
/// returning the dequantized tensor and the grid parameters.
///
/// # Examples
///
/// ```
/// use cim_frontend::quantize_tensor;
/// use cim_ir::Tensor;
///
/// let t = Tensor::from_vec(&[3], vec![-1.0, 0.26, 1.0]).unwrap();
/// let (q, attrs) = quantize_tensor(&t, 4);
/// assert_eq!(attrs.bits, 4);
/// // Grid step is 1/7; every value is a multiple of it.
/// for v in q.as_slice() {
///     assert!((v / attrs.scale - (v / attrs.scale).round()).abs() < 1e-5);
/// }
/// ```
pub fn quantize_tensor(t: &Tensor, bits: u8) -> (Tensor, QuantAttrs) {
    let max_abs = t.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = symmetric_scale(max_abs, bits);
    let qmin = -(1i64 << (bits - 1)) as f32;
    let qmax = ((1i64 << (bits - 1)) - 1) as f32;
    let mut out = t.clone();
    for v in out.as_mut_slice() {
        *v = (*v / scale).round().clamp(qmin, qmax) * scale;
    }
    (
        out,
        QuantAttrs {
            scale,
            zero_point: 0,
            bits,
        },
    )
}

/// Largest absolute rounding error when quantizing `t` to `bits` bits.
///
/// For a symmetric grid this is bounded by `scale / 2` except for values at
/// the negative clamp boundary.
pub fn max_quant_error(t: &Tensor, bits: u8) -> f32 {
    let (q, _) = quantize_tensor(t, bits);
    t.max_abs_diff(&q).expect("same dims") // cim-lint: allow(panic-unwrap) quantized tensor shares the input dims
}

/// Quantizes all base-layer weights and inserts fake-quantization markers.
///
/// For every base layer (Conv2D / Dense):
///
/// * attached kernel weights are rounded to the `weight_bits` grid in place
///   (the returned graph owns quantized copies — the input is untouched);
/// * an [`Op::Quantize`] node named `<layer>_q` with `activation_bits` is
///   inserted between the layer and its consumers. The marker's scale is
///   derived from the kernel scale when weights are present, and defaults to
///   1.0 on shape-only graphs.
///
/// # Errors
///
/// Returns [`FrontendError::BadQuantPolicy`] for invalid bit widths and
/// propagates graph reconstruction errors.
///
/// [`Op::Quantize`]: cim_ir::Op::Quantize
pub fn quantize(g: &cim_ir::Graph, policy: &QuantPolicy) -> Result<cim_ir::Graph> {
    policy.validate()?;
    check_input(g)?;
    let mut rw = Rewriter::new(g);
    for node in g.iter() {
        if !node.op.is_base() {
            rw.copy(node)?;
            continue;
        }
        let mut params = node.params.clone();
        let mut act_scale = 1.0f32;
        if let Some(p) = params.as_mut() {
            if let Some(k) = p.kernel.as_mut() {
                let (q, attrs) = quantize_tensor(k, policy.weight_bits);
                *k = q;
                act_scale = attrs.scale;
            }
        }
        let inputs = rw.mapped_inputs(node);
        let base_id = rw.emit(
            node.name.clone(),
            node.op.clone(),
            &inputs,
            params,
            node.logical_layer,
        )?;
        let q_id = rw.emit(
            format!("{}_q", node.name),
            Op::Quantize(QuantAttrs {
                scale: act_scale,
                zero_point: 0,
                bits: policy.activation_bits,
            }),
            &[base_id],
            None,
            None,
        )?;
        rw.alias(node.id, q_id);
    }
    rw.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::{Conv2dAttrs, FeatureShape, Graph, Padding, Params};
    use proptest::prelude::*;

    #[test]
    fn scale_covers_range() {
        // 4-bit signed: qmax = 7.
        assert!((symmetric_scale(7.0, 4) - 1.0).abs() < 1e-6);
        assert!((symmetric_scale(1.0, 8) - 1.0 / 127.0).abs() < 1e-9);
        assert_eq!(symmetric_scale(0.0, 4), 1.0);
        assert_eq!(
            symmetric_scale(3.0, 1),
            1.0,
            "1-bit grid has qmax 0 — degenerate"
        );
    }

    #[test]
    fn quantize_tensor_is_idempotent() {
        let t = Tensor::from_fn(&[32], |i| ((i * 13 % 29) as f32 - 14.0) * 0.173);
        let (q1, a1) = quantize_tensor(&t, 4);
        let (q2, a2) = quantize_tensor(&q1, 4);
        assert_eq!(q1, q2);
        assert_eq!(a1.bits, a2.bits);
    }

    #[test]
    fn max_error_bounded_by_half_step() {
        let t = Tensor::from_fn(&[100], |i| ((i * 7 % 41) as f32 - 20.0) * 0.05);
        for bits in [2u8, 4, 8] {
            let max_abs = t.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = symmetric_scale(max_abs, bits);
            let err = max_quant_error(&t, bits);
            // The most negative value clamps to -qmax·scale (symmetric grid
            // does not use -2^(b-1)); allow a full step there.
            assert!(err <= scale + 1e-6, "bits={bits}: err {err} > step {scale}");
        }
    }

    #[test]
    fn pass_inserts_markers_and_quantizes_weights() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        let kernel = Tensor::from_fn(&[3, 3, 2, 4], |i| ((i % 17) as f32 - 8.0) * 0.111);
        let c = g
            .add_with_params(
                "conv",
                Op::Conv2d(Conv2dAttrs {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Valid,
                    use_bias: false,
                }),
                &[x],
                Params::with_kernel(kernel.clone()),
            )
            .unwrap();
        g.add("relu", Op::Activation(cim_ir::ActFn::Relu), &[c])
            .unwrap();

        let q = quantize(&g, &QuantPolicy::rram_4bit()).unwrap();
        let marker = q.node(q.find("conv_q").unwrap()).unwrap();
        assert!(matches!(marker.op, Op::Quantize(a) if a.bits == 8));
        // relu consumes the marker, not the conv.
        let relu = q.node(q.find("relu").unwrap()).unwrap();
        assert_eq!(relu.inputs, vec![marker.id]);
        // Weights are on the 4-bit grid.
        let qc = q.node(q.find("conv").unwrap()).unwrap();
        let qk = qc.params.as_ref().unwrap().kernel.as_ref().unwrap();
        let (expected, _) = quantize_tensor(&kernel, 4);
        assert_eq!(qk, &expected);
        // Original graph untouched.
        let ok = g
            .node(c)
            .unwrap()
            .params
            .as_ref()
            .unwrap()
            .kernel
            .as_ref()
            .unwrap();
        assert_eq!(ok, &kernel);
    }

    #[test]
    fn shape_only_graphs_get_unit_scale_markers() {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(6, 6, 2),
                },
                &[],
            )
            .unwrap();
        g.add(
            "conv",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 4,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[x],
        )
        .unwrap();
        let q = quantize(&g, &QuantPolicy::default()).unwrap();
        let marker = q.node(q.find("conv_q").unwrap()).unwrap();
        assert!(matches!(marker.op, Op::Quantize(a) if a.scale == 1.0));
    }

    #[test]
    fn invalid_policy_rejected() {
        let g = {
            let mut g = Graph::new("t");
            g.add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(2, 2, 1),
                },
                &[],
            )
            .unwrap();
            g
        };
        for bad in [
            QuantPolicy {
                weight_bits: 0,
                activation_bits: 8,
            },
            QuantPolicy {
                weight_bits: 4,
                activation_bits: 32,
            },
        ] {
            assert!(matches!(
                quantize(&g, &bad),
                Err(FrontendError::BadQuantPolicy { .. })
            ));
        }
    }

    proptest! {
        /// Quantized values always lie on the grid and within the clamp range.
        #[test]
        fn prop_quantized_values_on_grid(
            values in proptest::collection::vec(-100.0f32..100.0, 1..64),
            bits in 2u8..9,
        ) {
            let t = Tensor::from_vec(&[values.len()], values).unwrap();
            let (q, attrs) = quantize_tensor(&t, bits);
            let qmax = ((1i64 << (bits - 1)) - 1) as f32;
            for v in q.as_slice() {
                let steps = v / attrs.scale;
                prop_assert!((steps - steps.round()).abs() < 1e-3);
                prop_assert!(steps.round().abs() <= qmax + 0.5);
            }
        }

        /// Round-trip error is bounded by one grid step.
        #[test]
        fn prop_quant_error_bounded(
            values in proptest::collection::vec(-10.0f32..10.0, 1..64),
            bits in 2u8..9,
        ) {
            let t = Tensor::from_vec(&[values.len()], values).unwrap();
            let max_abs = t.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = symmetric_scale(max_abs, bits);
            prop_assert!(max_quant_error(&t, bits) <= scale + 1e-5);
        }
    }
}
