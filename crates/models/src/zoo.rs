//! The benchmark registry — the paper's Table II plus the TinyYOLOv4 case
//! study, with their published reference numbers for validation.

use cim_ir::Graph;
use serde::Serialize;

/// Reference data of one benchmark model (one row of Table I/II).
///
/// Serialize-only: the `&'static str` name cannot be deserialized into a
/// borrowed field, and nothing reads `ModelInfo` back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ModelInfo {
    /// Model name as used in the paper's figures.
    pub name: &'static str,
    /// Input shape `(H, W, C)`.
    pub input: (usize, usize, usize),
    /// Number of base layers (Table II column "Base layers").
    pub base_layers: usize,
    /// Minimum 256×256 PEs to store all weights once (Table I/II).
    pub pe_min_256: usize,
}

impl ModelInfo {
    /// Builds the model graph.
    pub fn build(&self) -> Graph {
        match self.name {
            "TinyYOLOv3" => crate::tiny_yolo_v3(),
            "TinyYOLOv4" => crate::tiny_yolo_v4(),
            "VGG16" => crate::vgg16(),
            "VGG19" => crate::vgg19(),
            "ResNet50" => crate::resnet50(),
            "ResNet101" => crate::resnet101(),
            "ResNet152" => crate::resnet152(),
            other => unreachable!("unknown registry entry {other}"),
        }
    }
}

/// The six benchmarks of the paper's Table II, in table order.
pub fn table2_models() -> Vec<ModelInfo> {
    vec![
        ModelInfo {
            name: "TinyYOLOv3",
            input: (416, 416, 3),
            base_layers: 13,
            pe_min_256: 142,
        },
        ModelInfo {
            name: "VGG16",
            input: (224, 224, 3),
            base_layers: 13,
            pe_min_256: 233,
        },
        ModelInfo {
            name: "VGG19",
            input: (224, 224, 3),
            base_layers: 16,
            pe_min_256: 314,
        },
        ModelInfo {
            name: "ResNet50",
            input: (224, 224, 3),
            base_layers: 53,
            pe_min_256: 390,
        },
        ModelInfo {
            name: "ResNet101",
            input: (224, 224, 3),
            base_layers: 104,
            pe_min_256: 679,
        },
        ModelInfo {
            name: "ResNet152",
            input: (224, 224, 3),
            base_layers: 155,
            pe_min_256: 936,
        },
    ]
}

/// The Sec. V-A case-study model (Table I).
pub fn case_study_model() -> ModelInfo {
    ModelInfo {
        name: "TinyYOLOv4",
        input: (416, 416, 3),
        base_layers: 21,
        pe_min_256: 117,
    }
}

/// Every model in the registry: Table II plus the case study.
pub fn all_models() -> Vec<ModelInfo> {
    let mut v = vec![case_study_model()];
    v.extend(table2_models());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_mapping::{layer_costs, min_pes, MappingOptions};

    /// The headline validation: every registry entry reproduces its
    /// published base-layer count and PE_min exactly.
    #[test]
    fn registry_reproduces_published_numbers() {
        for info in all_models() {
            let g = info.build();
            g.validate().unwrap();
            let input = g.node(g.inputs()[0]).unwrap().out_shape;
            assert_eq!(
                (input.h, input.w, input.c),
                info.input,
                "{} input",
                info.name
            );
            assert_eq!(
                g.base_layers().len(),
                info.base_layers,
                "{} base layers",
                info.name
            );
            let costs = layer_costs(
                &g,
                &CrossbarSpec::wan_nature_2022(),
                &MappingOptions::default(),
            )
            .unwrap();
            assert_eq!(min_pes(&costs), info.pe_min_256, "{} PE_min", info.name);
        }
    }

    #[test]
    fn table2_has_six_models_in_order() {
        let names: Vec<&str> = table2_models().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            [
                "TinyYOLOv3",
                "VGG16",
                "VGG19",
                "ResNet50",
                "ResNet101",
                "ResNet152"
            ]
        );
    }
}
