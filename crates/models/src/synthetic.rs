//! Parametric synthetic models for scalability studies: the zoo models
//! have fixed sizes; these builders scale depth and width freely so the
//! scheduler's asymptotics can be measured.


// cim-lint: allow-file(panic-unwrap) model constructors assert statically-valid shapes; a panic here is a bug in the zoo itself
use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, Graph, Op, Padding, PoolAttrs};

/// Builds a plain chain of `depth` same-padding 3×3 convolutions with
/// `channels` channels on a `side × side` input, with a ReLU between
/// layers and a stride-2 pool every `pool_every` convolutions (0 = never).
///
/// # Panics
///
/// Panics if `depth`, `side` or `channels` is zero, or if pooling would
/// shrink the map below 4×4.
///
/// # Examples
///
/// ```
/// let g = cim_models::conv_chain(12, 64, 32, 4);
/// assert_eq!(g.base_layers().len(), 12);
/// g.validate().unwrap();
/// ```
pub fn conv_chain(depth: usize, side: usize, channels: usize, pool_every: usize) -> Graph {
    assert!(depth > 0 && side > 0 && channels > 0, "degenerate chain");
    let mut g = Graph::new(format!("chain_d{depth}_s{side}_c{channels}"));
    let mut cur = g
        .add(
            "input",
            Op::Input {
                shape: FeatureShape::new(side, side, 3),
            },
            &[],
        )
        .expect("fresh graph accepts input");
    for i in 0..depth {
        cur = g
            .add(
                format!("conv{i}"),
                Op::Conv2d(Conv2dAttrs {
                    out_channels: channels,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: Padding::Same,
                    use_bias: false,
                }),
                &[cur],
            )
            .expect("same conv fits");
        cur = g
            .add(format!("relu{i}"), Op::Activation(ActFn::Relu), &[cur])
            .expect("relu fits");
        if pool_every > 0 && (i + 1) % pool_every == 0 && i + 1 < depth {
            let shape = g.node(cur).expect("cursor").out_shape;
            assert!(shape.h >= 8, "pooling would shrink below 4x4");
            cur = g
                .add(
                    format!("pool{i}"),
                    Op::MaxPool2d(PoolAttrs {
                        window: (2, 2),
                        stride: (2, 2),
                        padding: Padding::Valid,
                    }),
                    &[cur],
                )
                .expect("pool fits");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_mapping::{layer_costs, min_pes, MappingOptions};

    #[test]
    fn chain_structure() {
        let g = conv_chain(8, 32, 16, 3);
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 8);
        // Two pools fired (after conv2 and conv5): 32 → 16 → 8.
        let out = g.outputs();
        assert_eq!(g.node(out[0]).unwrap().out_shape.h, 8);
    }

    #[test]
    fn chain_without_pooling_keeps_extent() {
        let g = conv_chain(4, 16, 8, 0);
        let out = g.outputs();
        assert_eq!(
            g.node(out[0]).unwrap().out_shape,
            FeatureShape::new(16, 16, 8)
        );
    }

    #[test]
    fn pe_cost_scales_with_channels() {
        let xbar = CrossbarSpec::wan_nature_2022();
        let narrow = conv_chain(4, 32, 16, 0);
        let wide = conv_chain(4, 32, 64, 0);
        let a = min_pes(&layer_costs(&narrow, &xbar, &MappingOptions::default()).unwrap());
        let b = min_pes(&layer_costs(&wide, &xbar, &MappingOptions::default()).unwrap());
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_depth_panics() {
        let _ = conv_chain(0, 16, 8, 0);
    }
}
