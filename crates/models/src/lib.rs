//! # cim-models — the benchmark model zoo
//!
//! Programmatic reconstructions of every neural network the CLSA-CIM paper
//! evaluates (Sec. V, Tables I and II):
//!
//! | Model | Input | Base layers | PE_min (256×256) |
//! |-------|-------|-------------|------------------|
//! | [`tiny_yolo_v4`] (case study) | 416×416×3 | 21 | 117 |
//! | [`tiny_yolo_v3`] | 416×416×3 | 13 | 142 |
//! | [`vgg16`] | 224×224×3 | 13 | 233 |
//! | [`vgg19`] | 224×224×3 | 16 | 314 |
//! | [`resnet50`] | 224×224×3 | 53 | 390 |
//! | [`resnet101`] | 224×224×3 | 104 | 679 |
//! | [`resnet152`] | 224×224×3 | 155 | 936 |
//!
//! Every builder is validated against the published base-layer count and
//! `PE_min` in this crate's tests — the closed-form part of the paper's
//! results reproduces *exactly*.
//!
//! The zoo models are shape-only (scheduling never reads weights; see
//! DESIGN.md). The [`toy_cnn`] / [`mlp`] toys optionally attach seeded
//! random parameters for numeric tests, [`fig5_example`] reproduces the
//! paper's worked minimal example, and [`random_cnn`] generates valid
//! random CNNs for fuzzing.
//!
//! # Examples
//!
//! ```
//! use cim_arch::CrossbarSpec;
//! use cim_mapping::{layer_costs, min_pes, MappingOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = cim_models::tiny_yolo_v4();
//! let costs = layer_costs(&g, &CrossbarSpec::wan_nature_2022(), &MappingOptions::default())?;
//! assert_eq!(min_pes(&costs), 117); // Table I
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod random;
pub mod resnet;
pub mod synthetic;
pub mod toys;
pub mod vgg;
pub mod yolo;
pub mod zoo;

pub use random::random_cnn;
pub use resnet::{resnet101, resnet152, resnet50};
pub use synthetic::conv_chain;
pub use toys::{fig5_example, mlp, toy_cnn};
pub use vgg::{vgg16, vgg16_with_classifier, vgg19};
pub use yolo::{tiny_yolo_v3, tiny_yolo_v4};
pub use zoo::{all_models, case_study_model, table2_models, ModelInfo};
