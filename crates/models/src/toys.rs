//! Small models for examples, quick tests, and numeric verification.


// cim-lint: allow-file(panic-unwrap) model constructors assert statically-valid shapes; a panic here is a bug in the zoo itself
use cim_ir::{
    ActFn, Conv2dAttrs, DenseAttrs, FeatureShape, Graph, NodeId, Op, PadSpec, Padding, Params,
    PoolAttrs, Tensor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the paper's Fig. 5 minimal example: two consecutive Conv2D layers
/// joined by a non-base path of bias, activation, pooling, and padding.
///
/// # Examples
///
/// ```
/// let g = cim_models::fig5_example();
/// assert_eq!(g.base_layers().len(), 2);
/// ```
pub fn fig5_example() -> Graph {
    let mut g = Graph::new("fig5");
    let x = g
        .add(
            "input",
            Op::Input {
                shape: FeatureShape::new(10, 10, 3),
            },
            &[],
        )
        .expect("fresh graph accepts input");
    let c1 = g
        .add(
            "conv1",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Valid,
                use_bias: false,
            }),
            &[x],
        )
        .expect("valid conv"); // 8×8
    let b = g.add("bias", Op::Bias, &[c1]).expect("valid bias");
    let a = g
        .add("act", Op::Activation(ActFn::Relu), &[b])
        .expect("valid act");
    let p = g
        .add(
            "pool",
            Op::MaxPool2d(PoolAttrs {
                window: (2, 2),
                stride: (2, 2),
                padding: Padding::Valid,
            }),
            &[a],
        )
        .expect("valid pool"); // 4×4
    let pad = g
        .add("pad", Op::ZeroPad2d(PadSpec::uniform(1)), &[p])
        .expect("valid pad"); // 6×6
    g.add(
        "conv2",
        Op::Conv2d(Conv2dAttrs {
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Valid,
            use_bias: false,
        }),
        &[pad],
    )
    .expect("valid conv"); // 4×4
    g
}

/// Builds a LeNet-style toy CNN (28×28×1 input, two convolutions, two
/// pools, a dense classifier). With `seed`, random parameters are attached
/// so the graph is numerically executable.
///
/// # Examples
///
/// ```
/// use cim_ir::{Executor, Tensor};
///
/// # fn main() -> Result<(), cim_ir::IrError> {
/// let g = cim_models::toy_cnn(Some(42));
/// let out = Executor::new(&g).run_single(Tensor::zeros(&[28, 28, 1]))?;
/// assert!(!out.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn toy_cnn(seed: Option<u64>) -> Graph {
    let mut rng = seed.map(StdRng::seed_from_u64);
    let mut g = Graph::new("toy_cnn");
    let x = g
        .add(
            "input",
            Op::Input {
                shape: FeatureShape::new(28, 28, 1),
            },
            &[],
        )
        .expect("fresh graph accepts input");
    let c1 = add_conv(&mut g, &mut rng, "conv1", x, 1, 8, 3, 1);
    let a1 = g
        .add("relu1", Op::Activation(ActFn::Relu), &[c1])
        .expect("valid");
    let p1 = g
        .add(
            "pool1",
            Op::MaxPool2d(PoolAttrs {
                window: (2, 2),
                stride: (2, 2),
                padding: Padding::Valid,
            }),
            &[a1],
        )
        .expect("valid"); // 13×13
    let c2 = add_conv(&mut g, &mut rng, "conv2", p1, 8, 16, 3, 1); // 11×11
    let a2 = g
        .add("relu2", Op::Activation(ActFn::Relu), &[c2])
        .expect("valid");
    let p2 = g
        .add(
            "pool2",
            Op::MaxPool2d(PoolAttrs {
                window: (2, 2),
                stride: (2, 2),
                padding: Padding::Valid,
            }),
            &[a2],
        )
        .expect("valid"); // 5×5
    let f = g.add("flatten", Op::Flatten, &[p2]).expect("valid"); // 400
    let d = add_dense(&mut g, &mut rng, "fc", f, 400, 10);
    g.add("softmax", Op::Softmax, &[d]).expect("valid");
    g
}

/// Builds a two-layer MLP on a `(1, 1, 64)` input — exercises the dense
/// base-layer path of the stack.
pub fn mlp(seed: Option<u64>) -> Graph {
    let mut rng = seed.map(StdRng::seed_from_u64);
    let mut g = Graph::new("mlp");
    let x = g
        .add(
            "input",
            Op::Input {
                shape: FeatureShape::new(1, 1, 64),
            },
            &[],
        )
        .expect("fresh graph accepts input");
    let d1 = add_dense(&mut g, &mut rng, "fc1", x, 64, 32);
    let a = g
        .add("relu", Op::Activation(ActFn::Relu), &[d1])
        .expect("valid");
    let d2 = add_dense(&mut g, &mut rng, "fc2", a, 32, 10);
    g.add("softmax", Op::Softmax, &[d2]).expect("valid");
    g
}

#[allow(clippy::too_many_arguments)] // internal builder helper
fn add_conv(
    g: &mut Graph,
    rng: &mut Option<StdRng>,
    name: &str,
    from: NodeId,
    ci: usize,
    co: usize,
    k: usize,
    s: usize,
) -> NodeId {
    let op = Op::Conv2d(Conv2dAttrs {
        out_channels: co,
        kernel: (k, k),
        stride: (s, s),
        padding: Padding::Valid,
        use_bias: false,
    });
    match rng {
        Some(rng) => {
            let kernel = Tensor::from_fn(&[k, k, ci, co], |_| rng.random_range(-0.5..0.5));
            g.add_with_params(name, op, &[from], Params::with_kernel(kernel))
        }
        None => g.add(name, op, &[from]),
    }
    .expect("valid conv")
}

fn add_dense(
    g: &mut Graph,
    rng: &mut Option<StdRng>,
    name: &str,
    from: NodeId,
    ci: usize,
    units: usize,
) -> NodeId {
    let op = Op::Dense(DenseAttrs {
        units,
        use_bias: false,
    });
    match rng {
        Some(rng) => {
            let kernel = Tensor::from_fn(&[ci, units], |_| rng.random_range(-0.5..0.5));
            g.add_with_params(name, op, &[from], Params::with_kernel(kernel))
        }
        None => g.add(name, op, &[from]),
    }
    .expect("valid dense")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_ir::Executor;

    #[test]
    fn fig5_shapes_match_paper_structure() {
        let g = fig5_example();
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 2);
        let conv2 = g.node(g.find("conv2").unwrap()).unwrap();
        assert_eq!(conv2.out_shape, FeatureShape::new(4, 4, 8));
    }

    #[test]
    fn toy_cnn_executes_with_params() {
        let g = toy_cnn(Some(7));
        g.validate().unwrap();
        let input = Tensor::from_fn(&[28, 28, 1], |i| (i % 255) as f32 / 255.0);
        let out = Executor::new(&g).run_single(input).unwrap();
        let sm = &out[&g.find("softmax").unwrap()];
        let sum: f32 = sm.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn toy_cnn_without_params_is_shape_only() {
        let g = toy_cnn(None);
        g.validate().unwrap();
        assert_eq!(g.param_count(), 0);
        assert!(Executor::new(&g)
            .run_single(Tensor::zeros(&[28, 28, 1]))
            .is_err());
    }

    #[test]
    fn seeded_models_are_reproducible() {
        assert_eq!(toy_cnn(Some(3)), toy_cnn(Some(3)));
        assert_ne!(toy_cnn(Some(3)), toy_cnn(Some(4)));
    }

    #[test]
    fn mlp_executes() {
        let g = mlp(Some(1));
        let out = Executor::new(&g)
            .run_single(Tensor::from_fn(&[1, 1, 64], |i| i as f32 * 0.01))
            .unwrap();
        assert_eq!(
            out[&g.find("softmax").unwrap()].feature_shape().unwrap(),
            FeatureShape::new(1, 1, 10)
        );
    }
}
