//! Random CNN generator for fuzzing the full pipeline.
//!
//! Produces valid, shape-consistent graphs with convolutions, pooling,
//! activations, branches joined by concat or residual add, and occasional
//! upsampling — the structural vocabulary of the zoo models, in random
//! combinations. Used by workspace property tests to assert that every
//! generated graph schedules validly.


// cim-lint: allow-file(panic-unwrap) model constructors assert statically-valid shapes; a panic here is a bug in the zoo itself
use cim_ir::{
    ActFn, Axis, BatchNormAttrs, Conv2dAttrs, FeatureShape, Graph, Op, Padding, PoolAttrs,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random CNN with roughly `target_base_layers` convolutions.
///
/// The generator is deterministic in `seed`. All graphs validate and all
/// convolutions use `same` padding so arbitrary op sequences compose.
///
/// # Panics
///
/// Panics if `target_base_layers` is zero.
///
/// # Examples
///
/// ```
/// let g = cim_models::random_cnn(1234, 6);
/// g.validate().unwrap();
/// assert!(!g.base_layers().is_empty());
/// ```
pub fn random_cnn(seed: u64, target_base_layers: usize) -> Graph {
    assert!(target_base_layers > 0, "need at least one base layer");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(format!("random_{seed}"));
    let side = [16usize, 24, 32][rng.random_range(0..3usize)];
    let mut cur = g
        .add(
            "input",
            Op::Input {
                shape: FeatureShape::new(side, side, 3),
            },
            &[],
        )
        .expect("fresh graph accepts input");
    let mut convs = 0usize;
    let mut uid = 0usize;
    let name = |prefix: &str, uid: &mut usize| {
        *uid += 1;
        format!("{prefix}_{uid}")
    };

    while convs < target_base_layers {
        let shape = g.node(cur).expect("cursor valid").out_shape;
        let roll = rng.random_range(0..10);
        cur = match roll {
            // Convolution (majority of steps); occasionally TF-style with
            // an inline bias and a trailing batch norm so the frontend
            // passes get fuzzed too.
            0..=4 => {
                convs += 1;
                let oc = [4usize, 8, 16, 32][rng.random_range(0..4usize)];
                let k = [1usize, 3][rng.random_range(0..2usize)];
                let s = if shape.h >= 8 && rng.random_bool(0.25) {
                    2
                } else {
                    1
                };
                let use_bias = rng.random_bool(0.3);
                let conv = g
                    .add(
                        name("conv", &mut uid),
                        Op::Conv2d(Conv2dAttrs {
                            out_channels: oc,
                            kernel: (k, k),
                            stride: (s, s),
                            padding: Padding::Same,
                            use_bias,
                        }),
                        &[cur],
                    )
                    .expect("same-padding conv always fits");
                if rng.random_bool(0.3) {
                    g.add(
                        name("bn", &mut uid),
                        Op::BatchNorm(BatchNormAttrs::default()),
                        &[conv],
                    )
                    .expect("bn is shape-preserving")
                } else {
                    conv
                }
            }
            // Pooling, if there is room.
            5 if shape.h >= 8 => g
                .add(
                    name("pool", &mut uid),
                    Op::MaxPool2d(PoolAttrs {
                        window: (2, 2),
                        stride: (2, 2),
                        padding: Padding::Valid,
                    }),
                    &[cur],
                )
                .expect("pool fits"),
            // Activation.
            6 => g
                .add(name("act", &mut uid), Op::Activation(ActFn::Relu), &[cur])
                .expect("act fits"),
            // Residual branch: cur → two 1-conv paths → add.
            7 if convs + 2 <= target_base_layers => {
                convs += 2;
                let oc = [8usize, 16][rng.random_range(0..2usize)];
                let mk = |g: &mut Graph, from, n: String| {
                    g.add(
                        n,
                        Op::Conv2d(Conv2dAttrs {
                            out_channels: oc,
                            kernel: (3, 3),
                            stride: (1, 1),
                            padding: Padding::Same,
                            use_bias: false,
                        }),
                        &[from],
                    )
                    .expect("same conv fits")
                };
                let a = mk(&mut g, cur, name("bra", &mut uid));
                let b = mk(&mut g, cur, name("brb", &mut uid));
                g.add(name("add", &mut uid), Op::Add, &[a, b])
                    .expect("same shapes")
            }
            // Concat branch along channels.
            8 if convs + 2 <= target_base_layers => {
                convs += 2;
                let mk = |g: &mut Graph, from, oc: usize, n: String| {
                    g.add(
                        n,
                        Op::Conv2d(Conv2dAttrs {
                            out_channels: oc,
                            kernel: (1, 1),
                            stride: (1, 1),
                            padding: Padding::Valid,
                            use_bias: false,
                        }),
                        &[from],
                    )
                    .expect("1x1 conv fits")
                };
                let a = mk(&mut g, cur, 8, name("cata", &mut uid));
                let b = mk(&mut g, cur, 16, name("catb", &mut uid));
                g.add(name("cat", &mut uid), Op::Concat(Axis::C), &[a, b])
                    .expect("concat fits")
            }
            // Upsample, bounded so graphs stay small.
            _ if shape.h <= 16 => g
                .add(
                    name("up", &mut uid),
                    Op::Upsample2d { factor: (2, 2) },
                    &[cur],
                )
                .expect("upsample fits"),
            _ => g
                .add(
                    name("act", &mut uid),
                    Op::Activation(ActFn::LeakyRelu(0.1)),
                    &[cur],
                )
                .expect("act fits"),
        };
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_mapping::{layer_costs, MappingOptions};
    use proptest::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_cnn(9, 5), random_cnn(9, 5));
        assert_ne!(random_cnn(9, 5), random_cnn(10, 5));
    }

    #[test]
    fn reaches_requested_base_layers() {
        for seed in 0..20 {
            let g = random_cnn(seed, 6);
            g.validate().unwrap();
            let n = g.base_layers().len();
            assert!((6..=7).contains(&n), "seed {seed}: {n} base layers");
        }
    }

    proptest! {
        /// Every random graph validates, canonicalizes, and has computable
        /// layer costs.
        #[test]
        fn prop_random_graphs_are_well_formed(seed in 0u64..500, n in 1usize..10) {
            let g = random_cnn(seed, n);
            g.validate().unwrap();
            let canon = cim_frontend::canonicalize(&g, &cim_frontend::CanonOptions::default())
                .unwrap();
            let costs = layer_costs(
                canon.graph(),
                &CrossbarSpec::wan_nature_2022(),
                &MappingOptions::default(),
            ).unwrap();
            prop_assert!(!costs.is_empty());
        }
    }
}
