//! TinyYOLOv3 and TinyYOLOv4 — the paper's object-detection benchmarks.
//!
//! Both networks are reconstructed from the darknet configuration files
//! (`yolov3-tiny.cfg`, `yolov4-tiny.cfg`) at 416×416×3 input resolution.
//! Conv layers are named `conv2d`, `conv2d_1`, … in definition order,
//! matching the Keras/TensorFlow naming used in the paper's Table I.
//!
//! TinyYOLOv4's reconstruction reproduces every explicit row of Table I and
//! `PE_min = 117`; TinyYOLOv3 reproduces Table II (13 base layers, 142
//! PEs). Note the paper's prose says TinyYOLOv4 has "18 Conv2D layers",
//! but its own Table I lists `conv2d_20` (i.e. at least 21 layers) and
//! `PE_min = 117` is only consistent with the full 21-conv
//! CSPDarknet53-tiny — see EXPERIMENTS.md.


// cim-lint: allow-file(panic-unwrap) model constructors assert statically-valid shapes; a panic here is a bug in the zoo itself
use cim_ir::{
    ActFn, Axis, Conv2dAttrs, FeatureShape, Graph, NodeId, Op, Padding, PoolAttrs, SliceAttrs,
};

/// Builder state shared by the YOLO constructors.
struct Net {
    g: Graph,
    convs: usize,
}

impl Net {
    fn new(name: &str) -> Self {
        Self {
            g: Graph::new(name),
            convs: 0,
        }
    }

    fn input(&mut self, h: usize, w: usize, c: usize) -> NodeId {
        self.g
            .add(
                "input",
                Op::Input {
                    shape: FeatureShape::new(h, w, c),
                },
                &[],
            )
            .expect("fresh graph accepts input")
    }

    /// Conv (darknet-style: same padding) + leaky-ReLU activation.
    fn conv(&mut self, from: NodeId, oc: usize, k: usize, s: usize) -> NodeId {
        let name = if self.convs == 0 {
            "conv2d".to_string()
        } else {
            format!("conv2d_{}", self.convs)
        };
        self.convs += 1;
        let c = self
            .g
            .add(
                &name,
                Op::Conv2d(Conv2dAttrs {
                    out_channels: oc,
                    kernel: (k, k),
                    stride: (s, s),
                    padding: Padding::Same,
                    use_bias: false,
                }),
                &[from],
            )
            .expect("valid conv attrs");
        self.g
            .add(
                format!("{name}_act"),
                Op::Activation(ActFn::LeakyRelu(0.1)),
                &[c],
            )
            .expect("activation is shape-preserving")
    }

    fn maxpool(&mut self, from: NodeId, k: usize, s: usize) -> NodeId {
        let name = format!("pool_{}", self.g.len());
        self.g
            .add(
                name,
                Op::MaxPool2d(PoolAttrs {
                    window: (k, k),
                    stride: (s, s),
                    padding: Padding::Same,
                }),
                &[from],
            )
            .expect("valid pool attrs")
    }

    /// darknet `route groups=2 group_id=1`: the second channel half.
    fn split_high(&mut self, from: NodeId) -> NodeId {
        let shape = self.g.node(from).expect("node exists").out_shape;
        let half = shape.c / 2;
        let name = format!("split_{}", self.g.len());
        self.g
            .add(
                name,
                Op::Slice(SliceAttrs {
                    offset: (0, 0, half),
                    size: (shape.h, shape.w, half),
                }),
                &[from],
            )
            .expect("valid split")
    }

    fn concat(&mut self, parts: &[NodeId]) -> NodeId {
        let name = format!("concat_{}", self.g.len());
        self.g
            .add(name, Op::Concat(Axis::C), parts)
            .expect("valid concat")
    }

    fn upsample(&mut self, from: NodeId) -> NodeId {
        let name = format!("up_{}", self.g.len());
        self.g
            .add(name, Op::Upsample2d { factor: (2, 2) }, &[from])
            .expect("valid upsample")
    }
}

/// Builds TinyYOLOv4 (CSPDarknet53-tiny backbone, 21 Conv2D layers,
/// 416×416×3 input) — the paper's Sec. V-A case-study network.
///
/// # Examples
///
/// ```
/// let g = cim_models::tiny_yolo_v4();
/// assert_eq!(g.base_layers().len(), 21);
/// g.validate().unwrap();
/// ```
pub fn tiny_yolo_v4() -> Graph {
    let mut n = Net::new("tiny_yolo_v4");
    let x = n.input(416, 416, 3);

    // Stem.
    let c0 = n.conv(x, 32, 3, 2); // conv2d    -> 208
    let c1 = n.conv(c0, 64, 3, 2); // conv2d_1 -> 104
    let c2 = n.conv(c1, 64, 3, 1); // conv2d_2  @ 104

    // CSP block 1 @104.
    let s1 = n.split_high(c2); // 32 ch
    let c3 = n.conv(s1, 32, 3, 1); // conv2d_3
    let c4 = n.conv(c3, 32, 3, 1); // conv2d_4
    let cat1 = n.concat(&[c4, c3]); // 64
    let c5 = n.conv(cat1, 64, 1, 1); // conv2d_5
    let cat1b = n.concat(&[c2, c5]); // 128
    let p1 = n.maxpool(cat1b, 2, 2); // -> 52

    // CSP block 2 @52.
    let c6 = n.conv(p1, 128, 3, 1); // conv2d_6
    let s2 = n.split_high(c6); // 64
    let c7 = n.conv(s2, 64, 3, 1); // conv2d_7
    let c8 = n.conv(c7, 64, 3, 1); // conv2d_8
    let cat2 = n.concat(&[c8, c7]); // 128
    let c9 = n.conv(cat2, 128, 1, 1); // conv2d_9
    let cat2b = n.concat(&[c6, c9]); // 256
    let p2 = n.maxpool(cat2b, 2, 2); // -> 26

    // CSP block 3 @26.
    let c10 = n.conv(p2, 256, 3, 1); // conv2d_10
    let s3 = n.split_high(c10); // 128
    let c11 = n.conv(s3, 128, 3, 1); // conv2d_11
    let c12 = n.conv(c11, 128, 3, 1); // conv2d_12
    let cat3 = n.concat(&[c12, c11]); // 256
    let c13 = n.conv(cat3, 256, 1, 1); // conv2d_13 (feeds head 2)
    let cat3b = n.concat(&[c10, c13]); // 512
    let p3 = n.maxpool(cat3b, 2, 2); // -> 13

    // Neck.
    let c14 = n.conv(p3, 512, 3, 1); // conv2d_14
    let c15 = n.conv(c14, 256, 1, 1); // conv2d_15

    // Head 1 (13×13).
    let c16 = n.conv(c15, 512, 3, 1); // conv2d_16 — Table I row
    let _c17 = n.conv(c16, 255, 1, 1); // conv2d_17 — Table I row

    // Head 2 (26×26).
    let c18 = n.conv(c15, 128, 1, 1); // conv2d_18
    let up = n.upsample(c18); // -> 26
    let cat4 = n.concat(&[up, c13]); // 384
    let c19 = n.conv(cat4, 256, 3, 1); // conv2d_19
    let _c20 = n.conv(c19, 255, 1, 1); // conv2d_20 — Table I row

    n.g
}

/// Builds TinyYOLOv3 (13 Conv2D layers, 416×416×3 input) — the benchmark
/// with the paper's best speedup (29.2×) and utilization (20.1 %).
///
/// # Examples
///
/// ```
/// let g = cim_models::tiny_yolo_v3();
/// assert_eq!(g.base_layers().len(), 13);
/// g.validate().unwrap();
/// ```
pub fn tiny_yolo_v3() -> Graph {
    let mut n = Net::new("tiny_yolo_v3");
    let x = n.input(416, 416, 3);

    let c0 = n.conv(x, 16, 3, 1); // conv2d @416
    let p0 = n.maxpool(c0, 2, 2); // 208
    let c1 = n.conv(p0, 32, 3, 1); // conv2d_1
    let p1 = n.maxpool(c1, 2, 2); // 104
    let c2 = n.conv(p1, 64, 3, 1); // conv2d_2
    let p2 = n.maxpool(c2, 2, 2); // 52
    let c3 = n.conv(p2, 128, 3, 1); // conv2d_3
    let p3 = n.maxpool(c3, 2, 2); // 26
    let c4 = n.conv(p3, 256, 3, 1); // conv2d_4 (feeds head 2)
    let p4 = n.maxpool(c4, 2, 2); // 13
    let c5 = n.conv(p4, 512, 3, 1); // conv2d_5
    let p5 = n.maxpool(c5, 2, 1); // stride-1 pool keeps 13
    let c6 = n.conv(p5, 1024, 3, 1); // conv2d_6
    let c7 = n.conv(c6, 256, 1, 1); // conv2d_7

    // Head 1 (13×13).
    let c8 = n.conv(c7, 512, 3, 1); // conv2d_8
    let _c9 = n.conv(c8, 255, 1, 1); // conv2d_9

    // Head 2 (26×26).
    let c10 = n.conv(c7, 128, 1, 1); // conv2d_10
    let up = n.upsample(c10); // 26
    let cat = n.concat(&[up, c4]); // 384
    let c11 = n.conv(cat, 256, 3, 1); // conv2d_11
    let _c12 = n.conv(c11, 255, 1, 1); // conv2d_12

    n.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_mapping::{layer_costs, min_pes, MappingOptions};

    fn costs(g: &Graph) -> Vec<cim_mapping::LayerCost> {
        layer_costs(
            g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn tiny_yolo_v4_matches_table1_pe_min() {
        let g = tiny_yolo_v4();
        g.validate().unwrap();
        let c = costs(&g);
        assert_eq!(c.len(), 21);
        assert_eq!(min_pes(&c), 117, "Table I: PE_min of TinyYOLOv4");
    }

    #[test]
    fn tiny_yolo_v4_explicit_table1_rows() {
        let g = tiny_yolo_v4();
        let c = costs(&g);
        let by_name = |n: &str| c.iter().find(|x| x.name == n).unwrap();
        // (name, OFM (H, W, C), #PE, cycles)
        let rows = [
            ("conv2d", (208, 208, 32), 1, 43_264u64),
            ("conv2d_1", (104, 104, 64), 2, 10_816),
            ("conv2d_2", (104, 104, 64), 3, 10_816),
            ("conv2d_16", (13, 13, 512), 18, 169),
            ("conv2d_20", (26, 26, 255), 1, 676),
            ("conv2d_17", (13, 13, 255), 2, 169),
        ];
        for (name, ofm, pes, cycles) in rows {
            let r = by_name(name);
            assert_eq!((r.ofm.h, r.ofm.w, r.ofm.c), ofm, "{name} OFM");
            assert_eq!(r.pes, pes, "{name} #PE");
            assert_eq!(r.t_init, cycles, "{name} t_init");
        }
    }

    #[test]
    fn tiny_yolo_v4_padded_ifm_shapes_after_partitioning() {
        // Table I lists the *padded* IFM shapes, which appear once the
        // frontend decouples padding.
        let g = cim_frontend::decouple(&tiny_yolo_v4()).unwrap();
        let c = costs(&g);
        let by_name = |n: &str| c.iter().find(|x| x.name == n).unwrap();
        let rows = [
            ("conv2d", (417, 417, 3)),
            ("conv2d_1", (209, 209, 32)),
            ("conv2d_2", (106, 106, 64)),
            ("conv2d_16", (15, 15, 256)),
            ("conv2d_20", (26, 26, 256)),
            ("conv2d_17", (13, 13, 512)),
        ];
        for (name, ifm) in rows {
            let r = by_name(name);
            assert_eq!((r.ifm.h, r.ifm.w, r.ifm.c), ifm, "{name} padded IFM");
        }
        assert_eq!(min_pes(&c), 117, "partitioning must not change PE_min");
    }

    #[test]
    fn tiny_yolo_v3_matches_table2() {
        let g = tiny_yolo_v3();
        g.validate().unwrap();
        let c = costs(&g);
        assert_eq!(c.len(), 13, "Table II: base layers");
        assert_eq!(min_pes(&c), 142, "Table II: min required PEs");
        // Input shape.
        let input = g.node(g.inputs()[0]).unwrap();
        assert_eq!(input.out_shape, FeatureShape::new(416, 416, 3));
    }

    #[test]
    fn tiny_yolo_v3_head_shapes() {
        let g = tiny_yolo_v3();
        let outs = g.outputs();
        let shapes: Vec<_> = outs.iter().map(|&o| g.node(o).unwrap().out_shape).collect();
        assert!(shapes.contains(&FeatureShape::new(13, 13, 255)));
        assert!(shapes.contains(&FeatureShape::new(26, 26, 255)));
    }

    #[test]
    fn tiny_yolo_v4_head_shapes() {
        let g = tiny_yolo_v4();
        let outs = g.outputs();
        let shapes: Vec<_> = outs.iter().map(|&o| g.node(o).unwrap().out_shape).collect();
        assert!(shapes.contains(&FeatureShape::new(13, 13, 255)));
        assert!(shapes.contains(&FeatureShape::new(26, 26, 255)));
    }

    #[test]
    fn yolo_models_canonicalize() {
        for g in [tiny_yolo_v3(), tiny_yolo_v4()] {
            let canon =
                cim_frontend::canonicalize(&g, &cim_frontend::CanonOptions::default()).unwrap();
            let c = costs(canon.graph());
            assert_eq!(min_pes(&c), costs(&g).iter().map(|x| x.pes).sum::<usize>());
        }
    }
}
