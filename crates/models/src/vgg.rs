//! VGG16 and VGG19 — the paper's sequential benchmarks (Table II).
//!
//! Convolutional bodies at 224×224×3; the fully-connected classifier heads
//! are omitted, matching Table II which counts 13 (VGG16) / 16 (VGG19) base
//! layers — the convolution counts of the respective bodies.


// cim-lint: allow-file(panic-unwrap) model constructors assert statically-valid shapes; a panic here is a bug in the zoo itself
use cim_ir::{ActFn, Conv2dAttrs, FeatureShape, Graph, NodeId, Op, Padding, PoolAttrs};

fn conv(g: &mut Graph, from: NodeId, idx: &mut usize, oc: usize) -> NodeId {
    let name = if *idx == 0 {
        "conv2d".to_string()
    } else {
        format!("conv2d_{idx}")
    };
    *idx += 1;
    let c = g
        .add(
            &name,
            Op::Conv2d(Conv2dAttrs {
                out_channels: oc,
                kernel: (3, 3),
                stride: (1, 1),
                padding: Padding::Same,
                use_bias: false,
            }),
            &[from],
        )
        .expect("valid conv");
    g.add(format!("{name}_act"), Op::Activation(ActFn::Relu), &[c])
        .expect("valid activation")
}

fn pool(g: &mut Graph, from: NodeId) -> NodeId {
    let name = format!("pool_{}", g.len());
    g.add(
        name,
        Op::MaxPool2d(PoolAttrs {
            window: (2, 2),
            stride: (2, 2),
            padding: Padding::Valid,
        }),
        &[from],
    )
    .expect("valid pool")
}

fn vgg(name: &str, convs_per_block: &[usize]) -> Graph {
    let mut g = Graph::new(name);
    let mut x = g
        .add(
            "input",
            Op::Input {
                shape: FeatureShape::new(224, 224, 3),
            },
            &[],
        )
        .expect("fresh graph accepts input");
    let widths = [64usize, 128, 256, 512, 512];
    let mut idx = 0usize;
    for (block, &n) in convs_per_block.iter().enumerate() {
        for _ in 0..n {
            x = conv(&mut g, x, &mut idx, widths[block]);
        }
        x = pool(&mut g, x);
    }
    g
}

/// Builds the VGG16 convolutional body (13 Conv2D layers, 224×224×3).
///
/// # Examples
///
/// ```
/// let g = cim_models::vgg16();
/// assert_eq!(g.base_layers().len(), 13);
/// ```
pub fn vgg16() -> Graph {
    vgg("vgg16", &[2, 2, 3, 3, 3])
}

/// Builds the VGG19 convolutional body (16 Conv2D layers, 224×224×3).
///
/// # Examples
///
/// ```
/// let g = cim_models::vgg19();
/// assert_eq!(g.base_layers().len(), 16);
/// ```
pub fn vgg19() -> Graph {
    vgg("vgg19", &[2, 2, 4, 4, 4])
}

/// Builds VGG16 *with* its fully-connected classifier head
/// (flatten → 4096 → 4096 → 1000 with ReLUs and softmax).
///
/// Not part of the paper's Table II (which counts convolutions only), but
/// exercises large dense layers through the whole stack: the first FC's
/// 25088×4096 kernel matrix alone needs 98×16 = 1568 crossbars.
///
/// # Examples
///
/// ```
/// let g = cim_models::vgg16_with_classifier();
/// assert_eq!(g.base_layers().len(), 16, "13 convs + 3 dense");
/// ```
pub fn vgg16_with_classifier() -> Graph {
    let mut g = vgg("vgg16_cls", &[2, 2, 3, 3, 3]);
    let tail = g.outputs()[0];
    let f = g
        .add("flatten", Op::Flatten, &[tail])
        .expect("flatten fits");
    let mut x = f;
    for (i, units) in [4096usize, 4096].into_iter().enumerate() {
        let d = g
            .add(
                format!("fc{}", i + 1),
                Op::Dense(cim_ir::DenseAttrs {
                    units,
                    use_bias: false,
                }),
                &[x],
            )
            .expect("dense fits");
        x = g
            .add(
                format!("fc{}_act", i + 1),
                Op::Activation(ActFn::Relu),
                &[d],
            )
            .expect("relu fits");
    }
    let logits = g
        .add(
            "fc3",
            Op::Dense(cim_ir::DenseAttrs {
                units: 1000,
                use_bias: false,
            }),
            &[x],
        )
        .expect("dense fits");
    g.add("softmax", Op::Softmax, &[logits])
        .expect("softmax fits");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_mapping::{layer_costs, min_pes, MappingOptions};

    fn pe_min(g: &Graph) -> usize {
        min_pes(
            &layer_costs(
                g,
                &CrossbarSpec::wan_nature_2022(),
                &MappingOptions::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn vgg16_matches_table2() {
        let g = vgg16();
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 13);
        assert_eq!(pe_min(&g), 233, "Table II: VGG16 min required PEs");
    }

    #[test]
    fn vgg19_matches_table2() {
        let g = vgg19();
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 16);
        assert_eq!(pe_min(&g), 314, "Table II: VGG19 min required PEs");
    }

    #[test]
    fn vgg_is_sequential() {
        // Every non-input node has exactly one input; every node at most
        // one consumer — the models the paper calls "sequential".
        let g = vgg16();
        let consumers = g.consumers();
        for n in g.iter() {
            assert!(n.inputs.len() <= 1);
            assert!(consumers[n.id.index()].len() <= 1);
        }
    }

    #[test]
    fn vgg16_final_shape() {
        let g = vgg16();
        let out = g.outputs();
        assert_eq!(out.len(), 1);
        assert_eq!(
            g.node(out[0]).unwrap().out_shape,
            FeatureShape::new(7, 7, 512),
            "224 / 2^5 = 7 after five pools"
        );
    }

    #[test]
    fn classifier_head_dense_costs() {
        let g = vgg16_with_classifier();
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 16);
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        let by_name = |n: &str| costs.iter().find(|c| c.name == n).unwrap();
        // fc1: 25088 rows → 98 vertical, 4096 cols → 16 horizontal.
        assert_eq!((by_name("fc1").pe_v, by_name("fc1").pe_h), (98, 16));
        // fc2: 4096 → 16 vertical × 16 horizontal.
        assert_eq!(by_name("fc2").pes, 256);
        // fc3: 4096 → 16 vertical, 1000 → 4 horizontal.
        assert_eq!(by_name("fc3").pes, 64);
        // Conv body unchanged + dense head.
        assert_eq!(min_pes(&costs), 233 + 1568 + 256 + 64);
        // Dense layers take a single cycle each.
        assert_eq!(by_name("fc1").t_init, 1);
    }

    #[test]
    fn classifier_head_schedules_end_to_end() {
        use cim_arch::Architecture;
        use clsa_core::{run, RunConfig};
        let g = vgg16_with_classifier();
        let arch = Architecture::paper_case_study(233 + 1568 + 256 + 64).unwrap();
        let lbl = run(&g, &RunConfig::baseline(arch.clone())).unwrap();
        let xl = run(&g, &RunConfig::baseline(arch).with_cross_layer()).unwrap();
        // The three dense layers add 3 cycles to the baseline.
        assert_eq!(lbl.makespan(), 137_788 + 3);
        assert!(xl.makespan() < lbl.makespan());
    }

    #[test]
    fn vgg_layer_latencies_decrease_with_depth() {
        // The early layers dominate t_init (the paper's motivation for
        // duplicating them): first conv = 224² cycles, last = 14².
        let g = vgg16();
        let costs = layer_costs(
            &g,
            &CrossbarSpec::wan_nature_2022(),
            &MappingOptions::default(),
        )
        .unwrap();
        assert_eq!(costs.first().unwrap().t_init, 224 * 224);
        assert_eq!(costs.last().unwrap().t_init, 14 * 14);
        assert!(costs.first().unwrap().pes < costs.last().unwrap().pes);
    }
}
