//! ResNet-50/101/152 — the paper's deep non-sequential benchmarks
//! (Table II).
//!
//! Standard bottleneck architecture (v1.5 stride placement: the stride-2
//! convolution is the 3×3 of each stage's first block) at 224×224×3, with
//! batch normalization after every convolution and ReLU activations. The
//! global-average-pool / fully-connected classifier head is omitted,
//! matching Table II's base-layer counts (53 / 104 / 155 — convolutions
//! only).


// cim-lint: allow-file(panic-unwrap) model constructors assert statically-valid shapes; a panic here is a bug in the zoo itself
use cim_ir::{
    ActFn, BatchNormAttrs, Conv2dAttrs, FeatureShape, Graph, NodeId, Op, Padding, PoolAttrs,
};

struct Net {
    g: Graph,
    convs: usize,
}

impl Net {
    /// conv → bn, returning the BN output. ReLU is applied by the caller
    /// (block outputs apply it after the residual add).
    fn conv_bn(&mut self, from: NodeId, oc: usize, k: usize, s: usize, tag: &str) -> NodeId {
        self.convs += 1;
        let name = format!("{tag}_conv{}", self.convs);
        let c = self
            .g
            .add(
                &name,
                Op::Conv2d(Conv2dAttrs {
                    out_channels: oc,
                    kernel: (k, k),
                    stride: (s, s),
                    padding: Padding::Same,
                    use_bias: false,
                }),
                &[from],
            )
            .expect("valid conv");
        self.g
            .add(
                format!("{name}_bn"),
                Op::BatchNorm(BatchNormAttrs::default()),
                &[c],
            )
            .expect("valid bn")
    }

    fn relu(&mut self, from: NodeId, name: String) -> NodeId {
        self.g
            .add(name, Op::Activation(ActFn::Relu), &[from])
            .expect("valid activation")
    }

    /// A bottleneck block: 1×1 → 3×3(/s) → 1×1·4, with an optional
    /// projection shortcut (1×1/s) on the skip path.
    fn bottleneck(
        &mut self,
        from: NodeId,
        width: usize,
        stride: usize,
        project: bool,
        tag: &str,
    ) -> NodeId {
        let a = self.conv_bn(from, width, 1, 1, tag);
        let a = self.relu(a, format!("{tag}_relu_a"));
        let b = self.conv_bn(a, width, 3, stride, tag);
        let b = self.relu(b, format!("{tag}_relu_b"));
        let c = self.conv_bn(b, width * 4, 1, 1, tag);
        let shortcut = if project {
            self.conv_bn(from, width * 4, 1, stride, &format!("{tag}_proj"))
        } else {
            from
        };
        let add = self
            .g
            .add(format!("{tag}_add"), Op::Add, &[shortcut, c])
            .expect("matching residual shapes");
        self.relu(add, format!("{tag}_relu_out"))
    }
}

fn resnet(name: &str, blocks: [usize; 4]) -> Graph {
    let mut n = Net {
        g: Graph::new(name),
        convs: 0,
    };
    let x =
        n.g.add(
            "input",
            Op::Input {
                shape: FeatureShape::new(224, 224, 3),
            },
            &[],
        )
        .expect("fresh graph accepts input");
    let stem = n.conv_bn(x, 64, 7, 2, "stem"); // 112×112
    let stem = n.relu(stem, "stem_relu".into());
    let mut t =
        n.g.add(
            "stem_pool",
            Op::MaxPool2d(PoolAttrs {
                window: (3, 3),
                stride: (2, 2),
                padding: Padding::Same,
            }),
            &[stem],
        )
        .expect("valid pool"); // 56×56

    let widths = [64usize, 128, 256, 512];
    for (stage, &num_blocks) in blocks.iter().enumerate() {
        for block in 0..num_blocks {
            let first = block == 0;
            // Stage 0 keeps 56×56 (stride 1); later stages halve on entry.
            let stride = if first && stage > 0 { 2 } else { 1 };
            t = n.bottleneck(
                t,
                widths[stage],
                stride,
                first,
                &format!("s{}b{}", stage + 2, block),
            );
        }
    }
    n.g
}

/// Builds ResNet-50 (53 Conv2D layers, 224×224×3).
///
/// # Examples
///
/// ```
/// let g = cim_models::resnet50();
/// assert_eq!(g.base_layers().len(), 53);
/// ```
pub fn resnet50() -> Graph {
    resnet("resnet50", [3, 4, 6, 3])
}

/// Builds ResNet-101 (104 Conv2D layers, 224×224×3).
///
/// # Examples
///
/// ```
/// let g = cim_models::resnet101();
/// assert_eq!(g.base_layers().len(), 104);
/// ```
pub fn resnet101() -> Graph {
    resnet("resnet101", [3, 4, 23, 3])
}

/// Builds ResNet-152 (155 Conv2D layers, 224×224×3).
///
/// # Examples
///
/// ```
/// let g = cim_models::resnet152();
/// assert_eq!(g.base_layers().len(), 155);
/// ```
pub fn resnet152() -> Graph {
    resnet("resnet152", [3, 8, 36, 3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::CrossbarSpec;
    use cim_mapping::{layer_costs, min_pes, MappingOptions};

    fn pe_min(g: &Graph) -> usize {
        min_pes(
            &layer_costs(
                g,
                &CrossbarSpec::wan_nature_2022(),
                &MappingOptions::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn resnet50_matches_table2() {
        let g = resnet50();
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 53);
        assert_eq!(pe_min(&g), 390, "Table II: ResNet50 min required PEs");
    }

    #[test]
    fn resnet101_matches_table2() {
        let g = resnet101();
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 104);
        assert_eq!(pe_min(&g), 679, "Table II: ResNet101 min required PEs");
    }

    #[test]
    fn resnet152_matches_table2() {
        let g = resnet152();
        g.validate().unwrap();
        assert_eq!(g.base_layers().len(), 155);
        assert_eq!(pe_min(&g), 936, "Table II: ResNet152 min required PEs");
    }

    #[test]
    fn resnet50_stage_shapes() {
        let g = resnet50();
        let out = g.outputs();
        assert_eq!(out.len(), 1);
        assert_eq!(
            g.node(out[0]).unwrap().out_shape,
            FeatureShape::new(7, 7, 2048),
            "224 → 112 (stem) → 56 (pool) → 28 → 14 → 7"
        );
    }

    #[test]
    fn resnet_is_non_sequential() {
        // Residual adds give nodes with two inputs.
        let g = resnet50();
        assert!(g.iter().any(|n| matches!(n.op, Op::Add)));
        assert!(g.iter().any(|n| n.inputs.len() == 2));
    }

    #[test]
    fn bn_folding_removes_all_batch_norms() {
        let g = resnet50();
        let folded = cim_frontend::fold_batch_norm(&g).unwrap();
        assert!(!cim_frontend::bn::has_batch_norm(&folded));
        assert_eq!(pe_min(&folded), 390, "folding must not change PE_min");
    }

    #[test]
    fn canonicalization_preserves_costs() {
        let g = resnet50();
        let canon = cim_frontend::canonicalize(&g, &cim_frontend::CanonOptions::default()).unwrap();
        assert_eq!(pe_min(canon.graph()), 390);
        assert_eq!(canon.graph().base_layers().len(), 53);
    }
}
