//! Stable fingerprints for cache keys.
//!
//! A fingerprint is a 64-bit FNV-1a hash over a value's canonical JSON
//! serialization. Every type on the sweep hot path (`Graph`,
//! `Architecture`, the `RunConfig` components) serializes from plain
//! `Vec`-backed data in insertion order, so the serialization — and with
//! it the fingerprint — is deterministic across runs and thread
//! interleavings. JSON as the hashing substrate trades a few microseconds
//! for robustness: any `Serialize` type gets a fingerprint with zero
//! per-type code, and two values collide only if they serialize
//! identically (or in the astronomically unlikely 64-bit hash collision).
//!
//! Hashing **streams**: the serializer writes its output chunks straight
//! into a rolling [`FnvWriter`] sink (`serde_json::to_fmt_writer`), so the
//! JSON *text* is never materialized — for a multi-hundred-layer graph
//! that is a multi-hundred-kilobyte `String` (plus the copy through it)
//! saved per fingerprint. Note the vendored serde is `Value`-tree based,
//! so the intermediate `Value` tree is still built; eliminating it too
//! would need an event-driven serializer in the stand-in. The byte stream
//! equals the `to_string` output, so the produced `u64`s — and with them
//! every key in an on-disk [`ResultStore`](super::store::ResultStore) —
//! are unchanged (pinned by this module's tests).

use std::fmt;

use clsa_core::RunConfig;
use serde::Serialize;

/// The FNV-1a offset basis (the hash of the empty stream).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`fmt::Write`] sink folding every incoming chunk into a rolling
/// 64-bit FNV-1a state — the streaming substrate of [`fingerprint`].
#[derive(Debug, Clone, Copy)]
pub struct FnvWriter(u64);

impl FnvWriter {
    /// A writer in the initial (offset-basis) state.
    pub fn new() -> Self {
        FnvWriter(FNV_OFFSET)
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        self.0 = hash;
    }
}

impl Default for FnvWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// 64-bit FNV-1a over a byte slice (the one-shot form; [`fingerprint`]
/// streams instead).
#[cfg(test)]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut w = FnvWriter::new();
    w.write_bytes(bytes);
    w.finish()
}

/// Fingerprints any serializable value by streaming its canonical JSON
/// serialization through a [`FnvWriter`] — no intermediate `String`.
///
/// # Examples
///
/// ```
/// use cim_bench::runner::fingerprint;
///
/// let a = fingerprint(&vec![1u32, 2, 3]);
/// assert_eq!(a, fingerprint(&vec![1u32, 2, 3]));
/// assert_ne!(a, fingerprint(&vec![3u32, 2, 1]));
/// ```
pub fn fingerprint<T: Serialize>(value: &T) -> u64 {
    let mut sink = FnvWriter::new();
    serde_json::to_fmt_writer(&mut sink, value).expect("fingerprinted types serialize infallibly"); // cim-lint: allow(panic-unwrap) serialization to a fmt sink is infallible
    sink.finish()
}

/// Cache key of one job: `(model, architecture, strategy)` fingerprints.
///
/// `strategy` covers the full `RunConfig` minus the architecture; the
/// schedule-level cache uses all three fields while the stage-level cache
/// replaces `strategy` with the mapping-side prefix (see
/// [`mapping_fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Fingerprint of the (canonicalized) model graph.
    pub model: u64,
    /// Fingerprint of the target architecture.
    pub arch: u64,
    /// Fingerprint of the evaluation strategy.
    pub strategy: u64,
}

impl CacheKey {
    /// Builds the schedule-level key for `config` on a model fingerprint.
    pub fn schedule(model: u64, config: &RunConfig) -> Self {
        CacheKey {
            model,
            arch: fingerprint(&config.arch),
            strategy: strategy_fingerprint(config),
        }
    }

    /// Builds the stage-level key for `config` on a model fingerprint:
    /// same model, but only the architecture facets and strategy prefix
    /// that `clsa_core::prepare` actually reads — the crossbar spec and
    /// the PE budget, plus the mapping-side strategy. Archs differing
    /// only in scheduling-side hardware (NoC hop latency, tile GPEUs)
    /// and every scheduling variant over one mapping share the entry.
    ///
    /// The facets come from [`RunConfig::prepare_arch_facet`] — the same
    /// accessor the dirty-key protocol (`clsa_core::Invalidation`)
    /// classifies with, so "`Prepare` is clean" and "the stage key is
    /// unchanged" are one fact, not two that could drift apart.
    pub fn stages(model: u64, config: &RunConfig) -> Self {
        CacheKey {
            model,
            arch: fingerprint(&config.prepare_arch_facet()),
            strategy: mapping_fingerprint(config),
        }
    }
}

/// Fingerprint of the mapping-side configuration prefix — everything
/// `clsa_core::prepare` reads besides the architecture
/// ([`RunConfig::mapping_facet`]): mapping choice, Stage-I set policy,
/// and the bit-slicing options.
pub fn mapping_fingerprint(config: &RunConfig) -> u64 {
    fingerprint(&config.mapping_facet())
}

/// Fingerprint of the full strategy: the mapping prefix plus the
/// scheduling-side fields `run_prepared` reads
/// ([`RunConfig::scheduling_facet`]: scheduling choice, NoC/GPEU cost
/// switches, placement).
pub fn strategy_fingerprint(config: &RunConfig) -> u64 {
    fingerprint(&(config.mapping_facet(), config.scheduling_facet()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::Architecture;
    use cim_mapping::Solver;

    fn cfg(pes: usize) -> RunConfig {
        RunConfig::baseline(Architecture::paper_case_study(pes).unwrap())
    }

    #[test]
    fn scheduling_choice_splits_schedule_key_but_not_stage_key() {
        let baseline = cfg(4);
        let xinf = cfg(4).with_cross_layer();
        assert_eq!(CacheKey::stages(1, &baseline), CacheKey::stages(1, &xinf));
        assert_ne!(
            CacheKey::schedule(1, &baseline),
            CacheKey::schedule(1, &xinf)
        );
    }

    #[test]
    fn mapping_choice_splits_both_keys() {
        let once = cfg(8);
        let wdup = cfg(8).with_duplication(Solver::Greedy);
        assert_ne!(CacheKey::stages(1, &once), CacheKey::stages(1, &wdup));
        assert_ne!(CacheKey::schedule(1, &once), CacheKey::schedule(1, &wdup));
    }

    #[test]
    fn arch_and_model_split_keys() {
        assert_ne!(CacheKey::schedule(1, &cfg(4)), CacheKey::schedule(2, &cfg(4)));
        assert_ne!(CacheKey::schedule(1, &cfg(4)), CacheKey::schedule(1, &cfg(5)));
        assert_ne!(CacheKey::stages(1, &cfg(4)), CacheKey::stages(1, &cfg(5)));
    }

    #[test]
    fn scheduling_side_arch_facets_do_not_split_the_stage_key() {
        // prepare() reads only the crossbar and the PE budget; archs that
        // differ in NoC hop latency must share stage-cache entries while
        // their schedule keys stay distinct.
        let arch_with_hop = |hop: u64| {
            cim_arch::Architecture::builder()
                .tile(cim_arch::TileSpec::isaac_like())
                .noc_hop_latency(hop)
                .pes(4)
                .build()
                .unwrap()
        };
        let slow = RunConfig::baseline(arch_with_hop(64));
        let fast = RunConfig::baseline(arch_with_hop(0));
        assert_eq!(CacheKey::stages(1, &slow), CacheKey::stages(1, &fast));
        assert_ne!(CacheKey::schedule(1, &slow), CacheKey::schedule(1, &fast));
    }

    #[test]
    fn facet_accessors_serialize_like_the_historical_inline_tuples() {
        // The fingerprints moved from ad-hoc field tuples onto the
        // RunConfig facet accessors. Every on-disk store row is named by
        // these u64s, so the accessors must serialize byte-identically to
        // the tuples they replaced — pinned here against the literal
        // pre-refactor expressions.
        let mut config = cfg(8).with_duplication(Solver::Greedy).with_cross_layer();
        config.noc_cost = true;
        for config in [&cfg(4), &config] {
            assert_eq!(
                mapping_fingerprint(config),
                fingerprint(&(&config.mapping, &config.set_policy, &config.mapping_options))
            );
            assert_eq!(
                strategy_fingerprint(config),
                fingerprint(&(
                    (&config.mapping, &config.set_policy, &config.mapping_options),
                    (
                        &config.scheduling,
                        config.noc_cost,
                        config.gpeu_cost,
                        &config.placement,
                    ),
                ))
            );
            assert_eq!(
                CacheKey::stages(1, config).arch,
                fingerprint(&(config.arch.crossbar(), config.arch.total_pes()))
            );
        }
    }

    #[test]
    fn known_fingerprint_values_are_pinned() {
        // The streaming hasher must keep producing the exact FNV-1a-over-
        // canonical-JSON values of the pre-streaming implementation: every
        // on-disk store row is named by these u64s, so a drift here would
        // silently invalidate persisted caches.
        assert_eq!(fingerprint(&vec![1u32, 2, 3]), 0x28bb_ee43_9869_9f19);
        assert_eq!(fingerprint(&"clsa-cim".to_string()), 0x1295_43c7_7019_3a7e);
        // Offset basis: the hash of an empty stream.
        assert_eq!(FnvWriter::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn streaming_equals_hashing_the_materialized_string() {
        // Differential pin: for structured real-world values the streamed
        // bytes must equal the `to_string` output byte for byte.
        let g = cim_models::fig5_example();
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(fingerprint(&g), fnv1a(json.as_bytes()));
        let cfg_parts = (1.5f64, -7i64, "esc\"ape\n".to_string(), vec![0u8; 3]);
        let json = serde_json::to_string(&cfg_parts).unwrap();
        assert_eq!(fingerprint(&cfg_parts), fnv1a(json.as_bytes()));
    }

    #[test]
    fn graph_fingerprint_is_stable_and_content_sensitive() {
        let a = fingerprint(&cim_models::fig5_example());
        let b = fingerprint(&cim_models::fig5_example());
        assert_eq!(a, b);
        assert_ne!(a, fingerprint(&cim_models::toy_cnn(None)));
    }
}
