//! Fingerprint-range sharding: partition a flat job list across
//! processes (or hosts) with the persistent [`ResultStore`] as the only
//! merge point.
//!
//! A job's identity is its schedule-level [`CacheKey`] — three stable
//! 64-bit fingerprints. [`shard_of`] folds them through one more FNV-1a
//! round and maps the hash onto `0..n` with a multiply-shift, so:
//!
//! * the partition is a pure function of the key — every process
//!   computes the same owner for the same job with no coordination, and
//!   the assignment is independent of job-list order or `--jobs`;
//! * shards are balanced in expectation (the hash is uniform; the
//!   multiply-shift maps it onto `n` equal ranges without modulo bias);
//! * ownership is stable across runs — a re-run of slice `i/n` touches
//!   exactly the keys it owned before, so warm slices replay from the
//!   store like any other warm sweep.
//!
//! The protocol has two phases. Each *slice* process runs
//! `--shard i/n --cache-dir D` (evaluate owned jobs, persist summaries
//! into the shared store `D` — two-process safety of which is already
//! regression-tested); a final *merge* process runs
//! `--shard merge --cache-dir D` and replays the fully-warm store into
//! the byte-identical unsharded artifact.
//!
//! [`ResultStore`]: super::store::ResultStore

use std::fmt;

use super::fingerprint::{CacheKey, FnvWriter};

/// One slice of an `n`-way sharded sweep: this process owns the jobs
/// whose key hashes into range `index` of `of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based slice index, `< of`.
    pub index: usize,
    /// Total number of slices, `>= 1`.
    pub of: usize,
}

impl ShardSpec {
    /// A validated `index/of` slice; `None` unless `index < of`.
    pub fn new(index: usize, of: usize) -> Option<Self> {
        (index < of).then_some(ShardSpec { index, of })
    }

    /// Parses the CLI form `i/n` (e.g. `0/2`); `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        let (index, of) = s.split_once('/')?;
        ShardSpec::new(index.parse().ok()?, of.parse().ok()?)
    }

    /// Whether this slice owns the job identified by `key`.
    pub fn owns(&self, key: &CacheKey) -> bool {
        shard_of(key, self.of) == self.index
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

/// The owning slice (`0..of`) of a job key in an `of`-way partition.
///
/// Folds the key's three fingerprints through one FNV-1a round (the
/// schedule key's fields are themselves FNV-1a values, but XOR-folding
/// them directly would cancel structured differences), then maps the
/// 64-bit hash onto `of` ranges with a multiply-shift — the unbiased,
/// division-free alternative to `hash % of`.
pub fn shard_of(key: &CacheKey, of: usize) -> usize {
    let mut w = FnvWriter::new();
    w.write_bytes(&key.model.to_le_bytes());
    w.write_bytes(&key.arch.to_le_bytes());
    w.write_bytes(&key.strategy.to_le_bytes());
    ((u128::from(w.finish()) * of as u128) >> 64) as usize
}

/// How a batch entry point partitions (or reassembles) its job list —
/// the parsed form of the `--shard` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// No sharding: evaluate every job in this process (the default).
    #[default]
    All,
    /// Evaluate only the jobs this slice owns, persisting summaries into
    /// the shared store (`--shard i/n`; requires `--cache-dir`).
    Slice(ShardSpec),
    /// Evaluate nothing: replay every job from the fully-warm store and
    /// aggregate the unsharded artifact (`--shard merge`; requires
    /// `--cache-dir`).
    Merge,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            model: n,
            arch: n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            strategy: !n,
        }
    }

    #[test]
    fn parse_accepts_slices_and_rejects_garbage() {
        assert_eq!(ShardSpec::parse("0/2"), ShardSpec::new(0, 2));
        assert_eq!(ShardSpec::parse("4/5"), ShardSpec::new(4, 5));
        assert_eq!(ShardSpec::parse("0/1"), ShardSpec::new(0, 1));
        for bad in ["", "2/2", "3/2", "merge", "1", "1/", "/2", "-1/2", "a/b"] {
            assert_eq!(ShardSpec::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        for of in [1usize, 2, 3, 7] {
            for n in 0..256u64 {
                let k = key(n);
                let owners: Vec<usize> = (0..of)
                    .filter(|&i| ShardSpec::new(i, of).unwrap().owns(&k))
                    .collect();
                assert_eq!(owners.len(), 1, "key {n} in {of}-way partition");
                assert_eq!(owners[0], shard_of(&k, of));
                assert!(owners[0] < of);
            }
        }
    }

    #[test]
    fn single_slice_owns_everything() {
        let all = ShardSpec::new(0, 1).unwrap();
        assert!((0..64u64).all(|n| all.owns(&key(n))));
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let of = 4;
        let mut counts = vec![0usize; of];
        for n in 0..1024u64 {
            counts[shard_of(&key(n), of)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Uniform expectation 256 per slice; allow a wide margin.
            assert!((128..=384).contains(&c), "slice {i} got {c} of 1024");
        }
    }

    #[test]
    fn display_round_trips_the_cli_form() {
        let s = ShardSpec::new(1, 3).unwrap();
        assert_eq!(ShardSpec::parse(&s.to_string()), Some(s));
    }
}
