//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded schedule of failures threaded (behind the
//! [`FaultHook`] trait) into the layers that touch the outside world:
//!
//! * **store I/O** — injected read errors, failed writes, torn writes
//!   (truncated row lands on disk), and failed renames
//!   ([`FaultSite::StoreRead`] .. [`FaultSite::StoreRename`]);
//! * **lane-pool job execution** — injected panics exercising the
//!   quarantine path, and injected per-job delays used to widen the
//!   kill window in crash-resume tests ([`FaultSite::JobPanic`],
//!   [`FaultSite::JobDelay`]);
//! * **serve connection handling** — dropped and slowed connections
//!   ([`FaultSite::ConnDrop`], [`FaultSite::ConnDelay`]).
//!
//! Every decision is a **pure function** of `(seed, site, key, attempt)`
//! where `key` is a stable fingerprint of the work item (a cache key, a
//! request line) — never of wall-clock time, thread identity, or arrival
//! order. The same seed therefore produces a byte-identical fault
//! schedule across runs, thread counts, and interleavings, which is what
//! makes chaos tests reproducible and lets CI pin exact fault counts.
//!
//! Rates are expressed in **per-mille** (0..=1000): a rate of `1000`
//! fires on every decision point, `500` on roughly half of the keyspace,
//! `0` (the default for every site) never — a plan with all-zero rates
//! is byte-for-byte inert, which is how the zero-fault golden guarantee
//! is kept.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One class of injectable failure. See the module docs for the layer
/// each site instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// `ResultStore::get` pretends the row file is unreadable (plain
    /// cache miss; the row is left on disk).
    StoreRead,
    /// `ResultStore::put` fails before anything reaches disk (counted
    /// as a write error, as a full disk or EACCES would be).
    StoreWrite,
    /// `ResultStore::put` writes a truncated row that *lands* via a
    /// successful rename — silent corruption that only a later read
    /// detects (and heals by eviction + recompute).
    StoreTornWrite,
    /// The temp-file rename inside the store's atomic write fails; the
    /// temp file is cleaned up and the write is counted as an error.
    StoreRename,
    /// A sweep job panics mid-execution (caught, retried, and
    /// quarantined by the batch runner).
    JobPanic,
    /// A sweep job sleeps for the plan's delay before running — used to
    /// hold a sweep open long enough to SIGKILL it mid-run.
    JobDelay,
    /// The daemon drops a connection after reading a request line and
    /// before replying (a half-closed / vanished peer from the client's
    /// point of view).
    ConnDrop,
    /// The daemon sleeps for the plan's delay before handling a request
    /// (a slow peer / stalled pipe).
    ConnDelay,
}

/// All sites, in the order used for indexing and reporting.
pub const FAULT_SITES: [FaultSite; 8] = [
    FaultSite::StoreRead,
    FaultSite::StoreWrite,
    FaultSite::StoreTornWrite,
    FaultSite::StoreRename,
    FaultSite::JobPanic,
    FaultSite::JobDelay,
    FaultSite::ConnDrop,
    FaultSite::ConnDelay,
];

impl FaultSite {
    /// The stable CLI / report name of the site.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::StoreRead => "store-read",
            FaultSite::StoreWrite => "store-write",
            FaultSite::StoreTornWrite => "store-torn-write",
            FaultSite::StoreRename => "store-rename",
            FaultSite::JobPanic => "job-panic",
            FaultSite::JobDelay => "job-delay",
            FaultSite::ConnDrop => "conn-drop",
            FaultSite::ConnDelay => "conn-delay",
        }
    }

    /// Parses a CLI site name (the inverse of [`as_str`](Self::as_str)).
    pub fn parse(name: &str) -> Option<FaultSite> {
        FAULT_SITES.iter().copied().find(|s| s.as_str() == name)
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The injection interface the instrumented layers call through.
///
/// Production code paths hold an `Option<Arc<dyn FaultHook>>` that is
/// `None` outside chaos runs; the only implementation is [`FaultPlan`].
pub trait FaultHook: fmt::Debug + Send + Sync {
    /// Should the fault at `site` fire for the work item fingerprinted
    /// by `key`, on retry round `attempt`? Implementations must be
    /// deterministic in their inputs.
    fn decide(&self, site: FaultSite, key: u64, attempt: u32) -> bool;

    /// How long delay-class sites ([`FaultSite::JobDelay`],
    /// [`FaultSite::ConnDelay`]) stall when they fire.
    fn delay(&self) -> Duration {
        Duration::ZERO
    }
}

/// SplitMix64: a full-period mixing step. Used both to derive per-site
/// decision streams and for deterministic jitter in the serve client's
/// backoff (so retry schedules are reproducible under a fixed seed).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault schedule with per-site firing counters.
///
/// Build one with [`FaultPlan::new`] + [`with_rate`](Self::with_rate),
/// share it as an `Arc`, and hand clones of the `Arc` (as
/// `Arc<dyn FaultHook>`) to the store / batch runner / daemon. The
/// original handle keeps access to the counters for pinning exact fault
/// counts in tests and CI.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Per-site firing probability in per-mille (0..=1000).
    rates: [u16; FAULT_SITES.len()],
    delay: Duration,
    fired: [AtomicU64; FAULT_SITES.len()],
}

impl FaultPlan {
    /// An inert plan (all rates zero) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0; FAULT_SITES.len()],
            delay: Duration::from_millis(50),
            fired: Default::default(),
        }
    }

    /// Sets a site's firing rate in per-mille (clamped to 1000).
    pub fn with_rate(mut self, site: FaultSite, per_mille: u16) -> Self {
        self.rates[site.index()] = per_mille.min(1000);
        self
    }

    /// Sets the stall duration for delay-class sites.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pure decision function: would the fault fire? Does not touch
    /// the firing counters — use this to search for seeds with a wanted
    /// firing pattern in tests.
    pub fn would_fire(&self, site: FaultSite, key: u64, attempt: u32) -> bool {
        let rate = self.rates[site.index()];
        if rate == 0 {
            return false;
        }
        let mut h = mix64(self.seed ^ (site.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = mix64(h ^ key);
        h = mix64(h ^ u64::from(attempt));
        h % 1000 < u64::from(rate)
    }

    /// How many times `site` has fired so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        FAULT_SITES.iter().map(|&s| self.fired(s)).sum()
    }

    /// A one-line report for logs and CI pinning, e.g.
    /// `faults fired: 3 (store-read 2, store-rename 1)`.
    pub fn report(&self) -> String {
        let mut parts = Vec::new();
        for &site in &FAULT_SITES {
            let n = self.fired(site);
            if n > 0 {
                parts.push(format!("{site} {n}"));
            }
        }
        if parts.is_empty() {
            format!("faults fired: {}", self.total_fired())
        } else {
            format!("faults fired: {} ({})", self.total_fired(), parts.join(", "))
        }
    }
}

impl FaultHook for FaultPlan {
    fn decide(&self, site: FaultSite, key: u64, attempt: u32) -> bool {
        let fire = self.would_fire(site, key, attempt);
        if fire {
            self.fired[site.index()].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    fn delay(&self) -> Duration {
        self.delay
    }
}

/// Parses a `--fault-rate` spec of the form `site=per_mille`, e.g.
/// `store-read=300`.
pub fn parse_rate_spec(spec: &str) -> Result<(FaultSite, u16), String> {
    let (name, rate) = spec
        .split_once('=')
        .ok_or_else(|| format!("fault rate `{spec}` is not of the form site=per_mille"))?;
    let site = FaultSite::parse(name).ok_or_else(|| {
        let known: Vec<&str> = FAULT_SITES.iter().map(|s| s.as_str()).collect();
        format!("unknown fault site `{name}` (known: {})", known.join(", "))
    })?;
    let per_mille: u16 = rate
        .parse()
        .map_err(|_| format!("fault rate `{rate}` is not an integer in 0..=1000"))?;
    if per_mille > 1000 {
        return Err(format!("fault rate `{rate}` exceeds 1000 per-mille"));
    }
    Ok((site, per_mille))
}

/// Best-effort extraction of a panic payload's message (the `&str` /
/// `String` forms produced by `panic!`).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_round_trip() {
        for &site in &FAULT_SITES {
            assert_eq!(FaultSite::parse(site.as_str()), Some(site));
        }
        assert_eq!(FaultSite::parse("no-such-site"), None);
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::new(7);
        for key in 0..1000 {
            for &site in &FAULT_SITES {
                assert!(!plan.decide(site, key, 0));
            }
        }
        assert_eq!(plan.total_fired(), 0);
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultPlan::new(7).with_rate(FaultSite::JobPanic, 1000);
        for key in 0..100 {
            assert!(plan.decide(FaultSite::JobPanic, key, 0));
        }
        assert_eq!(plan.fired(FaultSite::JobPanic), 100);
        assert_eq!(plan.total_fired(), 100);
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_site_key_attempt() {
        let a = FaultPlan::new(42).with_rate(FaultSite::StoreRead, 500);
        let b = FaultPlan::new(42).with_rate(FaultSite::StoreRead, 500);
        let c = FaultPlan::new(43).with_rate(FaultSite::StoreRead, 500);
        let decisions = |p: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|k| p.would_fire(FaultSite::StoreRead, k, 0))
                .collect()
        };
        assert_eq!(decisions(&a), decisions(&b));
        assert_ne!(decisions(&a), decisions(&c), "seed must matter");
        // Sites draw from independent streams: the same (key, attempt)
        // must not produce correlated decisions across sites.
        let d = FaultPlan::new(42)
            .with_rate(FaultSite::StoreRead, 500)
            .with_rate(FaultSite::StoreWrite, 500);
        let reads: Vec<bool> = (0..256).map(|k| d.would_fire(FaultSite::StoreRead, k, 0)).collect();
        let writes: Vec<bool> = (0..256).map(|k| d.would_fire(FaultSite::StoreWrite, k, 0)).collect();
        assert_ne!(reads, writes);
    }

    #[test]
    fn fault_count_is_pinned_for_a_fixed_seed() {
        // The exact count is part of the deterministic contract: if this
        // moves, the decision function changed and every pinned chaos
        // test in CI needs re-blessing.
        let plan = FaultPlan::new(2024).with_rate(FaultSite::StoreRead, 300);
        let fired = (0..1000)
            .filter(|&k| plan.decide(FaultSite::StoreRead, k, 0))
            .count() as u64;
        assert_eq!(fired, plan.fired(FaultSite::StoreRead));
        assert_eq!(fired, 294);
        assert_eq!(plan.report(), "faults fired: 294 (store-read 294)");
    }

    #[test]
    fn rate_specs_parse() {
        assert_eq!(
            parse_rate_spec("store-torn-write=1000"),
            Ok((FaultSite::StoreTornWrite, 1000))
        );
        assert!(parse_rate_spec("store-read").is_err());
        assert!(parse_rate_spec("bogus=10").is_err());
        assert!(parse_rate_spec("store-read=1001").is_err());
        assert!(parse_rate_spec("store-read=x").is_err());
    }

    #[test]
    fn attempts_draw_fresh_decisions() {
        // A 500‰ site must not be all-or-nothing across attempts for the
        // same key — retries get independent draws.
        let plan = FaultPlan::new(9).with_rate(FaultSite::JobPanic, 500);
        let varied = (0..64).any(|k| {
            plan.would_fire(FaultSite::JobPanic, k, 0) != plan.would_fire(FaultSite::JobPanic, k, 1)
        });
        assert!(varied);
    }
}
