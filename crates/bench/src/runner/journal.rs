//! Crash-safe sweep journals: the accounting half of `--resume`.
//!
//! A [`SweepJournal`] is an append-only NDJSON file living **beside** a
//! [`ResultStore`](super::store::ResultStore) (dot-prefixed, so the
//! store's row scan ignores it). The first line pins the journal to a
//! specific job list — a fingerprint folded over every job's
//! schedule-level [`CacheKey`] plus the list length — and every
//! subsequent line records one completed job index, flushed as soon as
//! the job's summary is persisted:
//!
//! ```text
//! {"version":1,"sweep":"a31f…","total":26,"shard":"0of2"}
//! {"done":4}
//! {"done":0}
//! ```
//!
//! Division of labor: the **store rows are the data**, the journal is
//! the *progress accounting and guard*. On `--resume` the header is
//! validated against the current job list (a different sweep or shard
//! layout starts fresh rather than mis-resuming), completed indices are
//! replayed tolerantly (a torn trailing line from a SIGKILL is ignored),
//! and the batch runner replays completed jobs from the store — so the
//! resumed artifact is byte-identical to an uninterrupted run, and a
//! journal entry whose row was meanwhile evicted merely recomputes.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use super::fingerprint::{CacheKey, FnvWriter};
use super::sweep::SweepJob;

/// On-disk format version of the journal header.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize, Default, PartialEq)]
struct JournalHeader {
    version: u32,
    sweep: String,
    total: u64,
    shard: String,
}

#[derive(Debug, Serialize, Deserialize, Default)]
struct JournalEntry {
    done: u64,
}

/// Fingerprint of a job list: an FNV-1a fold over every job's
/// schedule-level cache key, plus the list length — the identity a
/// journal is pinned to.
pub fn sweep_fingerprint(jobs: &[SweepJob]) -> u64 {
    let mut w = FnvWriter::new();
    w.write_bytes(&(jobs.len() as u64).to_le_bytes());
    for job in jobs {
        let key = CacheKey::schedule(job.model_fp, &job.config);
        w.write_bytes(&key.model.to_le_bytes());
        w.write_bytes(&key.arch.to_le_bytes());
        w.write_bytes(&key.strategy.to_le_bytes());
    }
    w.finish()
}

/// An append-only completion journal for one sweep over one store
/// directory. See the module docs for format and semantics.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    total: usize,
    resumed: usize,
    state: Mutex<JournalState>,
}

#[derive(Debug)]
struct JournalState {
    file: File,
    done: BTreeSet<usize>,
}

impl SweepJournal {
    /// Opens (or creates) the journal for `jobs` in `dir`.
    ///
    /// With `resume = false` any existing journal is discarded and a
    /// fresh one is started. With `resume = true` an existing journal
    /// whose header matches this job list is replayed (completed indices
    /// become [`is_completed`](Self::is_completed)); a missing, torn, or
    /// mismatching journal falls back to a fresh start — resuming the
    /// wrong sweep would be worse than restarting.
    ///
    /// `shard` distinguishes concurrent slices of the same sharded sweep
    /// sharing one store directory; pass `None` for unsharded runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating or writing the journal file.
    pub fn open(
        dir: &Path,
        jobs: &[SweepJob],
        shard: Option<&str>,
        resume: bool,
    ) -> io::Result<SweepJournal> {
        let fp = sweep_fingerprint(jobs);
        let tag = shard.unwrap_or("all");
        let path = dir.join(format!(".journal-{fp:016x}-{tag}.ndjson"));
        let expected = JournalHeader {
            version: JOURNAL_FORMAT_VERSION,
            sweep: format!("{fp:016x}"),
            total: jobs.len() as u64,
            shard: tag.to_string(),
        };

        let mut done = BTreeSet::new();
        if resume {
            if let Some(replayed) = replay(&path, &expected, jobs.len()) {
                done = replayed;
            }
        }

        if done.is_empty() {
            // Fresh start (or an unusable previous journal): truncate and
            // re-write the header so the file is always internally
            // consistent.
            let mut file = File::create(&path)?;
            let header = serde_json::to_string(&expected)
                .expect("journal header serializes"); // cim-lint: allow(panic-unwrap) plain struct of scalars
            writeln!(file, "{header}")?;
            file.flush()?;
            return Ok(SweepJournal {
                path,
                total: jobs.len(),
                resumed: 0,
                state: Mutex::new(JournalState { file, done }),
            });
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(SweepJournal {
            path,
            total: jobs.len(),
            resumed: done.len(),
            state: Mutex::new(JournalState { file, done }),
        })
    }

    /// Jobs in the journaled list.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Completed indices replayed from a previous run at open time.
    pub fn resumed_count(&self) -> usize {
        self.resumed
    }

    /// Completed indices known so far (replayed + marked this run).
    pub fn completed_count(&self) -> usize {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.done.len()
    }

    /// Was job `index` already completed (this run or a previous one)?
    pub fn is_completed(&self, index: usize) -> bool {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.done.contains(&index)
    }

    /// Records job `index` as completed, appending and flushing one
    /// journal line. Idempotent; journal I/O failures are swallowed —
    /// the journal is accounting, never allowed to fail the sweep.
    pub fn mark(&self, index: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.done.insert(index) {
            return;
        }
        let entry = JournalEntry { done: index as u64 };
        let line = serde_json::to_string(&entry)
            .expect("journal entry serializes"); // cim-lint: allow(panic-unwrap) plain struct of scalars
        let _ = writeln!(state.file, "{line}");
        let _ = state.file.flush();
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes the journal file after a fully-successful sweep — a
    /// subsequent `--resume` then starts a (trivially warm) fresh run.
    pub fn finish(self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Replays an existing journal file. Returns the completed set if the
/// header matches `expected`, `None` if the file is absent, torn at the
/// header, or belongs to a different sweep. Unparseable or out-of-range
/// entry lines (a torn tail from a SIGKILL) are ignored.
fn replay(path: &Path, expected: &JournalHeader, total: usize) -> Option<BTreeSet<usize>> {
    let file = File::open(path).ok()?;
    let mut lines = BufReader::new(file).lines();
    let header_line = lines.next()?.ok()?;
    let header: JournalHeader = serde_json::from_str(&header_line).ok()?;
    if header != *expected {
        return None;
    }
    let mut done = BTreeSet::new();
    for line in lines {
        let Ok(line) = line else { break };
        let Ok(entry) = serde_json::from_str::<JournalEntry>(&line) else {
            continue;
        };
        if (entry.done as usize) < total {
            done.insert(entry.done as usize);
        }
    }
    Some(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SweepOptions;
    use crate::runner::sweep::sweep_jobs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cim_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn jobs() -> Vec<SweepJob> {
        let g = cim_models::fig5_example();
        sweep_jobs("fig5", &g, &SweepOptions { xs: vec![1], ..Default::default() }).unwrap()
    }

    #[test]
    fn fresh_open_marks_and_resumes() {
        let dir = tmp_dir("mark");
        let jobs = jobs();
        let journal = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        assert_eq!(journal.resumed_count(), 0);
        journal.mark(0);
        journal.mark(2);
        journal.mark(2); // idempotent
        assert!(journal.is_completed(2));
        assert!(!journal.is_completed(1));
        drop(journal);

        let resumed = SweepJournal::open(&dir, &jobs, None, true).unwrap();
        assert_eq!(resumed.resumed_count(), 2);
        assert!(resumed.is_completed(0));
        assert!(resumed.is_completed(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_resume_open_discards_previous_progress() {
        let dir = tmp_dir("discard");
        let jobs = jobs();
        let journal = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        journal.mark(1);
        drop(journal);
        let fresh = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        assert_eq!(fresh.resumed_count(), 0);
        assert!(!fresh.is_completed(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatching_job_list_starts_fresh() {
        let dir = tmp_dir("mismatch");
        let full = jobs();
        let journal = SweepJournal::open(&dir, &full, None, false).unwrap();
        journal.mark(0);
        drop(journal);
        // Same directory, different sweep (shorter list) — must not
        // inherit the other journal's progress.
        let other = &full[..2];
        let resumed = SweepJournal::open(&dir, other, None, true).unwrap();
        assert_eq!(resumed.resumed_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = tmp_dir("torn");
        let jobs = jobs();
        let journal = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        journal.mark(0);
        journal.mark(3);
        let path = journal.path().to_path_buf();
        drop(journal);
        // Simulate a SIGKILL mid-append: a torn, non-JSON trailing line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"do");
        std::fs::write(&path, text).unwrap();

        let resumed = SweepJournal::open(&dir, &jobs, None, true).unwrap();
        assert_eq!(resumed.resumed_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_tags_keep_slice_journals_apart() {
        let dir = tmp_dir("shard");
        let jobs = jobs();
        let a = SweepJournal::open(&dir, &jobs, Some("0of2"), false).unwrap();
        let b = SweepJournal::open(&dir, &jobs, Some("1of2"), false).unwrap();
        a.mark(0);
        assert_ne!(a.path(), b.path());
        drop((a, b));
        let a2 = SweepJournal::open(&dir, &jobs, Some("0of2"), true).unwrap();
        let b2 = SweepJournal::open(&dir, &jobs, Some("1of2"), true).unwrap();
        assert_eq!(a2.resumed_count(), 1);
        assert_eq!(b2.resumed_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_removes_the_file() {
        let dir = tmp_dir("finish");
        let jobs = jobs();
        let journal = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        let path = journal.path().to_path_buf();
        journal.mark(0);
        assert!(path.exists());
        journal.finish();
        assert!(!path.exists());
        let resumed = SweepJournal::open(&dir, &jobs, None, true).unwrap();
        assert_eq!(resumed.resumed_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_is_invisible_to_the_store_scan() {
        let dir = tmp_dir("scan");
        let jobs = jobs();
        let journal = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        journal.mark(0);
        let store = crate::runner::store::ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 0);
        assert!(journal.path().exists(), "store open must not sweep the journal");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
