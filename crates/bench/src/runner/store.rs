//! The persistent cross-run result store (`--cache-dir`).
//!
//! The in-memory [`ScheduleCache`](super::ScheduleCache) dies with the
//! process; this store makes sweep results durable. It is an on-disk,
//! versioned, fingerprint-keyed map from a job's [`CacheKey`] —
//! `(model, architecture, strategy)` fingerprints — to the
//! [`RunSummary`] the batch aggregator needs, so a
//! re-run of `fig6`/`fig7`/`paper_sweep` after a code-irrelevant change
//! replays from disk instead of re-scheduling.
//!
//! # On-disk layout
//!
//! ```text
//! <cache-dir>/
//!   index.json                                    # StoreIndex row
//!   <model:016x>-<arch:016x>-<strategy:016x>.json # one StoreEntry row each
//! ```
//!
//! Every row is a single serde_json document carrying
//! [`STORE_FORMAT_VERSION`]. Writes go through a temp file in the same
//! directory followed by an atomic rename, so concurrent readers (and a
//! second process sharing the directory) never observe a half-written
//! row — at worst they observe the previous row or none.
//!
//! # Corruption policy
//!
//! Entries are **recomputed, never trusted**: a row that fails to parse,
//! carries a different format version, or names a different key than its
//! file is *evicted* (deleted best-effort, counted in
//! [`StoreStats::evictions`]) and the lookup reports a miss. The rows on
//! disk are the ground truth; `index.json` is a write-only manifest
//! (rewritten on [`open`] and on drop) — lookups probe the entry file
//! derived from the key and the in-memory index is rebuilt by scan on
//! every open, so a stale or corrupt `index.json` (crash, concurrent
//! writer) affects nothing: a truncated or invalid manifest is reported
//! with a warning ([`index_was_rebuilt`]) and rebuilt, never an open
//! failure.
//!
//! # Chaos instrumentation
//!
//! All four failure classes the policy above defends against are
//! injectable deterministically — see
//! [`set_fault_hook`](ResultStore::set_fault_hook) and
//! [`fault`](super::fault): read errors (plain miss), failed writes
//! (counted, swallowed), torn-but-landed writes (evicted on first
//! contact), and failed renames (temp cleaned up, counted).
//!
//! [`open`]: ResultStore::open
//! [`index_was_rebuilt`]: ResultStore::index_was_rebuilt

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use clsa_core::RunResult;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use super::fault::{FaultHook, FaultSite};
use super::fingerprint::CacheKey;

/// Version stamp of the on-disk row format. Bump on **any change that
/// alters computed summaries** — not just the [`RunSummary`] shape,
/// [`CacheKey`] semantics, or the fingerprint function, but also
/// scheduler/mapping/cost-model behavior: the key fingerprints cover the
/// *inputs* only, so a stale store would otherwise replay the old
/// algorithm's rows forever. The golden-file suite drifting (a
/// `CIM_BLESS=1` re-bless) is the tell-tale that this constant must move
/// with it. Rows with any other version are evicted and recomputed.
///
/// History: 2 — [`RunSummary`] gained `noc_bytes` (the autotuner's
/// traffic objective); version-1 rows lack the field and are evicted.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// The serializable reduction of a [`RunResult`] the store's consumers
/// need — the fields `run_batch` aggregates into sweep rows plus the
/// autotuner's traffic objective, and nothing else.
///
/// Floats round-trip exactly through serde_json (shortest-representation
/// formatting), so a summary replayed from disk reproduces byte-identical
/// aggregated JSON output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Makespan in crossbar cycles.
    pub makespan_cycles: u64,
    /// Eq. 2 utilization.
    pub utilization: f64,
    /// Total PEs of the architecture evaluated.
    pub total_pes: usize,
    /// Layers duplicated by the mapping (0 without duplication).
    pub duplicated_layers: usize,
    /// Bytes forwarded over cross-layer dependency edges per inference
    /// (`CostedDeps::total_dep_bytes` — the tuner's NoC-traffic axis).
    pub noc_bytes: u64,
}

impl RunSummary {
    /// Extracts the summary of a completed run.
    pub fn of(result: &RunResult) -> Self {
        RunSummary {
            makespan_cycles: result.makespan(),
            utilization: result.report.utilization,
            total_pes: result.report.total_pes,
            duplicated_layers: result.plan.as_ref().map_or(0, |p| p.duplicated_layers()),
            noc_bytes: result.costed.total_dep_bytes(),
        }
    }
}

/// One persisted row: the format version, the full key (so a misfiled or
/// colliding row is detected), and the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoreEntry {
    version: u32,
    model: u64,
    arch: u64,
    strategy: u64,
    summary: RunSummary,
}

/// The index row: format version plus the known entry file stems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoreIndex {
    version: u32,
    entries: Vec<String>,
}

/// Cumulative counters of one store handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups issued.
    pub lookups: u64,
    /// Lookups served from disk.
    pub hits: u64,
    /// Corrupt / version-mismatched rows deleted on contact.
    pub evictions: u64,
    /// Rows successfully persisted.
    pub writes: u64,
    /// Failed row or index writes (the run continues; the row is simply
    /// not persisted).
    pub write_errors: u64,
}

impl StoreStats {
    /// Lookups that had to be recomputed.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} hit, {} written, {} evicted",
            self.hits, self.lookups, self.writes, self.evictions
        )?;
        if self.write_errors > 0 {
            write!(f, ", {} write errors", self.write_errors)?;
        }
        Ok(())
    }
}

/// A handle on one `--cache-dir`. Cheap to share by reference across the
/// worker pool (all state is atomics plus a mutex-guarded index set).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    index: Mutex<BTreeSet<String>>,
    tmp_counter: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    /// Whether `index.json` was present but unreadable at open time and
    /// had to be rebuilt from the row scan.
    index_rebuilt: bool,
    /// Deterministic chaos injection ([`FaultSite::StoreRead`] ..
    /// [`FaultSite::StoreRename`]); `None` outside chaos runs.
    faults: Option<Arc<dyn FaultHook>>,
}

/// Fault-decision key of a row: a stable fold of its cache key, matching
/// the sweep layer's job keying so one seed addresses the same logical
/// work at both layers.
fn fault_key(key: &CacheKey) -> u64 {
    key.model ^ key.arch.rotate_left(21) ^ key.strategy.rotate_left(42)
}

/// Fault-decision key used for `index.json` writes.
const INDEX_FAULT_KEY: u64 = u64::MAX;
/// Fault-decision key used by the writability probe.
const PROBE_FAULT_KEY: u64 = u64::MAX - 1;

/// Whether a `.tmp-<pid>-<nonce>-<file>` temp file belongs to no living
/// writer and can be swept on open.
///
/// Temps older than this are orphans no matter what `/proc` says: no
/// in-flight atomic write lives this long, and pid liveness alone cannot
/// tell the original writer from an unrelated process that recycled its
/// pid after it died.
const ORPHAN_TEMP_MAX_AGE: Duration = Duration::from_secs(60 * 60);

/// Decision table, conservative toward *keeping* (a kept orphan costs a
/// few stale bytes; a swept live temp costs a concurrent writer its
/// rename):
///
/// * unparseable name → orphan (not written by this code; sweep);
/// * our own pid → orphan (a previous process with the recycled pid —
///   *this* process has written nothing yet at open time);
/// * mtime older than [`ORPHAN_TEMP_MAX_AGE`] → orphan (even a pid that
///   looks alive in `/proc` may be a recycled pid, under which the dead
///   writer's temp would otherwise be immortal);
/// * on Linux, `/proc/<pid>` absent → orphan (the writer is gone);
/// * otherwise → live (keep).
fn temp_is_orphaned(name: &str, path: &Path) -> bool {
    let Some(pid) = name
        .strip_prefix(".tmp-")
        .and_then(|rest| rest.split('-').next())
        .and_then(|pid| pid.parse::<u32>().ok())
    else {
        return true;
    };
    if pid == std::process::id() {
        return true;
    }
    if temp_age(path).is_some_and(|age| age > ORPHAN_TEMP_MAX_AGE) {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        return !proc_root.join(pid.to_string()).exists();
    }
    // No /proc (non-Linux): liveness is unknowable; keep the temp.
    false
}

/// Age of a temp file by its mtime; `None` when the metadata is
/// unreadable or the mtime sits in the future (then pid liveness alone
/// decides — still conservative toward keeping).
fn temp_age(path: &Path) -> Option<Duration> {
    let modified = fs::metadata(path).ok()?.modified().ok()?;
    SystemTime::now().duration_since(modified).ok() // cim-lint: allow(wall-clock) orphan aging compares on-disk mtimes; no schedule-visible time
}

/// File stem of a key's row: three fixed-width hex fingerprints.
fn key_stem(key: &CacheKey) -> String {
    format!(
        "{:016x}-{:016x}-{:016x}",
        key.model, key.arch, key.strategy
    )
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// The in-memory index is rebuilt from a directory scan — the rows
    /// on disk are the ground truth, so an `index.json` left stale by a
    /// concurrent writer or a killed process heals on every open (it is
    /// a write-only manifest, never read back for correctness). Entry
    /// rows themselves are validated lazily on [`get`](Self::get), so
    /// the index never serves stale data.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from directory creation or the scan; a corrupt
    /// (truncated or invalid-JSON) `index.json` alone is **never** an
    /// open failure — it is rebuilt from the row scan with a warning on
    /// stderr, observable via [`index_was_rebuilt`](Self::index_was_rebuilt).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        // The manifest is write-only for correctness, but a present-yet-
        // unparseable one is evidence of a crash or concurrent-writer
        // tear worth surfacing before it is silently overwritten below.
        let index_path = dir.join("index.json");
        let index_rebuilt = index_path.exists()
            && fs::read_to_string(&index_path)
                .ok()
                .and_then(|text| serde_json::from_str::<StoreIndex>(&text).ok())
                .is_none();
        if index_rebuilt {
            eprintln!(
                "warning: result store {}: corrupt index.json (truncated or invalid JSON); \
                 rebuilding the manifest from the row scan",
                dir.display()
            );
        }

        // Scan: every non-index .json file is a candidate row (validated
        // on first contact). Temp files orphaned by a killed writer are
        // swept here so a long-lived cache dir cannot accumulate them —
        // but only *orphaned* ones: a daemon and a straggler batch binary
        // legitimately share one cache dir, and sweeping a live writer's
        // in-flight temp would fail its rename and drop the row.
        let mut entries = BTreeSet::new();
        for dirent in fs::read_dir(&dir)? {
            let path = dirent?.path();
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            if name.starts_with(".tmp-") {
                if temp_is_orphaned(&name, &path) {
                    let _ = fs::remove_file(&path);
                }
            } else if let Some(stem) = name.strip_suffix(".json") {
                if stem != "index" && !name.starts_with('.') {
                    entries.insert(stem.to_string());
                }
            }
        }

        let store = ResultStore {
            dir,
            index: Mutex::new(entries),
            tmp_counter: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            index_rebuilt,
            faults: None,
        };
        store.persist_index();
        Ok(store)
    }

    /// Installs a deterministic fault hook on this handle (chaos runs
    /// only). Store-level sites: [`FaultSite::StoreRead`],
    /// [`FaultSite::StoreWrite`], [`FaultSite::StoreTornWrite`],
    /// [`FaultSite::StoreRename`].
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.faults = Some(hook);
    }

    /// Whether `index.json` was present but corrupt at open time and the
    /// manifest was rebuilt from the row scan.
    pub fn index_was_rebuilt(&self) -> bool {
        self.index_rebuilt
    }

    /// Whether the store directory currently accepts writes, checked by
    /// round-tripping a dot-prefixed probe file through the same atomic
    /// write path rows use (so injected write/rename faults are seen
    /// too). `cim-serve` polls this to surface degraded (cache-only)
    /// mode; the probe file is invisible to the row scan.
    pub fn probe_writable(&self) -> bool {
        if let Some(h) = &self.faults {
            if h.decide(FaultSite::StoreWrite, PROBE_FAULT_KEY, 0) {
                return false;
            }
        }
        let path = self.dir.join(".probe.json");
        let ok = self.write_atomic(&path, "{}", PROBE_FAULT_KEY).is_ok();
        if ok {
            let _ = fs::remove_file(&path);
        }
        ok
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of rows the index currently knows about.
    pub fn len(&self) -> usize {
        self.index.lock().len()
    }

    /// Whether the index currently knows no rows.
    pub fn is_empty(&self) -> bool {
        self.index.lock().is_empty()
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key_stem(key)))
    }

    /// Looks up `key`, returning its persisted summary if a trustworthy
    /// row exists.
    ///
    /// The entry file is probed directly (the index is not consulted), so
    /// rows written by a concurrent process are found. A row that cannot
    /// be parsed, has a different [`STORE_FORMAT_VERSION`], or carries a
    /// different key than its file name is deleted (best-effort), counted
    /// as an eviction, and reported as a miss.
    pub fn get(&self, key: &CacheKey) -> Option<RunSummary> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let path = self.entry_path(key);
        if let Some(h) = &self.faults {
            // Injected read error: the row looks unreadable (EIO), which
            // is a plain miss — the file stays on disk, like the real
            // `fs::read_to_string` error path below.
            if h.decide(FaultSite::StoreRead, fault_key(key), 0) {
                return None;
            }
        }
        let text = fs::read_to_string(&path).ok()?;
        let trusted = serde_json::from_str::<StoreEntry>(&text)
            .ok()
            .filter(|row| {
                row.version == STORE_FORMAT_VERSION
                    && row.model == key.model
                    && row.arch == key.arch
                    && row.strategy == key.strategy
            });
        match trusted {
            Some(row) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(row.summary)
            }
            None => {
                self.evict(key, &path);
                None
            }
        }
    }

    /// Persists `summary` under `key` (temp file + atomic rename), then
    /// updates the index. Failures are counted in
    /// [`StoreStats::write_errors`] and otherwise ignored — the sweep's
    /// results never depend on the store accepting a row.
    pub fn put(&self, key: &CacheKey, summary: &RunSummary) {
        let row = StoreEntry {
            version: STORE_FORMAT_VERSION,
            model: key.model,
            arch: key.arch,
            strategy: key.strategy,
            summary: summary.clone(),
        };
        let json = serde_json::to_string(&row).expect("store rows serialize"); // cim-lint: allow(panic-unwrap) store rows are plain serializable data
        let fk = fault_key(key);
        let mut body = json.as_str();
        if let Some(h) = &self.faults {
            // Injected write failure: nothing reaches disk (a full disk /
            // EACCES stand-in).
            if h.decide(FaultSite::StoreWrite, fk, 0) {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Injected torn write: a truncated row *lands* through a
            // successful rename — silent corruption that only a later
            // `get` detects (and heals by eviction + recompute).
            if h.decide(FaultSite::StoreTornWrite, fk, 0) {
                body = &json[..json.len() / 2];
            }
        }
        if self.write_atomic(&self.entry_path(key), body, fk).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.index.lock().insert(key_stem(key));
    }

    /// Snapshot of this handle's counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    /// Drops an untrustworthy row: best-effort delete + index removal.
    fn evict(&self, key: &CacheKey, path: &Path) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(path);
        self.index.lock().remove(&key_stem(key));
    }

    /// Rewrites `index.json` from the in-memory set (temp + rename) —
    /// called on open and on drop, not per row, so a batch of N puts
    /// costs two index writes instead of N. Pure bookkeeping: failures
    /// are counted but never propagated, and a manifest left stale by a
    /// crash or a concurrent process is healed by the scan in `open`.
    fn persist_index(&self) {
        let index = StoreIndex {
            version: STORE_FORMAT_VERSION,
            entries: self.index.lock().iter().cloned().collect(),
        };
        let json = serde_json::to_string(&index).expect("store index serializes"); // cim-lint: allow(panic-unwrap) store rows are plain serializable data
        if self
            .write_atomic(&self.dir.join("index.json"), &json, INDEX_FAULT_KEY)
            .is_err()
        {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Writes `contents` to `path` via a uniquely-named temp file in the
    /// same directory and an atomic rename. `fk` keys the injected
    /// rename-failure site for chaos runs.
    fn write_atomic(&self, path: &Path, contents: &str, fk: u64) -> io::Result<()> {
        let nonce = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            nonce,
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        ));
        fs::write(&tmp, contents)?;
        if let Some(h) = &self.faults {
            // Injected rename failure: the temp was written but never
            // promoted — cleaned up exactly like a real failed rename.
            if h.decide(FaultSite::StoreRename, fk, 0) {
                let _ = fs::remove_file(&tmp);
                return Err(io::Error::other("injected fault: store rename failure"));
            }
        }
        fs::rename(&tmp, path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }
}

impl Drop for ResultStore {
    /// Persists the manifest once per handle lifetime (end of process
    /// for the binaries' stores) instead of once per row.
    fn drop(&mut self) {
        self.persist_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cim_store_unit_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            model: n,
            arch: n.wrapping_mul(31),
            strategy: n.wrapping_mul(97),
        }
    }

    fn summary(n: u64) -> RunSummary {
        RunSummary {
            makespan_cycles: n * 100,
            utilization: 1.0 / (n as f64 + 1.5),
            total_pes: n as usize + 3,
            duplicated_layers: n as usize % 4,
            noc_bytes: n * 7,
        }
    }

    #[test]
    fn put_get_round_trip_within_and_across_handles() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.get(&key(1)), None, "empty store misses");

        store.put(&key(1), &summary(1));
        assert_eq!(store.get(&key(1)), Some(summary(1)));
        assert_eq!(store.get(&key(2)), None);

        // A fresh handle (new process in spirit) sees the persisted row.
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get(&key(1)), Some(summary(1)));

        let stats = store.stats();
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.writes, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_corruption_is_healed_by_scan() {
        let dir = tmp_dir("badindex");
        let store = ResultStore::open(&dir).unwrap();
        store.put(&key(7), &summary(7));
        drop(store);
        fs::write(dir.join("index.json"), "{ not json").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.index_was_rebuilt(), "invalid JSON flagged");
        assert_eq!(store.len(), 1, "scan recovers the row");
        assert_eq!(store.get(&key(7)), Some(summary(7)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_index_is_rebuilt_with_warning_never_an_open_failure() {
        let dir = tmp_dir("tornindex");
        let store = ResultStore::open(&dir).unwrap();
        store.put(&key(7), &summary(7));
        store.put(&key(8), &summary(8));
        drop(store);

        // Tear the manifest mid-document (the shape a SIGKILL during the
        // drop-time rewrite would leave behind without the atomic rename).
        let index_path = dir.join("index.json");
        let text = fs::read_to_string(&index_path).unwrap();
        fs::write(&index_path, &text[..text.len() / 2]).unwrap();

        let store = ResultStore::open(&dir).expect("corrupt index is never an open failure");
        assert!(store.index_was_rebuilt());
        assert_eq!(store.len(), 2, "manifest rebuilt from the row scan");
        assert_eq!(store.get(&key(7)), Some(summary(7)));
        assert_eq!(store.get(&key(8)), Some(summary(8)));
        drop(store);

        // The rebuilt manifest is valid again: a third open is clean.
        let healed = ResultStore::open(&dir).unwrap();
        assert!(!healed.index_was_rebuilt());
        let _ = fs::remove_dir_all(&dir);
    }

    fn full_rate_plan(site: FaultSite) -> Arc<crate::runner::fault::FaultPlan> {
        Arc::new(crate::runner::fault::FaultPlan::new(5).with_rate(site, 1000))
    }

    #[test]
    fn injected_read_error_is_a_plain_miss() {
        let dir = tmp_dir("fault-read");
        let mut store = ResultStore::open(&dir).unwrap();
        store.put(&key(1), &summary(1));
        let plan = full_rate_plan(FaultSite::StoreRead);
        store.set_fault_hook(plan.clone());
        assert_eq!(store.get(&key(1)), None, "unreadable row is a miss");
        assert!(store.entry_path(&key(1)).exists(), "row stays on disk");
        assert_eq!(store.stats().evictions, 0, "a read error is not corruption");
        assert_eq!(plan.fired(FaultSite::StoreRead), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_failure_is_counted_and_swallowed() {
        let dir = tmp_dir("fault-write");
        let mut store = ResultStore::open(&dir).unwrap();
        store.set_fault_hook(full_rate_plan(FaultSite::StoreWrite));
        store.put(&key(1), &summary(1));
        assert_eq!(store.stats().write_errors, 1);
        assert_eq!(store.stats().writes, 0);
        assert!(!store.entry_path(&key(1)).exists());
        assert!(!store.probe_writable(), "probe sees the same failure");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_rename_failure_leaves_no_temp_behind() {
        let dir = tmp_dir("fault-rename");
        let mut store = ResultStore::open(&dir).unwrap();
        store.set_fault_hook(full_rate_plan(FaultSite::StoreRename));
        store.put(&key(1), &summary(1));
        assert_eq!(store.stats().write_errors, 1);
        assert!(!store.entry_path(&key(1)).exists());
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "failed rename cleans its temp");
        assert!(!store.probe_writable());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_lands_and_heals_by_eviction_on_read() {
        let dir = tmp_dir("fault-torn");
        let mut store = ResultStore::open(&dir).unwrap();
        store.set_fault_hook(full_rate_plan(FaultSite::StoreTornWrite));
        store.put(&key(1), &summary(1));
        // The torn row *landed*: counted as a write, present on disk and
        // in the manifest — silent corruption.
        assert_eq!(store.stats().writes, 1);
        assert!(store.entry_path(&key(1)).exists());
        assert_eq!(store.len(), 1);
        // First contact detects and evicts it.
        assert_eq!(store.get(&key(1)), None);
        assert_eq!(store.stats().evictions, 1);
        assert!(!store.entry_path(&key(1)).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_writable_is_clean_without_faults() {
        let dir = tmp_dir("probe");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.probe_writable());
        assert!(!dir.join(".probe.json").exists(), "probe cleans up");
        assert!(store.is_empty(), "probe is not a row");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_and_garbage_rows_are_evicted() {
        let dir = tmp_dir("evict");
        let store = ResultStore::open(&dir).unwrap();
        store.put(&key(1), &summary(1));
        store.put(&key(2), &summary(2));

        // Bump the version of row 1, truncate row 2.
        let p1 = store.entry_path(&key(1));
        let futuristic = fs::read_to_string(&p1)
            .unwrap()
            .replace(
                &format!("\"version\":{STORE_FORMAT_VERSION}"),
                "\"version\":999999",
            );
        assert!(futuristic.contains("999999"), "version field rewritten");
        fs::write(&p1, futuristic).unwrap();
        let p2 = store.entry_path(&key(2));
        let text = fs::read_to_string(&p2).unwrap();
        fs::write(&p2, &text[..text.len() / 2]).unwrap();

        assert_eq!(store.get(&key(1)), None, "future version distrusted");
        assert_eq!(store.get(&key(2)), None, "truncated row distrusted");
        assert!(!p1.exists() && !p2.exists(), "bad rows deleted");
        assert_eq!(store.stats().evictions, 2);

        // The keys are recomputable and storable again.
        store.put(&key(1), &summary(1));
        assert_eq!(store.get(&key(1)), Some(summary(1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn misfiled_row_is_distrusted() {
        let dir = tmp_dir("misfiled");
        let store = ResultStore::open(&dir).unwrap();
        store.put(&key(3), &summary(3));
        // Copy row 3's bytes over row 4's file name: parses, right
        // version, wrong key — must be evicted, not served.
        fs::copy(store.entry_path(&key(3)), store.entry_path(&key(4))).unwrap();
        assert_eq!(store.get(&key(4)), None);
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.get(&key(3)), Some(summary(3)), "original intact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_only_orphaned_temp_files() {
        let dir = tmp_dir("orphans");
        fs::create_dir_all(&dir).unwrap();
        // pid 1 is init — always alive on Linux, so this temp belongs to
        // a (conceptually) live concurrent writer and must survive.
        let live = dir.join(".tmp-1-0-live.json");
        // A pid far beyond any real pid space: its writer is dead.
        let dead = dir.join(".tmp-4000000001-0-dead.json");
        // Not our naming scheme at all.
        let garbage = dir.join(".tmp-garbage");
        // Our own pid at open time means a *previous* incarnation.
        let own = dir.join(format!(".tmp-{}-7-own.json", std::process::id()));
        for p in [&live, &dead, &garbage, &own] {
            fs::write(p, "{}").unwrap();
        }

        let store = ResultStore::open(&dir).unwrap();
        assert!(live.exists(), "live writer's temp must be kept");
        assert!(!dead.exists(), "dead writer's temp must be swept");
        assert!(!garbage.exists(), "unparseable temp must be swept");
        assert!(!own.exists(), "own-pid temp predates this open");
        // Temps are never mistaken for rows.
        assert!(store.is_empty());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aged_temp_is_swept_despite_a_live_looking_pid() {
        let dir = tmp_dir("aged-orphans");
        fs::create_dir_all(&dir).unwrap();
        // Both temps name pid 1 (always alive on Linux) — standing in
        // for an unrelated process that recycled a dead writer's pid.
        let fresh = dir.join(".tmp-1-0-fresh.json");
        let stale = dir.join(".tmp-1-1-stale.json");
        fs::write(&fresh, "{}").unwrap();
        fs::write(&stale, "{}").unwrap();
        let long_ago = SystemTime::now() - 2 * ORPHAN_TEMP_MAX_AGE; // cim-lint: allow(wall-clock) backdates an mtime fixture
        fs::File::options()
            .write(true)
            .open(&stale)
            .unwrap()
            .set_modified(long_ago)
            .unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert!(fresh.exists(), "recent temp with a live pid is kept");
        assert!(
            !stale.exists(),
            "a temp older than any in-flight write is orphaned even if its pid looks alive"
        );
        assert!(store.is_empty());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_floats_round_trip_bit_exactly() {
        // The warm-run byte-identity guarantee rests on this.
        for f in [0.016442451420029897f64, 2.5012942191544436, 1.0 / 3.0] {
            let s = RunSummary {
                makespan_cycles: 1,
                utilization: f,
                total_pes: 1,
                duplicated_layers: 0,
                noc_bytes: 0,
            };
            let back: RunSummary =
                serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
            assert_eq!(back.utilization.to_bits(), f.to_bits());
        }
    }
}
