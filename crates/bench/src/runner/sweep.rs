//! Sweep construction and deterministic aggregation.
//!
//! A sweep is expressed as a **flat job list** — one [`SweepJob`] per
//! `(model, architecture, strategy)` point — executed over the lane pool
//! with a shared [`ScheduleCache`](super::ScheduleCache), then folded into
//! a [`BatchResult`] whose rows come out in job order. Aggregation is the
//! only cross-job step (speedups are relative to each model's
//! layer-by-layer baseline row), so jobs stay embarrassingly parallel and
//! the batch output is bit-for-bit identical for every `--jobs` value.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cim_arch::Architecture;
use cim_frontend::{canonicalize, CanonOptions};
use cim_ir::Graph;
use cim_mapping::{layer_costs, min_pes, MappingOptions};
use clsa_core::{eq3_predicted_from_utilization, CoreError, RunConfig};

use super::cache::{CacheStats, ScheduleCache};
use super::fault::{panic_message, FaultHook, FaultSite};
use super::fingerprint::{fingerprint, CacheKey};
use super::journal::SweepJournal;
use super::lane::parallel_map;
use super::shard::{ShardMode, ShardSpec};
use super::store::{ResultStore, RunSummary, StoreStats};
use super::RunnerOptions;
use crate::experiments::{ConfigResult, SweepOptions};

/// Label of the reference configuration every speedup is measured against.
pub const BASELINE_LABEL: &str = "layer-by-layer";

/// How many times a panicking job is retried (attempts total) before it
/// is quarantined. Transient panics — an injected fault that fires on
/// one attempt's draw, a poisoned scratch state — get a second chance;
/// deterministic panics fail fast enough to keep batch latency bounded.
pub const MAX_JOB_ATTEMPTS: u32 = 3;

/// Closed-form `PE_min` of a canonicalized graph on the paper's 256×256
/// crossbars (Eq. 1 over the layer costs — no probe run needed).
///
/// The paper-case-study crossbar is PE-count-independent, so this single
/// probe serves any architecture in that family; sweeps over other
/// crossbar specs must compute their own costs.
///
/// # Errors
///
/// Propagates cost-model errors (e.g. a graph without base layers).
pub fn pe_min_of(graph: &Graph, options: &MappingOptions) -> Result<usize, CoreError> {
    let costs = layer_costs(graph, &cim_arch::CrossbarSpec::wan_nature_2022(), options)?;
    Ok(min_pes(&costs))
}

/// One point of a sweep: a model, an architecture, and a strategy.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Model name (the `model` column of the result row).
    pub model: String,
    /// Fingerprint of the canonicalized model graph.
    pub model_fp: u64,
    /// The canonicalized graph, shared across the model's jobs.
    pub graph: Arc<Graph>,
    /// Configuration label (`layer-by-layer`, `xinf`, `wdup+<x>`, …).
    pub label: String,
    /// Extra PEs over `PE_min` (the paper's `x`).
    pub x: usize,
    /// `PE_min` of the model on this job's crossbar/bit-slicing setup.
    pub pe_min: usize,
    /// Full pipeline configuration.
    pub config: RunConfig,
}

/// Aggregated outcome of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One row per job, in job order — identical to a sequential run.
    /// Quarantined jobs (see [`failures`](Self::failures)) produce no
    /// row; with zero faults this is every job.
    pub results: Vec<ConfigResult>,
    /// In-memory cache counters accumulated over the batch.
    pub stats: CacheStats,
    /// Persistent-store counters, when the batch ran against a
    /// `--cache-dir` ([`run_batch_with_store`]).
    pub store_stats: Option<StoreStats>,
    /// Typed per-job failure report: jobs quarantined after repeated
    /// panics, plus rows unaggregatable because their model's baseline
    /// was quarantined. Empty on a clean run.
    pub failures: Vec<JobFailure>,
}

/// Why a job produced no result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailureKind {
    /// The job panicked on every one of its attempts and was quarantined
    /// so the rest of the batch could finish.
    Quarantined {
        /// Attempts made (always [`MAX_JOB_ATTEMPTS`]).
        attempts: u32,
        /// Message of the last panic.
        message: String,
    },
    /// The job itself succeeded, but its model's [`BASELINE_LABEL`] job
    /// was quarantined, so no speedup row can be aggregated for it.
    BaselineUnavailable,
}

/// One entry of [`BatchResult::failures`], naming the failed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index into the batch's job list.
    pub index: usize,
    /// The job's model name.
    pub model: String,
    /// The job's configuration label.
    pub label: String,
    /// What went wrong.
    pub kind: JobFailureKind,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            JobFailureKind::Quarantined { attempts, message } => write!(
                f,
                "job {} `{} {}` quarantined after {} attempts: {}",
                self.index, self.model, self.label, attempts, message
            ),
            JobFailureKind::BaselineUnavailable => write!(
                f,
                "job {} `{} {}`: baseline `{BASELINE_LABEL}` quarantined; no speedup row",
                self.index, self.model, self.label
            ),
        }
    }
}

/// Per-job execution outcome before aggregation. `Failed` (a typed
/// pipeline error) keeps the historical propagate-first semantics;
/// `Panicked` is contained and reported instead of propagated.
#[derive(Debug)]
enum JobOutcome {
    Done(RunSummary),
    Failed(CoreError),
    Panicked { attempts: u32, message: String },
}

/// The fault-decision key of a job: a stable fold of its schedule-level
/// cache key, so a plan fires on the same jobs regardless of job-list
/// order, thread count, or sharding.
fn job_fault_key(key: &CacheKey) -> u64 {
    key.model ^ key.arch.rotate_left(21) ^ key.strategy.rotate_left(42)
}

/// Runs one job with panic containment and bounded retry, consulting
/// store, journal, and fault hook. This is the single job body shared by
/// [`run_batch_resumable`] and [`run_batch_shard_resumable`].
fn run_one(
    index: usize,
    job: &SweepJob,
    cache: &ScheduleCache,
    store: Option<&ResultStore>,
    journal: Option<&SweepJournal>,
    faults: Option<&dyn FaultHook>,
) -> JobOutcome {
    let key = CacheKey::schedule(job.model_fp, &job.config);
    if let Some(store) = store {
        if let Some(summary) = store.get(&key) {
            if let Some(journal) = journal {
                journal.mark(index);
            }
            return JobOutcome::Done(summary);
        }
    }
    let fault_key = job_fault_key(&key);
    let mut message = String::new();
    for attempt in 0..MAX_JOB_ATTEMPTS {
        if let Some(h) = faults {
            if h.decide(FaultSite::JobDelay, fault_key, attempt) {
                std::thread::sleep(h.delay());
            }
        }
        let injected = faults.is_some_and(|h| h.decide(FaultSite::JobPanic, fault_key, attempt));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if injected {
                panic!("injected fault: job panic (key {fault_key:016x}, attempt {attempt})");
            }
            cache.run(job.model_fp, &job.graph, &job.config)
        }));
        match caught {
            Ok(Ok(result)) => {
                let summary = RunSummary::of(&result);
                if let Some(store) = store {
                    store.put(&key, &summary);
                }
                if let Some(journal) = journal {
                    journal.mark(index);
                }
                return JobOutcome::Done(summary);
            }
            Ok(Err(e)) => return JobOutcome::Failed(e),
            Err(payload) => message = panic_message(payload.as_ref()),
        }
    }
    JobOutcome::Panicked {
        attempts: MAX_JOB_ATTEMPTS,
        message,
    }
}

/// Builds the paper's standard job list for one model: the layer-by-layer
/// baseline and `xinf` at `PE_min`, plus `wdup+x` and `wdup+x+xinf` for
/// every `x` in `opts.xs` — the flat form of the sweep
/// [`paper_sweep`](crate::experiments::paper_sweep) evaluates.
///
/// # Errors
///
/// Propagates frontend canonicalization and architecture construction
/// errors (raw TF-style models are accepted; the graph is canonicalized
/// here, once, and shared by every job).
pub fn sweep_jobs(name: &str, graph: &Graph, opts: &SweepOptions) -> Result<Vec<SweepJob>, CoreError> {
    let canon =
        canonicalize(graph, &CanonOptions::default()).map_err(|e| CoreError::StageMismatch {
            detail: e.to_string(),
        })?;
    let g = Arc::new(canon.into_graph());
    let model_fp = fingerprint(g.as_ref());

    let pe_min = pe_min_of(&g, &MappingOptions::default())?;

    let base_cfg = |pes: usize| -> Result<RunConfig, CoreError> {
        let arch = Architecture::paper_case_study(pes)?;
        let mut cfg = RunConfig::baseline(arch);
        cfg.set_policy = opts.set_policy;
        Ok(cfg)
    };
    let job = |label: String, x: usize, config: RunConfig| SweepJob {
        model: name.to_string(),
        model_fp,
        graph: Arc::clone(&g),
        label,
        x,
        pe_min,
        config,
    };

    let mut jobs = vec![
        job(BASELINE_LABEL.into(), 0, base_cfg(pe_min)?),
        job("xinf".into(), 0, base_cfg(pe_min)?.with_cross_layer()),
    ];
    for &x in &opts.xs {
        jobs.push(job(
            format!("wdup+{x}"),
            x,
            base_cfg(pe_min + x)?.with_duplication(opts.solver),
        ));
        jobs.push(job(
            format!("wdup+{x}+xinf"),
            x,
            base_cfg(pe_min + x)?
                .with_duplication(opts.solver)
                .with_cross_layer(),
        ));
    }
    Ok(jobs)
}

/// [`sweep_jobs`] over several models, concatenated into one flat list.
///
/// # Errors
///
/// Propagates the first per-model job-construction error.
pub fn sweep_jobs_for_models(
    models: &[(String, Graph)],
    opts: &SweepOptions,
) -> Result<Vec<SweepJob>, CoreError> {
    let mut jobs = Vec::new();
    for (name, graph) in models {
        jobs.extend(sweep_jobs(name, graph, opts)?);
    }
    Ok(jobs)
}

/// Executes a flat job list on the lane pool and aggregates the rows.
///
/// Every job resolves through one shared [`ScheduleCache`], so repeated
/// `(model, arch, strategy)` prefixes (e.g. the baseline and `xinf` rows
/// of one model) are computed once. Results are deterministic: rows come
/// out in job order with values independent of `options.jobs`.
///
/// # Errors
///
/// Propagates the first job error in job order (deterministically, even
/// when a later job fails first on the wall clock). Speedup aggregation
/// requires each model's [`BASELINE_LABEL`] row to be part of `jobs`;
/// a missing baseline is a [`CoreError::StageMismatch`].
pub fn run_batch(jobs: &[SweepJob], options: &RunnerOptions) -> Result<BatchResult, CoreError> {
    run_batch_with_store(jobs, options, None)
}

/// [`run_batch`] backed by a persistent [`ResultStore`].
///
/// Each job first consults the store under its schedule-level
/// [`CacheKey`]; a trustworthy row skips the whole pipeline (mapping,
/// stages, scheduling) and replays the persisted [`RunSummary`]. Misses
/// compute through the shared in-memory [`ScheduleCache`] as usual and
/// persist their summary afterwards, so a warm re-run of the same sweep
/// is nearly free and — because aggregation consumes only summaries, and
/// summaries round-trip bit-exactly — produces byte-identical rows.
///
/// # Errors
///
/// Same conditions as [`run_batch`]. Store I/O problems never fail the
/// batch: unreadable rows are evicted and recomputed, failed writes are
/// counted in [`StoreStats::write_errors`].
pub fn run_batch_with_store(
    jobs: &[SweepJob],
    options: &RunnerOptions,
    store: Option<&ResultStore>,
) -> Result<BatchResult, CoreError> {
    run_batch_resumable(jobs, options, store, None, None)
}

/// The fully-instrumented batch entry point: [`run_batch_with_store`]
/// plus an optional completion [`SweepJournal`] (crash-safe `--resume`)
/// and an optional [`FaultHook`] (deterministic chaos injection into job
/// execution; store-level sites are installed on the store itself).
///
/// Each job runs under `catch_unwind` with bounded retry
/// ([`MAX_JOB_ATTEMPTS`]); a job that panics every attempt is
/// **quarantined** — reported in [`BatchResult::failures`] instead of
/// tearing down the batch — and the surviving jobs aggregate through the
/// unchanged fold, so with zero faults the rows are byte-identical to
/// [`run_batch`].
///
/// # Errors
///
/// Same conditions as [`run_batch`]: typed pipeline errors
/// ([`CoreError`]) still propagate first-in-job-order — containment is
/// for panics, not for deterministic configuration errors.
pub fn run_batch_resumable(
    jobs: &[SweepJob],
    options: &RunnerOptions,
    store: Option<&ResultStore>,
    journal: Option<&SweepJournal>,
    faults: Option<&Arc<dyn FaultHook>>,
) -> Result<BatchResult, CoreError> {
    let cache = ScheduleCache::new();
    let hook: Option<&dyn FaultHook> = faults.map(|a| a.as_ref());
    let outcomes = parallel_map(jobs, options.jobs, |index, job| {
        run_one(index, job, &cache, store, journal, hook)
    });
    let (results, failures) = aggregate(jobs, outcomes)?;
    Ok(BatchResult {
        results,
        stats: cache.stats(),
        store_stats: store.map(ResultStore::stats),
        failures,
    })
}

/// Folds per-job summaries into the final row list — the single
/// aggregation path shared by live runs ([`run_batch_with_store`]) and
/// store replays ([`merge_batch`]), so a merged sharded sweep is
/// byte-identical to an unsharded one by construction, not by parallel
/// maintenance of two folds.
fn aggregate(
    jobs: &[SweepJob],
    outcomes: Vec<JobOutcome>,
) -> Result<(Vec<ConfigResult>, Vec<JobFailure>), CoreError> {
    // Baselines first: every other row of a model references its makespan,
    // utilization, and actual PE total (the Eq. 3 denominator). Also note
    // which models *have* a baseline job in the list at all — that
    // distinguishes "baseline quarantined" (a reported failure) from
    // "baseline never part of the sweep" (a caller error).
    let mut baselines: BTreeMap<&str, (u64, f64, usize)> = BTreeMap::new();
    let mut baseline_models: BTreeSet<&str> = BTreeSet::new();
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        if job.label == BASELINE_LABEL {
            baseline_models.insert(&job.model);
            if let JobOutcome::Done(s) = outcome {
                baselines.insert(&job.model, (s.makespan_cycles, s.utilization, s.total_pes));
            }
        }
    }

    let mut results = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    for (index, (job, outcome)) in jobs.iter().zip(outcomes).enumerate() {
        let s = match outcome {
            JobOutcome::Done(s) => s,
            JobOutcome::Failed(e) => return Err(e),
            JobOutcome::Panicked { attempts, message } => {
                failures.push(JobFailure {
                    index,
                    model: job.model.clone(),
                    label: job.label.clone(),
                    kind: JobFailureKind::Quarantined { attempts, message },
                });
                continue;
            }
        };
        let Some(&(base_makespan, ut_lbl, base_pes)) = baselines.get(job.model.as_str()) else {
            if baseline_models.contains(job.model.as_str()) {
                failures.push(JobFailure {
                    index,
                    model: job.model.clone(),
                    label: job.label.clone(),
                    kind: JobFailureKind::BaselineUnavailable,
                });
                continue;
            }
            return Err(CoreError::StageMismatch {
                detail: format!("job list for model `{}` has no `{BASELINE_LABEL}` row", job.model),
            });
        };
        let t_mvm = job.config.arch.crossbar().t_mvm_ns;
        results.push(ConfigResult {
            model: job.model.clone(),
            label: job.label.clone(),
            x: job.x,
            pe_min: job.pe_min,
            total_pes: s.total_pes,
            makespan_cycles: s.makespan_cycles,
            makespan_ns: s.makespan_cycles * t_mvm,
            speedup: base_makespan as f64 / s.makespan_cycles as f64,
            utilization: s.utilization,
            // Eq. 3 from the architectures' *actual* PE totals — on the
            // paper family (total = pe_min + x, baseline = pe_min) this
            // is bit-identical to the historical closed form; on other
            // architecture families it is the correct generalization.
            eq3_predicted: eq3_predicted_from_utilization(
                s.utilization,
                ut_lbl,
                s.total_pes,
                base_pes,
            ),
            duplicated_layers: s.duplicated_layers,
        });
    }
    Ok((results, failures))
}

/// The outcome of one shard *slice* ([`run_batch_shard`]): counters, no
/// rows — a slice deliberately produces no artifact, only warm store
/// entries for the final merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRun {
    /// The slice that ran.
    pub shard: ShardSpec,
    /// Jobs this slice owned (evaluated or replayed warm).
    pub owned: usize,
    /// Total jobs in the full (unsharded) list.
    pub total: usize,
    /// In-memory cache counters over the owned jobs.
    pub stats: CacheStats,
    /// Persistent-store counters (puts of fresh summaries, hits on a
    /// warm re-run of the same slice).
    pub store_stats: StoreStats,
    /// Jobs of this slice quarantined after repeated panics. A later
    /// `--shard merge` will name them as missing rows; re-run the slice
    /// (warm jobs replay free) to fill the gaps.
    pub failures: Vec<JobFailure>,
}

impl std::fmt::Display for ShardRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}: {} of {} jobs owned; cache {}; store {}",
            self.shard, self.owned, self.total, self.stats, self.store_stats
        )
    }
}

/// Evaluates the slice of `jobs` owned by `shard`, persisting every
/// summary into the shared `store` — one process of an `n`-way sharded
/// sweep. Ownership is decided per job by its schedule-level
/// [`CacheKey`] ([`ShardSpec::owns`]), so concurrent slices of the same
/// list touch disjoint keys and never duplicate work; the store's
/// two-process safety covers the shared directory.
///
/// No rows are aggregated here — aggregation needs every model's
/// baseline, which another slice may own. Run [`merge_batch`] (or
/// `--shard merge`) after all slices to produce the artifact.
///
/// # Errors
///
/// Propagates the first owned-job error in job order.
pub fn run_batch_shard(
    jobs: &[SweepJob],
    options: &RunnerOptions,
    store: &ResultStore,
    shard: ShardSpec,
) -> Result<ShardRun, CoreError> {
    run_batch_shard_resumable(jobs, options, store, shard, None, None)
}

/// [`run_batch_shard`] with the full instrumentation of
/// [`run_batch_resumable`]: panic quarantine (reported in
/// [`ShardRun::failures`]), an optional journal (indices are into the
/// **full** job list, so every slice journals against the same sweep
/// fingerprint under its own shard tag), and an optional fault hook.
///
/// # Errors
///
/// Propagates the first owned-job [`CoreError`] in job order.
pub fn run_batch_shard_resumable(
    jobs: &[SweepJob],
    options: &RunnerOptions,
    store: &ResultStore,
    shard: ShardSpec,
    journal: Option<&SweepJournal>,
    faults: Option<&Arc<dyn FaultHook>>,
) -> Result<ShardRun, CoreError> {
    let owned: Vec<(usize, &SweepJob)> = jobs
        .iter()
        .enumerate()
        .filter(|(_, job)| shard.owns(&CacheKey::schedule(job.model_fp, &job.config)))
        .collect();
    let cache = ScheduleCache::new();
    let hook: Option<&dyn FaultHook> = faults.map(|a| a.as_ref());
    let outcomes = parallel_map(&owned, options.jobs, |_, (index, job)| {
        run_one(*index, job, &cache, Some(store), journal, hook)
    });
    let mut failures = Vec::new();
    for ((index, job), outcome) in owned.iter().zip(outcomes) {
        match outcome {
            JobOutcome::Done(_) => {}
            JobOutcome::Failed(e) => return Err(e),
            JobOutcome::Panicked { attempts, message } => failures.push(JobFailure {
                index: *index,
                model: job.model.clone(),
                label: job.label.clone(),
                kind: JobFailureKind::Quarantined { attempts, message },
            }),
        }
    }
    Ok(ShardRun {
        shard,
        owned: owned.len(),
        total: jobs.len(),
        stats: cache.stats(),
        store_stats: store.stats(),
        failures,
    })
}

/// Replays a fully-warm `store` into the unsharded [`BatchResult`]:
/// every job's summary must already be persisted (by any combination of
/// slice and unsharded runs). Aggregation goes through the same fold as
/// a live run, so the rows — and any `--json` artifact serialized from
/// them — are byte-identical to an unsharded sweep.
///
/// # Errors
///
/// A job with no persisted summary is a [`CoreError::StageMismatch`]
/// naming the job — run the missing `--shard i/n` slices first.
pub fn merge_batch(jobs: &[SweepJob], store: &ResultStore) -> Result<BatchResult, CoreError> {
    let outcomes = jobs
        .iter()
        .map(|job| {
            let key = CacheKey::schedule(job.model_fp, &job.config);
            match store.get(&key) {
                Some(summary) => JobOutcome::Done(summary),
                None => JobOutcome::Failed(CoreError::StageMismatch {
                    detail: format!(
                        "merge: no persisted summary for job `{} {}` (key {key:?}); \
                         run every `--shard i/n` slice against this --cache-dir first",
                        job.model, job.label
                    ),
                }),
            }
        })
        .collect();
    let (results, failures) = aggregate(jobs, outcomes)?;
    Ok(BatchResult {
        results,
        stats: CacheStats::default(),
        store_stats: Some(store.stats()),
        failures,
    })
}

/// What a [`run_batch_sharded`] call produced, by [`ShardMode`].
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOutcome {
    /// `ShardMode::All`: the full batch ran here (rows + counters).
    Full(BatchResult),
    /// `ShardMode::Slice`: this process warmed its slice of the store.
    Slice(ShardRun),
    /// `ShardMode::Merge`: rows replayed from the fully-warm store —
    /// byte-identical to a `Full` run's rows.
    Merged(BatchResult),
}

/// The single sharded entry point the sweep binaries dispatch through:
/// runs `jobs` under `mode` (see [`ShardMode`]).
///
/// # Errors
///
/// `Slice` and `Merge` modes require a store (`--cache-dir`) — without
/// one there is nothing to merge through, reported as a
/// [`CoreError::StageMismatch`]. Otherwise as [`run_batch_with_store`],
/// [`run_batch_shard`], and [`merge_batch`].
pub fn run_batch_sharded(
    jobs: &[SweepJob],
    options: &RunnerOptions,
    store: Option<&ResultStore>,
    mode: ShardMode,
) -> Result<ShardOutcome, CoreError> {
    run_batch_sharded_resumable(jobs, options, store, mode, None, None)
}

/// [`run_batch_sharded`] with the full instrumentation of
/// [`run_batch_resumable`]. `Merge` mode ignores the journal and hook —
/// a merge only replays the store.
///
/// # Errors
///
/// As [`run_batch_sharded`].
pub fn run_batch_sharded_resumable(
    jobs: &[SweepJob],
    options: &RunnerOptions,
    store: Option<&ResultStore>,
    mode: ShardMode,
    journal: Option<&SweepJournal>,
    faults: Option<&Arc<dyn FaultHook>>,
) -> Result<ShardOutcome, CoreError> {
    let need_store = |what: &str| {
        store.ok_or_else(|| CoreError::StageMismatch {
            detail: format!("--shard {what} requires --cache-dir: the store is the merge point"),
        })
    };
    match mode {
        ShardMode::All => Ok(ShardOutcome::Full(run_batch_resumable(
            jobs, options, store, journal, faults,
        )?)),
        ShardMode::Slice(spec) => Ok(ShardOutcome::Slice(run_batch_shard_resumable(
            jobs,
            options,
            need_store(&spec.to_string())?,
            spec,
            journal,
            faults,
        )?)),
        ShardMode::Merge => Ok(ShardOutcome::Merged(merge_batch(jobs, need_store("merge")?)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_list_covers_the_grid_in_order() {
        let g = cim_models::fig5_example();
        let opts = SweepOptions {
            xs: vec![1, 2],
            ..SweepOptions::default()
        };
        let jobs = sweep_jobs("fig5", &g, &opts).unwrap();
        let labels: Vec<&str> = jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "layer-by-layer",
                "xinf",
                "wdup+1",
                "wdup+1+xinf",
                "wdup+2",
                "wdup+2+xinf"
            ]
        );
        assert!(jobs.iter().all(|j| j.pe_min == 2));
        // All jobs of one model share one canonicalized graph allocation.
        assert!(jobs[1..].iter().all(|j| Arc::ptr_eq(&j.graph, &jobs[0].graph)));
    }

    #[test]
    fn batch_reuses_stage_work_across_the_baseline_pair() {
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        let batch = run_batch(&jobs, &RunnerOptions::sequential()).unwrap();
        assert_eq!(batch.results.len(), 2);
        // baseline + xinf share the (model, arch, mapping) stage prefix.
        assert_eq!(batch.stats.stage_computes, 1);
        assert!(batch.stats.stage_hits() >= 1);
        assert!((batch.results[0].speedup - 1.0).abs() < 1e-12);
        assert!(batch.results[1].speedup > 1.0);
    }

    #[test]
    fn missing_baseline_is_reported() {
        let g = cim_models::fig5_example();
        let mut jobs = sweep_jobs("fig5", &g, &SweepOptions::default()).unwrap();
        jobs.remove(0);
        let err = run_batch(&jobs, &RunnerOptions::sequential()).unwrap_err();
        assert!(matches!(err, CoreError::StageMismatch { .. }));
    }

    fn shard_tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cim_shard_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn slices_plus_merge_reproduce_the_unsharded_batch() {
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![1], ..Default::default() }).unwrap();
        let reference = run_batch(&jobs, &RunnerOptions::sequential()).unwrap();

        let dir = shard_tmp_dir("merge");
        let store = ResultStore::open(&dir).unwrap();
        let mut owned_total = 0;
        for i in 0..2 {
            let spec = ShardSpec::new(i, 2).unwrap();
            let slice = run_batch_shard(&jobs, &RunnerOptions::sequential(), &store, spec).unwrap();
            assert_eq!(slice.total, jobs.len());
            owned_total += slice.owned;
        }
        assert_eq!(owned_total, jobs.len(), "slices partition the job list exactly");

        let merged = merge_batch(&jobs, &store).unwrap();
        assert_eq!(merged.results, reference.results);
        // Byte-identical through serialization — the artifact contract.
        assert_eq!(
            serde_json::to_string(&merged.results).unwrap(),
            serde_json::to_string(&reference.results).unwrap()
        );
        assert_eq!(merged.stats.schedule_lookups, 0, "merge computes nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_on_a_cold_store_names_the_missing_job() {
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        let dir = shard_tmp_dir("cold");
        let store = ResultStore::open(&dir).unwrap();
        let err = merge_batch(&jobs, &store).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("fig5 layer-by-layer"), "{text}");
        assert!(text.contains("--shard"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_and_merge_modes_require_a_store() {
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        for mode in [ShardMode::Slice(ShardSpec::new(0, 2).unwrap()), ShardMode::Merge] {
            let err =
                run_batch_sharded(&jobs, &RunnerOptions::sequential(), None, mode).unwrap_err();
            assert!(err.to_string().contains("--cache-dir"), "{err}");
        }
    }

    #[test]
    fn zero_fault_resumable_run_is_byte_identical_to_run_batch() {
        use crate::runner::fault::FaultPlan;
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![1], ..Default::default() }).unwrap();
        let reference = run_batch(&jobs, &RunnerOptions::sequential()).unwrap();

        let dir = shard_tmp_dir("zerofault");
        let store = ResultStore::open(&dir).unwrap();
        let journal = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        let inert: Arc<dyn FaultHook> = Arc::new(FaultPlan::new(7));
        let batch = run_batch_resumable(
            &jobs,
            &RunnerOptions::sequential(),
            Some(&store),
            Some(&journal),
            Some(&inert),
        )
        .unwrap();
        assert!(batch.failures.is_empty());
        assert_eq!(batch.results, reference.results);
        assert_eq!(
            serde_json::to_string(&batch.results).unwrap(),
            serde_json::to_string(&reference.results).unwrap()
        );
        assert_eq!(journal.completed_count(), jobs.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_panics_are_quarantined_not_propagated() {
        use crate::runner::fault::{FaultPlan, FaultSite};
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        let plan = Arc::new(FaultPlan::new(1).with_rate(FaultSite::JobPanic, 1000));
        let hook: Arc<dyn FaultHook> = plan.clone();
        let batch =
            run_batch_resumable(&jobs, &RunnerOptions::sequential(), None, None, Some(&hook))
                .unwrap();
        assert!(batch.results.is_empty());
        assert_eq!(batch.failures.len(), jobs.len());
        for failure in &batch.failures {
            assert!(matches!(
                failure.kind,
                JobFailureKind::Quarantined { attempts: MAX_JOB_ATTEMPTS, .. }
            ));
            assert!(failure.to_string().contains("quarantined"), "{failure}");
        }
        // Every job burned all its attempts; the count is deterministic.
        assert_eq!(plan.fired(FaultSite::JobPanic), (jobs.len() as u64) * u64::from(MAX_JOB_ATTEMPTS));
    }

    #[test]
    fn transient_panics_retry_to_success() {
        use crate::runner::fault::{FaultPlan, FaultSite};
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        let keys: Vec<u64> = jobs
            .iter()
            .map(|j| job_fault_key(&CacheKey::schedule(j.model_fp, &j.config)))
            .collect();
        // Search for a seed where at least one job panics on its first
        // attempt but every job recovers within its retry budget — the
        // decision function is pure, so the search is cheap and the
        // found seed reproduces forever.
        let seed = (0..10_000u64)
            .find(|&s| {
                let p = FaultPlan::new(s).with_rate(FaultSite::JobPanic, 500);
                let fires = |k: u64, a: u32| p.would_fire(FaultSite::JobPanic, k, a);
                keys.iter().any(|&k| fires(k, 0))
                    && keys.iter().all(|&k| !(0..MAX_JOB_ATTEMPTS).all(|a| fires(k, a)))
            })
            .expect("some seed yields transient-only panics");
        let plan = Arc::new(FaultPlan::new(seed).with_rate(FaultSite::JobPanic, 500));
        let hook: Arc<dyn FaultHook> = plan.clone();
        let batch =
            run_batch_resumable(&jobs, &RunnerOptions::sequential(), None, None, Some(&hook))
                .unwrap();
        assert!(batch.failures.is_empty(), "transient panics must retry to success");
        assert_eq!(batch.results.len(), jobs.len());
        assert!(plan.fired(FaultSite::JobPanic) >= 1);
        // Same seed, fresh run ⇒ identical rows and identical fault count.
        let plan2 = Arc::new(FaultPlan::new(seed).with_rate(FaultSite::JobPanic, 500));
        let hook2: Arc<dyn FaultHook> = plan2.clone();
        let batch2 =
            run_batch_resumable(&jobs, &RunnerOptions::sequential(), None, None, Some(&hook2))
                .unwrap();
        assert_eq!(batch.results, batch2.results);
        assert_eq!(plan.fired(FaultSite::JobPanic), plan2.fired(FaultSite::JobPanic));
    }

    #[test]
    fn quarantined_baseline_reports_dependents_instead_of_erroring() {
        use crate::runner::fault::{FaultPlan, FaultSite};
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        assert_eq!(jobs[0].label, BASELINE_LABEL);
        let keys: Vec<u64> = jobs
            .iter()
            .map(|j| job_fault_key(&CacheKey::schedule(j.model_fp, &j.config)))
            .collect();
        // Seed where the baseline burns all attempts and every other job
        // never panics at all.
        let seed = (0..100_000u64)
            .find(|&s| {
                let p = FaultPlan::new(s).with_rate(FaultSite::JobPanic, 500);
                let fires = |k: u64, a: u32| p.would_fire(FaultSite::JobPanic, k, a);
                (0..MAX_JOB_ATTEMPTS).all(|a| fires(keys[0], a))
                    && keys[1..]
                        .iter()
                        .all(|&k| (0..MAX_JOB_ATTEMPTS).all(|a| !fires(k, a)))
            })
            .expect("some seed quarantines exactly the baseline");
        let hook: Arc<dyn FaultHook> =
            Arc::new(FaultPlan::new(seed).with_rate(FaultSite::JobPanic, 500));
        let batch =
            run_batch_resumable(&jobs, &RunnerOptions::sequential(), None, None, Some(&hook))
                .unwrap();
        assert!(batch.results.is_empty());
        assert_eq!(batch.failures.len(), jobs.len());
        assert!(matches!(batch.failures[0].kind, JobFailureKind::Quarantined { .. }));
        assert!(batch.failures[1..]
            .iter()
            .all(|f| f.kind == JobFailureKind::BaselineUnavailable));
    }

    #[test]
    fn resumed_batch_replays_warm_and_stays_byte_identical() {
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![1], ..Default::default() }).unwrap();
        let dir = shard_tmp_dir("resume");
        let store = ResultStore::open(&dir).unwrap();
        let journal = SweepJournal::open(&dir, &jobs, None, false).unwrap();
        let first =
            run_batch_resumable(&jobs, &RunnerOptions::sequential(), Some(&store), Some(&journal), None)
                .unwrap();
        drop(journal);

        // A second process resuming the same sweep: journal replays the
        // completed set, the store replays every summary, nothing is
        // recomputed, and the rows serialize byte-identically.
        let store2 = ResultStore::open(&dir).unwrap();
        let journal2 = SweepJournal::open(&dir, &jobs, None, true).unwrap();
        assert_eq!(journal2.resumed_count(), jobs.len());
        let second = run_batch_resumable(
            &jobs,
            &RunnerOptions::sequential(),
            Some(&store2),
            Some(&journal2),
            None,
        )
        .unwrap();
        assert_eq!(second.stats.schedule_computes, 0, "fully warm resume computes nothing");
        assert_eq!(
            serde_json::to_string(&first.results).unwrap(),
            serde_json::to_string(&second.results).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_dispatch_matches_the_direct_entry_points() {
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        let full = match run_batch_sharded(&jobs, &RunnerOptions::sequential(), None, ShardMode::All)
            .unwrap()
        {
            ShardOutcome::Full(batch) => batch,
            other => panic!("All mode must run the full batch, got {other:?}"),
        };

        let dir = shard_tmp_dir("dispatch");
        let store = ResultStore::open(&dir).unwrap();
        for i in 0..2 {
            let mode = ShardMode::Slice(ShardSpec::new(i, 2).unwrap());
            match run_batch_sharded(&jobs, &RunnerOptions::sequential(), Some(&store), mode).unwrap()
            {
                ShardOutcome::Slice(run) => assert_eq!(run.total, jobs.len()),
                other => panic!("Slice mode must not aggregate, got {other:?}"),
            }
        }
        let merged = match run_batch_sharded(
            &jobs,
            &RunnerOptions::sequential(),
            Some(&store),
            ShardMode::Merge,
        )
        .unwrap()
        {
            ShardOutcome::Merged(batch) => batch,
            other => panic!("Merge mode must aggregate, got {other:?}"),
        };
        assert_eq!(merged.results, full.results);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
