//! Sweep construction and deterministic aggregation.
//!
//! A sweep is expressed as a **flat job list** — one [`SweepJob`] per
//! `(model, architecture, strategy)` point — executed over the lane pool
//! with a shared [`ScheduleCache`](super::ScheduleCache), then folded into
//! a [`BatchResult`] whose rows come out in job order. Aggregation is the
//! only cross-job step (speedups are relative to each model's
//! layer-by-layer baseline row), so jobs stay embarrassingly parallel and
//! the batch output is bit-for-bit identical for every `--jobs` value.

use std::collections::BTreeMap;
use std::sync::Arc;

use cim_arch::Architecture;
use cim_frontend::{canonicalize, CanonOptions};
use cim_ir::Graph;
use cim_mapping::{layer_costs, min_pes, MappingOptions};
use clsa_core::{eq3_predicted_from_utilization, CoreError, RunConfig};

use super::cache::{CacheStats, ScheduleCache};
use super::fingerprint::{fingerprint, CacheKey};
use super::lane::parallel_map;
use super::store::{ResultStore, RunSummary, StoreStats};
use super::RunnerOptions;
use crate::experiments::{ConfigResult, SweepOptions};

/// Label of the reference configuration every speedup is measured against.
pub const BASELINE_LABEL: &str = "layer-by-layer";

/// Closed-form `PE_min` of a canonicalized graph on the paper's 256×256
/// crossbars (Eq. 1 over the layer costs — no probe run needed).
///
/// The paper-case-study crossbar is PE-count-independent, so this single
/// probe serves any architecture in that family; sweeps over other
/// crossbar specs must compute their own costs.
///
/// # Errors
///
/// Propagates cost-model errors (e.g. a graph without base layers).
pub fn pe_min_of(graph: &Graph, options: &MappingOptions) -> Result<usize, CoreError> {
    let costs = layer_costs(graph, &cim_arch::CrossbarSpec::wan_nature_2022(), options)?;
    Ok(min_pes(&costs))
}

/// One point of a sweep: a model, an architecture, and a strategy.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Model name (the `model` column of the result row).
    pub model: String,
    /// Fingerprint of the canonicalized model graph.
    pub model_fp: u64,
    /// The canonicalized graph, shared across the model's jobs.
    pub graph: Arc<Graph>,
    /// Configuration label (`layer-by-layer`, `xinf`, `wdup+<x>`, …).
    pub label: String,
    /// Extra PEs over `PE_min` (the paper's `x`).
    pub x: usize,
    /// `PE_min` of the model on this job's crossbar/bit-slicing setup.
    pub pe_min: usize,
    /// Full pipeline configuration.
    pub config: RunConfig,
}

/// Aggregated outcome of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One row per job, in job order — identical to a sequential run.
    pub results: Vec<ConfigResult>,
    /// In-memory cache counters accumulated over the batch.
    pub stats: CacheStats,
    /// Persistent-store counters, when the batch ran against a
    /// `--cache-dir` ([`run_batch_with_store`]).
    pub store_stats: Option<StoreStats>,
}

/// Builds the paper's standard job list for one model: the layer-by-layer
/// baseline and `xinf` at `PE_min`, plus `wdup+x` and `wdup+x+xinf` for
/// every `x` in `opts.xs` — the flat form of the sweep
/// [`paper_sweep`](crate::experiments::paper_sweep) evaluates.
///
/// # Errors
///
/// Propagates frontend canonicalization and architecture construction
/// errors (raw TF-style models are accepted; the graph is canonicalized
/// here, once, and shared by every job).
pub fn sweep_jobs(name: &str, graph: &Graph, opts: &SweepOptions) -> Result<Vec<SweepJob>, CoreError> {
    let canon =
        canonicalize(graph, &CanonOptions::default()).map_err(|e| CoreError::StageMismatch {
            detail: e.to_string(),
        })?;
    let g = Arc::new(canon.into_graph());
    let model_fp = fingerprint(g.as_ref());

    let pe_min = pe_min_of(&g, &MappingOptions::default())?;

    let base_cfg = |pes: usize| -> Result<RunConfig, CoreError> {
        let arch = Architecture::paper_case_study(pes)?;
        let mut cfg = RunConfig::baseline(arch);
        cfg.set_policy = opts.set_policy;
        Ok(cfg)
    };
    let job = |label: String, x: usize, config: RunConfig| SweepJob {
        model: name.to_string(),
        model_fp,
        graph: Arc::clone(&g),
        label,
        x,
        pe_min,
        config,
    };

    let mut jobs = vec![
        job(BASELINE_LABEL.into(), 0, base_cfg(pe_min)?),
        job("xinf".into(), 0, base_cfg(pe_min)?.with_cross_layer()),
    ];
    for &x in &opts.xs {
        jobs.push(job(
            format!("wdup+{x}"),
            x,
            base_cfg(pe_min + x)?.with_duplication(opts.solver),
        ));
        jobs.push(job(
            format!("wdup+{x}+xinf"),
            x,
            base_cfg(pe_min + x)?
                .with_duplication(opts.solver)
                .with_cross_layer(),
        ));
    }
    Ok(jobs)
}

/// [`sweep_jobs`] over several models, concatenated into one flat list.
///
/// # Errors
///
/// Propagates the first per-model job-construction error.
pub fn sweep_jobs_for_models(
    models: &[(String, Graph)],
    opts: &SweepOptions,
) -> Result<Vec<SweepJob>, CoreError> {
    let mut jobs = Vec::new();
    for (name, graph) in models {
        jobs.extend(sweep_jobs(name, graph, opts)?);
    }
    Ok(jobs)
}

/// Executes a flat job list on the lane pool and aggregates the rows.
///
/// Every job resolves through one shared [`ScheduleCache`], so repeated
/// `(model, arch, strategy)` prefixes (e.g. the baseline and `xinf` rows
/// of one model) are computed once. Results are deterministic: rows come
/// out in job order with values independent of `options.jobs`.
///
/// # Errors
///
/// Propagates the first job error in job order (deterministically, even
/// when a later job fails first on the wall clock). Speedup aggregation
/// requires each model's [`BASELINE_LABEL`] row to be part of `jobs`;
/// a missing baseline is a [`CoreError::StageMismatch`].
pub fn run_batch(jobs: &[SweepJob], options: &RunnerOptions) -> Result<BatchResult, CoreError> {
    run_batch_with_store(jobs, options, None)
}

/// [`run_batch`] backed by a persistent [`ResultStore`].
///
/// Each job first consults the store under its schedule-level
/// [`CacheKey`]; a trustworthy row skips the whole pipeline (mapping,
/// stages, scheduling) and replays the persisted [`RunSummary`]. Misses
/// compute through the shared in-memory [`ScheduleCache`] as usual and
/// persist their summary afterwards, so a warm re-run of the same sweep
/// is nearly free and — because aggregation consumes only summaries, and
/// summaries round-trip bit-exactly — produces byte-identical rows.
///
/// # Errors
///
/// Same conditions as [`run_batch`]. Store I/O problems never fail the
/// batch: unreadable rows are evicted and recomputed, failed writes are
/// counted in [`StoreStats::write_errors`].
pub fn run_batch_with_store(
    jobs: &[SweepJob],
    options: &RunnerOptions,
    store: Option<&ResultStore>,
) -> Result<BatchResult, CoreError> {
    let cache = ScheduleCache::new();
    let outcomes = parallel_map(jobs, options.jobs, |_, job| {
        let key = CacheKey::schedule(job.model_fp, &job.config);
        if let Some(store) = store {
            if let Some(summary) = store.get(&key) {
                return Ok(summary);
            }
        }
        let result = cache.run(job.model_fp, &job.graph, &job.config)?;
        let summary = RunSummary::of(&result);
        if let Some(store) = store {
            store.put(&key, &summary);
        }
        Ok::<RunSummary, CoreError>(summary)
    });

    // Baselines first: every other row of a model references its makespan,
    // utilization, and actual PE total (the Eq. 3 denominator).
    let mut baselines: BTreeMap<&str, (u64, f64, usize)> = BTreeMap::new();
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        if job.label == BASELINE_LABEL {
            if let Ok(s) = outcome {
                baselines.insert(&job.model, (s.makespan_cycles, s.utilization, s.total_pes));
            }
        }
    }

    let mut results = Vec::with_capacity(jobs.len());
    for (job, outcome) in jobs.iter().zip(outcomes) {
        let s = outcome?;
        let &(base_makespan, ut_lbl, base_pes) =
            baselines
                .get(job.model.as_str())
                .ok_or_else(|| CoreError::StageMismatch {
                    detail: format!("job list for model `{}` has no `{BASELINE_LABEL}` row", job.model),
                })?;
        let t_mvm = job.config.arch.crossbar().t_mvm_ns;
        results.push(ConfigResult {
            model: job.model.clone(),
            label: job.label.clone(),
            x: job.x,
            pe_min: job.pe_min,
            total_pes: s.total_pes,
            makespan_cycles: s.makespan_cycles,
            makespan_ns: s.makespan_cycles * t_mvm,
            speedup: base_makespan as f64 / s.makespan_cycles as f64,
            utilization: s.utilization,
            // Eq. 3 from the architectures' *actual* PE totals — on the
            // paper family (total = pe_min + x, baseline = pe_min) this
            // is bit-identical to the historical closed form; on other
            // architecture families it is the correct generalization.
            eq3_predicted: eq3_predicted_from_utilization(
                s.utilization,
                ut_lbl,
                s.total_pes,
                base_pes,
            ),
            duplicated_layers: s.duplicated_layers,
        });
    }
    Ok(BatchResult {
        results,
        stats: cache.stats(),
        store_stats: store.map(ResultStore::stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_list_covers_the_grid_in_order() {
        let g = cim_models::fig5_example();
        let opts = SweepOptions {
            xs: vec![1, 2],
            ..SweepOptions::default()
        };
        let jobs = sweep_jobs("fig5", &g, &opts).unwrap();
        let labels: Vec<&str> = jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "layer-by-layer",
                "xinf",
                "wdup+1",
                "wdup+1+xinf",
                "wdup+2",
                "wdup+2+xinf"
            ]
        );
        assert!(jobs.iter().all(|j| j.pe_min == 2));
        // All jobs of one model share one canonicalized graph allocation.
        assert!(jobs[1..].iter().all(|j| Arc::ptr_eq(&j.graph, &jobs[0].graph)));
    }

    #[test]
    fn batch_reuses_stage_work_across_the_baseline_pair() {
        let g = cim_models::fig5_example();
        let jobs = sweep_jobs("fig5", &g, &SweepOptions { xs: vec![], ..Default::default() }).unwrap();
        let batch = run_batch(&jobs, &RunnerOptions::sequential()).unwrap();
        assert_eq!(batch.results.len(), 2);
        // baseline + xinf share the (model, arch, mapping) stage prefix.
        assert_eq!(batch.stats.stage_computes, 1);
        assert!(batch.stats.stage_hits() >= 1);
        assert!((batch.results[0].speedup - 1.0).abs() < 1e-12);
        assert!(batch.results[1].speedup > 1.0);
    }

    #[test]
    fn missing_baseline_is_reported() {
        let g = cim_models::fig5_example();
        let mut jobs = sweep_jobs("fig5", &g, &SweepOptions::default()).unwrap();
        jobs.remove(0);
        let err = run_batch(&jobs, &RunnerOptions::sequential()).unwrap_err();
        assert!(matches!(err, CoreError::StageMismatch { .. }));
    }
}
