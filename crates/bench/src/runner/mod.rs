//! # The parallel batched evaluation engine
//!
//! The paper's evaluation is a *design-space sweep* — many `(model,
//! architecture, strategy)` configurations, each an independent pipeline
//! run. This module turns such a sweep into a flat job list and executes
//! it on a pool of scoped worker threads with three guarantees:
//!
//! 1. **Determinism** — [`BatchResult`] rows are bit-for-bit identical to
//!    a sequential run, for any worker count. Jobs land in indexed slots;
//!    aggregation happens in job order after the pool drains.
//! 2. **No recomputation** — a shared [`ScheduleCache`] memoizes both the
//!    stage prefix (mapping + `determine_sets` + `determine_dependencies`,
//!    keyed by `(model, arch, mapping strategy)` fingerprints) and full
//!    schedules, so e.g. a layer-by-layer baseline and a CLSA run over the
//!    same model perform the stage analyses exactly once.
//! 3. **Full occupancy** — jobs are dealt round-robin onto per-worker
//!    *lanes*; a worker that drains its lane steals from the others
//!    ([`parallel_map`]), so one slow model (ResNet152) cannot idle the
//!    rest of the pool.
//!
//! 4. **Durability (opt-in)** — an on-disk [`ResultStore`] (`--cache-dir
//!    <path>`) persists per-job [`RunSummary`] rows across processes, so
//!    a warm re-run of a sweep replays from disk (byte-identical output)
//!    instead of re-scheduling. See [`store`] for the row format and the
//!    corruption policy.
//!
//! 5. **Survivability (opt-in)** — a panic in one job is caught, retried,
//!    and quarantined ([`run_batch_resumable`]) instead of tearing down
//!    the batch; a [`SweepJournal`] beside the store plus `--resume`
//!    makes a SIGKILL'd sweep resumable with byte-identical output; and a
//!    seeded [`fault::FaultPlan`] injects deterministic store/job faults
//!    for reproducible chaos tests.
//!
//! Layering: [`parallel_map`] (lane pool) → [`ScheduleCache`] (memo) →
//! [`run_batch`] / [`run_batch_with_store`] (sweep jobs →
//! [`BatchResult`]). The experiment binaries all sit on top and accept
//! `--jobs N` (see [`parse_jobs_arg`](crate::parse_jobs_arg)) plus
//! `--cache-dir <path>` (see
//! [`parse_common_args`](crate::parse_common_args)).
//!
//! # Examples
//!
//! ```
//! use cim_bench::runner::{run_batch, sweep_jobs, RunnerOptions};
//! use cim_bench::SweepOptions;
//!
//! # fn main() -> Result<(), clsa_core::CoreError> {
//! let opts = SweepOptions { xs: vec![1], ..SweepOptions::default() };
//! let jobs = sweep_jobs("fig5", &cim_models::fig5_example(), &opts)?;
//! let parallel = run_batch(&jobs, &RunnerOptions::with_jobs(4))?;
//! let sequential = run_batch(&jobs, &RunnerOptions::sequential())?;
//! assert_eq!(parallel.results, sequential.results); // bit-for-bit
//! assert!(parallel.stats.stage_hits() >= 1); // baseline/xinf shared stages
//! # Ok(())
//! # }
//! ```

mod cache;
pub mod fault;
mod fingerprint;
pub mod journal;
mod lane;
mod shard;
pub mod store;
mod sweep;

pub use cache::{CacheStats, ScheduleCache};
pub use fault::{mix64, panic_message, parse_rate_spec, FaultHook, FaultPlan, FaultSite, FAULT_SITES};
pub use fingerprint::{fingerprint, mapping_fingerprint, strategy_fingerprint, CacheKey, FnvWriter};
pub use journal::{sweep_fingerprint, SweepJournal, JOURNAL_FORMAT_VERSION};
pub use lane::parallel_map;
pub use shard::{shard_of, ShardMode, ShardSpec};
pub use store::{ResultStore, RunSummary, StoreStats, STORE_FORMAT_VERSION};
pub use sweep::{
    merge_batch, pe_min_of, run_batch, run_batch_resumable, run_batch_shard,
    run_batch_shard_resumable, run_batch_sharded, run_batch_sharded_resumable,
    run_batch_with_store, sweep_jobs, sweep_jobs_for_models, BatchResult, JobFailure,
    JobFailureKind, ShardOutcome, ShardRun, SweepJob, BASELINE_LABEL, MAX_JOB_ATTEMPTS,
};

/// Worker-pool options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerOptions {
    /// Number of worker threads (1 = sequential on the calling thread).
    pub jobs: usize,
}

impl RunnerOptions {
    /// Runs everything on the calling thread — the reference behaviour
    /// the parallel pool must reproduce exactly.
    pub fn sequential() -> Self {
        Self { jobs: 1 }
    }

    /// Uses `jobs` worker threads (clamped to ≥ 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }
}

impl Default for RunnerOptions {
    /// One worker per available hardware thread.
    fn default() -> Self {
        Self {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}
