//! Lane-based deterministic parallel map — the work-distribution core of
//! the runner.
//!
//! Jobs are dealt round-robin onto `jobs` *lanes* (lane `l` owns job
//! indices `l`, `l + jobs`, `l + 2·jobs`, …). Each worker thread first
//! drains its own lane, then *steals* from the other lanes in cyclic
//! order. Claims go through one atomic cursor per lane, so a job is
//! executed exactly once no matter which worker picks it up; results are
//! reassembled by job index, which makes the output **independent of the
//! execution interleaving** — `parallel_map` with any worker count returns
//! bit-for-bit the same vector as a sequential loop (assuming `f` itself
//! is deterministic per item).
//!
//! This is the simplest member of the lane-scheduling family (cf. the
//! lane-based work distribution in `D0liphin/LaneBasedScheduling`): lanes
//! here carry no "happens-after" relationships because sweep jobs are
//! independent by construction; the lanes exist purely to spread work and
//! to keep claim contention away from a single global cursor until a
//! worker actually runs dry.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on `jobs` worker threads, returning results in
/// item order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or one item) the map
/// degenerates to a plain sequential loop on the calling thread — the
/// reference behaviour the parallel path must reproduce exactly.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
///
/// # Examples
///
/// ```
/// use cim_bench::runner::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], 4, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // lane `l` owns indices {l, l + jobs, ...}; `cursors[l]` counts claims.
    let cursors: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
    let lane_len = |lane: usize| (items.len() - lane).div_ceil(jobs);

    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let cursors = &cursors;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    // Own lane first, then steal from the others cyclically.
                    for offset in 0..jobs {
                        let lane = (w + offset) % jobs;
                        let len = lane_len(lane);
                        loop {
                            let pos = cursors[lane].fetch_add(1, Ordering::Relaxed);
                            if pos >= len {
                                break;
                            }
                            let index = lane + pos * jobs;
                            out.push((index, f(index, &items[index])));
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect() // cim-lint: allow(panic-unwrap) worker panics must propagate, slots are claimed exactly once
    });

    // Reassemble in item order regardless of which worker ran what.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for chunk in &mut per_worker {
        for (index, result) in chunk.drain(..) {
            debug_assert!(slots[index].is_none(), "job {index} ran twice");
            slots[index] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job claimed exactly once")) // cim-lint: allow(panic-unwrap) worker panics must propagate, slots are claimed exactly once
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_equals_sequential_for_every_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 4, 7, 16, 200] {
            let got = parallel_map(&items, jobs, |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<usize> = (0..61).collect();
        let calls = AtomicU64::new(0);
        let got = parallel_map(&items, 5, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 61);
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[42u32], 8, |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn workers_steal_from_stalled_lanes() {
        // One slow item in lane 0 forces the other workers to steal the
        // rest of lane 0's work; the result order must be unaffected.
        let items: Vec<u64> = (0..32).collect();
        let got = parallel_map(&items, 4, |i, &x| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        });
        assert_eq!(got, items);
    }
}
